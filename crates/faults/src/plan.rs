//! Seeded fault plans: what breaks, where, and when.
//!
//! A [`FaultPlan`] is a *materialized* list of [`Injection`]s — there is
//! no hidden RNG state consulted at run time. Sampling happens once, in
//! [`FaultPlan::seeded`], from a splitmix64 stream derived from the
//! seed; after that the plan is a plain value that can be cloned,
//! compared, logged, and replayed. Determinism of a chaos run therefore
//! reduces to determinism of the executor under a *fixed* plan, which
//! the chaos suite asserts directly.

use std::time::Duration;

use summit_metrics::rng::{derive_seed, splitmix64};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The rank delays the start of the round by `millis` (a straggler).
    Straggle { millis: u64 },
    /// The rank's outgoing payloads in the round are dropped in flight
    /// (the receiver recovers them via timeout + resend request).
    Drop,
    /// The rank's outgoing payloads in the round have one bit flipped in
    /// flight (the receiver detects the CRC mismatch and requests a
    /// resend).
    Corrupt,
    /// The rank dies at the start of the round and never participates
    /// again — in this collective, this step, or any later step.
    Crash,
}

impl FaultKind {
    /// Short stable name for logs and tables.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Straggle { .. } => "straggle",
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Crash => "crash",
        }
    }
}

/// One injection: fault `kind` at training step `step`, on `rank`, in
/// collective round `round`. Ranks are *original* (world) rank ids — a
/// plan stays addressable after elastic degradation shrinks the live
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Injection {
    pub step: usize,
    pub rank: usize,
    pub round: usize,
    pub kind: FaultKind,
}

/// A send-side fault the executor applies to outgoing payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFault {
    Drop,
    Corrupt,
}

/// Sampling envelope for [`FaultPlan::seeded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// World size the plan addresses (ranks are sampled `< n_ranks`).
    pub n_ranks: usize,
    /// Training steps covered (steps are sampled `< steps`).
    pub steps: usize,
    /// Rounds per collective (rounds are sampled `< rounds`; injections
    /// landing past the real schedule are simply never triggered).
    pub rounds: usize,
    /// How many rank crashes to inject (at most one per rank).
    pub crashes: usize,
    /// How many straggler rounds to inject.
    pub stragglers: usize,
    /// Straggler delay in milliseconds.
    pub straggle_ms: u64,
    /// How many dropped-payload rounds to inject.
    pub drops: usize,
    /// How many corrupted-payload rounds to inject.
    pub corruptions: usize,
}

impl FaultSpec {
    /// A fault-free spec over the given world, useful as a base for
    /// struct-update syntax.
    pub fn none(n_ranks: usize, steps: usize, rounds: usize) -> Self {
        FaultSpec {
            n_ranks,
            steps,
            rounds,
            crashes: 0,
            stragglers: 0,
            straggle_ms: 5,
            drops: 0,
            corruptions: 0,
        }
    }
}

/// How the fault-aware executor retries: per-receive deadlines with
/// exponential backoff, and the bound after which a silent peer is
/// declared dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-receive deadline; a resend request (NACK) fires when it
    /// expires.
    pub base: Duration,
    /// Deadline multiplier per failed attempt (exponential backoff).
    pub factor: u32,
    /// After this many expired deadlines the peer is declared dead.
    pub max_attempts: u32,
    /// Poll granularity: how often a blocked receive services incoming
    /// acks/resend-requests while waiting.
    pub tick: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(25),
            factor: 2,
            max_attempts: 6,
            tick: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// Receive deadline for 0-based `attempt`: `base * factor^attempt`
    /// (exponent clamped so a pathological policy cannot overflow).
    pub fn deadline(&self, attempt: u32) -> Duration {
        self.base.saturating_mul(self.factor.saturating_pow(attempt.min(16)))
    }

    /// How often a transport link beacons liveness when otherwise idle:
    /// half the first receive deadline, so a healthy-but-slow peer lands
    /// a heartbeat inside every deadline window.
    pub fn heartbeat_interval(&self) -> Duration {
        self.base / 2
    }

    /// Total peer silence after which the transport declares it dead:
    /// the sum of every backoff deadline the retry ladder would wait
    /// through before giving up.
    pub fn death_threshold(&self) -> Duration {
        (0..self.max_attempts).fold(Duration::ZERO, |acc, k| acc.saturating_add(self.deadline(k)))
    }
}

/// A seeded, replayable set of fault injections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    injections: Vec<Injection>,
}

impl FaultPlan {
    /// A plan with no injections (the executor treats it as "fault layer
    /// off for every site", but still runs the fault-aware protocol —
    /// use `None` at the API level to keep the plain fast path).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An explicit plan: exactly these injections, tagged with `seed`
    /// for replay bookkeeping. Crash injections are normalized so each
    /// rank dies at most once (its earliest crash point wins).
    pub fn explicit(seed: u64, injections: Vec<Injection>) -> Self {
        let mut plan = FaultPlan { seed, injections };
        plan.normalize();
        plan
    }

    /// Sample a plan from `seed` under `spec`. Deterministic: the same
    /// seed and spec always produce the identical injection list.
    pub fn seeded(seed: u64, spec: &FaultSpec) -> Self {
        assert!(spec.n_ranks >= 1, "plan needs at least one rank");
        let steps = spec.steps.max(1);
        let rounds = spec.rounds.max(1);
        let mut injections = Vec::new();
        let mut sample = |label: &str, count: usize, kind_of: &dyn Fn(u64) -> FaultKind| {
            let stream = derive_seed(seed, label);
            for i in 0..count {
                let h0 = splitmix64(stream ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let h1 = splitmix64(h0);
                let h2 = splitmix64(h1);
                injections.push(Injection {
                    step: (h0 % steps as u64) as usize,
                    rank: (h1 % spec.n_ranks as u64) as usize,
                    round: (h2 % rounds as u64) as usize,
                    kind: kind_of(splitmix64(h2)),
                });
            }
        };
        sample("crash", spec.crashes, &|_| FaultKind::Crash);
        sample("straggle", spec.stragglers, &|_| FaultKind::Straggle { millis: spec.straggle_ms });
        sample("drop", spec.drops, &|_| FaultKind::Drop);
        sample("corrupt", spec.corruptions, &|_| FaultKind::Corrupt);
        let mut plan = FaultPlan { seed, injections };
        plan.normalize();
        plan
    }

    /// Keep at most one crash per rank (the earliest in step/round
    /// order) and drop non-crash injections that land at or after that
    /// rank's death — they could never trigger.
    fn normalize(&mut self) {
        let mut crash_points: Vec<(usize, (usize, usize))> = Vec::new();
        for inj in self.injections.iter().filter(|i| i.kind == FaultKind::Crash) {
            match crash_points.iter_mut().find(|(r, _)| *r == inj.rank) {
                Some((_, at)) => *at = (*at).min((inj.step, inj.round)),
                None => crash_points.push((inj.rank, (inj.step, inj.round))),
            }
        }
        let mut kept_crash: Vec<usize> = Vec::new();
        self.injections.retain(|inj| {
            let death = crash_points.iter().find(|(r, _)| *r == inj.rank).map(|&(_, at)| at);
            match (inj.kind, death) {
                (FaultKind::Crash, Some(at)) => {
                    let first = (inj.step, inj.round) == at && !kept_crash.contains(&inj.rank);
                    if first {
                        kept_crash.push(inj.rank);
                    }
                    first
                }
                (_, Some(at)) => (inj.step, inj.round) < at,
                (_, None) => true,
            }
        });
        self.injections.sort_by_key(|i| (i.step, i.round, i.rank, i.kind.name()));
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// The `(step, round)` at which `rank` dies, if the plan crashes it.
    pub fn crash_point(&self, rank: usize) -> Option<(usize, usize)> {
        self.injections
            .iter()
            .find(|i| i.rank == rank && i.kind == FaultKind::Crash)
            .map(|i| (i.step, i.round))
    }

    /// Does `rank` die exactly at the start of (`step`, `round`)?
    pub fn crashes_at(&self, step: usize, rank: usize, round: usize) -> bool {
        self.crash_point(rank) == Some((step, round))
    }

    /// Injected straggler delay for `rank` at the start of (`step`,
    /// `round`), if any.
    pub fn straggle(&self, step: usize, rank: usize, round: usize) -> Option<Duration> {
        self.injections.iter().find_map(|i| match i.kind {
            FaultKind::Straggle { millis }
                if i.step == step && i.rank == rank && i.round == round =>
            {
                Some(Duration::from_millis(millis))
            }
            _ => None,
        })
    }

    /// Send-side fault applied to `rank`'s outgoing payloads in
    /// (`step`, `round`), if any. Drop wins over corrupt when both were
    /// sampled onto the same site.
    pub fn send_fault(&self, step: usize, rank: usize, round: usize) -> Option<SendFault> {
        let mut found = None;
        for i in
            self.injections.iter().filter(|i| i.step == step && i.rank == rank && i.round == round)
        {
            match i.kind {
                FaultKind::Drop => return Some(SendFault::Drop),
                FaultKind::Corrupt => found = Some(SendFault::Corrupt),
                _ => {}
            }
        }
        found
    }

    /// All ranks the plan ever crashes.
    pub fn crashed_ranks(&self) -> Vec<usize> {
        let mut out: Vec<usize> =
            self.injections.iter().filter(|i| i.kind == FaultKind::Crash).map(|i| i.rank).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec {
            n_ranks: 8,
            steps: 10,
            rounds: 6,
            crashes: 2,
            stragglers: 4,
            straggle_ms: 7,
            drops: 3,
            corruptions: 3,
        }
    }

    #[test]
    fn seeded_plans_replay_identically() {
        let a = FaultPlan::seeded(42, &spec());
        let b = FaultPlan::seeded(42, &spec());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, &spec());
        let b = FaultPlan::seeded(2, &spec());
        assert_ne!(a.injections(), b.injections());
    }

    #[test]
    fn injections_stay_in_envelope() {
        let s = spec();
        for seed in 0..50 {
            let p = FaultPlan::seeded(seed, &s);
            for i in p.injections() {
                assert!(i.rank < s.n_ranks && i.step < s.steps && i.round < s.rounds);
            }
        }
    }

    #[test]
    fn at_most_one_crash_per_rank_and_nothing_after_death() {
        for seed in 0..50 {
            let p = FaultPlan::seeded(seed, &FaultSpec { crashes: 6, ..spec() });
            let crashed = p.crashed_ranks();
            let mut seen = crashed.clone();
            seen.dedup();
            assert_eq!(seen.len(), crashed.len(), "duplicate crash for a rank");
            for rank in crashed {
                let death = p.crash_point(rank).expect("crashed rank has a crash point");
                for i in p.injections().iter().filter(|i| i.rank == rank) {
                    if i.kind == FaultKind::Crash {
                        assert_eq!((i.step, i.round), death);
                    } else {
                        assert!((i.step, i.round) < death, "injection after death");
                    }
                }
            }
        }
    }

    #[test]
    fn explicit_plan_lookup() {
        let p = FaultPlan::explicit(
            7,
            vec![
                Injection { step: 1, rank: 2, round: 0, kind: FaultKind::Crash },
                Injection { step: 0, rank: 3, round: 1, kind: FaultKind::Straggle { millis: 9 } },
                Injection { step: 0, rank: 0, round: 2, kind: FaultKind::Drop },
                Injection { step: 0, rank: 1, round: 2, kind: FaultKind::Corrupt },
            ],
        );
        assert_eq!(p.crash_point(2), Some((1, 0)));
        assert!(p.crashes_at(1, 2, 0));
        assert!(!p.crashes_at(1, 2, 1));
        assert_eq!(p.straggle(0, 3, 1), Some(Duration::from_millis(9)));
        assert_eq!(p.straggle(0, 3, 2), None);
        assert_eq!(p.send_fault(0, 0, 2), Some(SendFault::Drop));
        assert_eq!(p.send_fault(0, 1, 2), Some(SendFault::Corrupt));
        assert_eq!(p.send_fault(1, 0, 2), None);
        assert_eq!(p.seed(), 7);
    }

    #[test]
    fn drop_beats_corrupt_on_the_same_site() {
        let p = FaultPlan::explicit(
            0,
            vec![
                Injection { step: 0, rank: 0, round: 0, kind: FaultKind::Corrupt },
                Injection { step: 0, rank: 0, round: 0, kind: FaultKind::Drop },
            ],
        );
        assert_eq!(p.send_fault(0, 0, 0), Some(SendFault::Drop));
    }

    #[test]
    fn crash_normalization_keeps_earliest() {
        let p = FaultPlan::explicit(
            0,
            vec![
                Injection { step: 3, rank: 1, round: 2, kind: FaultKind::Crash },
                Injection { step: 1, rank: 1, round: 4, kind: FaultKind::Crash },
                Injection { step: 2, rank: 1, round: 0, kind: FaultKind::Drop },
            ],
        );
        assert_eq!(p.crash_point(1), Some((1, 4)));
        // The later crash and the post-death drop are gone.
        assert_eq!(p.injections().len(), 1);
    }
}
