//! Deterministic fault injection for the collectives/trainer stack.
//!
//! The verifier (`crates/verifier`) proves schedules correct *when every
//! rank is healthy*; this crate provides the complementary layer — a way
//! to prove the stack behaves when things break, without giving up
//! replayability:
//!
//! * [`FaultPlan`] — a seeded, fully materialized list of injections
//!   (per step, rank, and round): message delay ([`FaultKind::Straggle`]),
//!   message drop ([`FaultKind::Drop`]), payload bit-corruption
//!   ([`FaultKind::Corrupt`]), and rank death ([`FaultKind::Crash`]).
//!   Two plans built from the same seed and spec are identical, so every
//!   chaos run replays exactly.
//! * [`FaultClock`] — the single doorway for injected delay. Library
//!   code never calls `std::thread::sleep` directly (`xtask lint`
//!   enforces this); it asks the clock, which either really sleeps
//!   ([`FaultClock::real`]) or merely accounts the delay virtually
//!   ([`FaultClock::virtual_clock`]), keeping unit tests fast while the
//!   chaos suite exercises genuine wall-clock straggling.
//! * [`crc32`] — the payload checksum the fault-aware executor uses to
//!   detect injected corruption and trigger a resend.
//! * [`EventLog`] / [`FaultEvent`] — every injection and every recovery
//!   action (retry, resend, CRC reject, declared death, degradation,
//!   checkpoint save/restore) as a structured, timestamped record, so
//!   chaos runs are observable and their deterministic core is
//!   assertable.
//!
//! Nothing here knows about schedules or training; the executor
//! (`collectives::exec_fault`), the elastic wrapper
//! (`collectives::elastic`), and the trainer consume these types.

pub mod clock;
pub mod crc;
pub mod event;
pub mod plan;

pub use clock::FaultClock;
pub use crc::{crc32, crc32_bytes};
pub use event::{EventLog, FaultEvent, Stamped};
pub use plan::{FaultKind, FaultPlan, FaultSpec, Injection, RetryPolicy, SendFault};
