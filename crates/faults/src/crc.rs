//! CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) payload
//! checksums.
//!
//! The fault-aware executor stamps every payload with the checksum of
//! its clean contents; an injected bit-flip in flight makes the
//! receiver's recomputation disagree, which triggers a resend request
//! instead of silently averaging garbage into the gradients. The table
//! is built at compile time — no lazy init on the message path.

/// The 256-entry lookup table, computed in a `const` context.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of raw bytes.
pub fn crc32_bytes(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// CRC32 of an `f32` payload, over its little-endian byte image — the
/// same bits the executor actually moves.
pub fn crc32(data: &[f32]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &x in data {
        for b in x.to_le_bytes() {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check value for "123456789".
        assert_eq!(crc32_bytes(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_bytes(b""), 0);
    }

    #[test]
    fn f32_crc_matches_byte_crc() {
        let xs = [1.5f32, -2.25, 0.0, f32::MIN_POSITIVE, 1e30];
        let bytes: Vec<u8> = xs.iter().flat_map(|x| x.to_le_bytes()).collect();
        assert_eq!(crc32(&xs), crc32_bytes(&bytes));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let clean = vec![0.125f32; 64];
        let base = crc32(&clean);
        for elem in [0usize, 17, 63] {
            for bit in [0u32, 13, 31] {
                let mut bad = clean.clone();
                bad[elem] = f32::from_bits(bad[elem].to_bits() ^ (1 << bit));
                assert_ne!(crc32(&bad), base, "flip elem {elem} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn empty_payload_has_stable_crc() {
        assert_eq!(crc32(&[]), crc32(&[]));
        assert_eq!(crc32(&[]), 0);
    }
}
