//! The fault clock: every injected delay and every protocol wait goes
//! through here, never through a bare `std::thread::sleep` (`xtask
//! lint` bans those in library code).
//!
//! Two modes:
//!
//! * **real** — delays actually sleep, so chaos runs exercise genuine
//!   wall-clock straggling and the timeout/retry machinery;
//! * **virtual** — delays are only *accounted* (atomically summed), so
//!   unit tests and simulator re-plots stay fast while still observing
//!   exactly which delays the plan injected.
//!
//! Either way the clock keeps separate ledgers for *injected* delay
//! (plan-driven straggling — deterministic, replayable, asserted by the
//! chaos suite) and *protocol* waiting (poll ticks while blocked on a
//! slow peer — timing-dependent, excluded from replay assertions).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Real,
    Virtual,
}

/// See the module docs. Cheap to share by reference across rank
/// threads; all counters are relaxed atomics.
#[derive(Debug)]
pub struct FaultClock {
    mode: Mode,
    injected_ns: AtomicU64,
    waited_ns: AtomicU64,
}

impl FaultClock {
    /// A clock whose delays really sleep.
    pub fn real() -> Self {
        FaultClock {
            mode: Mode::Real,
            injected_ns: AtomicU64::new(0),
            waited_ns: AtomicU64::new(0),
        }
    }

    /// A clock that only accounts delays (nothing sleeps).
    pub fn virtual_clock() -> Self {
        FaultClock {
            mode: Mode::Virtual,
            injected_ns: AtomicU64::new(0),
            waited_ns: AtomicU64::new(0),
        }
    }

    /// Apply an *injected* (plan-driven) delay.
    pub fn inject(&self, d: Duration) {
        self.injected_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed); // lint: allow(relaxed): time-accounting accumulator; read for reporting, carries no data
        if self.mode == Mode::Real {
            std::thread::sleep(d); // lint: allow(sleep): the FaultClock is the one sanctioned delay doorway
        }
    }

    /// Account a *protocol* wait (a poll tick while blocked). Never
    /// sleeps — the caller's blocking receive already waited for real.
    pub fn note_wait(&self, d: Duration) {
        self.waited_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed); // lint: allow(relaxed): time-accounting accumulator; read for reporting, carries no data
    }

    /// Total plan-driven delay injected so far, across all threads.
    pub fn injected(&self) -> Duration {
        Duration::from_nanos(self.injected_ns.load(Ordering::Relaxed)) // lint: allow(relaxed): time-accounting accumulator; read for reporting, carries no data
    }

    /// Total protocol waiting accounted so far, across all threads.
    pub fn waited(&self) -> Duration {
        Duration::from_nanos(self.waited_ns.load(Ordering::Relaxed)) // lint: allow(relaxed): time-accounting accumulator; read for reporting, carries no data
    }

    /// True when [`FaultClock::inject`] really sleeps.
    pub fn is_real(&self) -> bool {
        self.mode == Mode::Real
    }
}

impl Default for FaultClock {
    /// Virtual by default: nothing sleeps unless a chaos run opts in.
    fn default() -> Self {
        FaultClock::virtual_clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_accounts_without_sleeping() {
        let c = FaultClock::virtual_clock();
        let t0 = std::time::Instant::now();
        c.inject(Duration::from_secs(3600));
        assert!(t0.elapsed() < Duration::from_secs(1), "virtual inject must not sleep");
        assert_eq!(c.injected(), Duration::from_secs(3600));
        assert_eq!(c.waited(), Duration::ZERO);
        assert!(!c.is_real());
    }

    #[test]
    fn real_clock_sleeps() {
        let c = FaultClock::real();
        let t0 = std::time::Instant::now();
        c.inject(Duration::from_millis(15));
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(c.injected(), Duration::from_millis(15));
        assert!(c.is_real());
    }

    #[test]
    fn ledgers_are_separate_and_cumulative() {
        let c = FaultClock::virtual_clock();
        c.inject(Duration::from_millis(5));
        c.inject(Duration::from_millis(7));
        c.note_wait(Duration::from_millis(2));
        assert_eq!(c.injected(), Duration::from_millis(12));
        assert_eq!(c.waited(), Duration::from_millis(2));
    }
}
