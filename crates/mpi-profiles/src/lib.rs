//! MPI library personalities for the Summit DLv3+ reproduction.
//!
//! An [`MpiProfile`] packages the behavioural differences between the
//! communication stacks the paper compares:
//!
//! * **MVAPICH2-GDR** — CUDA-aware with GPUDirect RDMA, efficient
//!   pipelined host staging above `MV2_GPUDIRECT_LIMIT`, and tuned
//!   algorithm-selection tables (including the two-level hierarchical
//!   allreduce in the fused-buffer size range);
//! * **Spectrum-MPI (default)** — the Summit system default: host-staged
//!   GPU buffers, higher per-message overheads, and a selection table
//!   that keeps recursive doubling far past its useful message size;
//! * **NCCL-like** — GDR everywhere, minimal overhead, tree for small
//!   messages and topology rings otherwise.
//!
//! A profile implements [`collectives::CostModel`], so the same
//! schedules time differently under different personalities — which is
//! exactly the paper's experimental axis. [`AllreduceOracle`] adds the
//! interpolating cache the Horovod runtime queries per fused buffer.

pub mod knobs;
pub mod osu;
pub mod profile;

pub use knobs::{Knobs, SelectionTable};
pub use osu::{
    allreduce_sweep, bcast_sweep, pt2pt_bandwidth_sweep, pt2pt_latency_sweep, size_ladder, OsuPoint,
};
pub use profile::{AllreduceOracle, MpiProfile};

/// The three communication backends the experiments sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    Mvapich2Gdr,
    SpectrumDefault,
    Nccl,
}

impl Backend {
    pub fn profile(self) -> MpiProfile {
        match self {
            Backend::Mvapich2Gdr => MpiProfile::mvapich2_gdr(),
            Backend::SpectrumDefault => MpiProfile::spectrum_default(),
            Backend::Nccl => MpiProfile::nccl(),
        }
    }

    pub fn all() -> [Backend; 3] {
        [Backend::SpectrumDefault, Backend::Mvapich2Gdr, Backend::Nccl]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_resolve_to_named_profiles() {
        assert_eq!(Backend::Mvapich2Gdr.profile().name, "MVAPICH2-GDR");
        assert_eq!(Backend::SpectrumDefault.profile().name, "Spectrum-MPI (default)");
        assert_eq!(Backend::Nccl.profile().name, "NCCL-like");
        assert_eq!(Backend::all().len(), 3);
    }
}
