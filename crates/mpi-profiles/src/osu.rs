//! OSU-microbenchmark-style sweeps: `osu_allreduce` / `osu_bcast`
//! equivalents over the simulator. These regenerate the paper's
//! communication-level comparison between MVAPICH2-GDR and the default
//! MPI (experiment F2).

use summit_sim::Machine;

use crate::profile::MpiProfile;

/// One row of an OSU-style sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsuPoint {
    pub bytes: u64,
    /// Average latency in microseconds (the OSU reporting unit).
    pub latency_us: f64,
}

/// The canonical OSU message-size ladder: powers of two from `min` to
/// `max` inclusive.
pub fn size_ladder(min: u64, max: u64) -> Vec<u64> {
    assert!(min >= 1 && min <= max, "invalid ladder bounds");
    let mut v = Vec::new();
    let mut s = min.next_power_of_two();
    while s <= max {
        v.push(s);
        // Overflow means the next power of two exceeds u64::MAX ≥ max:
        // the ladder is complete.
        let Some(next) = s.checked_mul(2) else { break };
        s = next;
    }
    v
}

/// `osu_allreduce`: latency per message size for `profile` across
/// `n_ranks` GPUs.
pub fn allreduce_sweep(
    profile: &MpiProfile,
    machine: &Machine,
    n_ranks: usize,
    sizes: &[u64],
) -> Vec<OsuPoint> {
    sizes
        .iter()
        .map(|&bytes| OsuPoint {
            bytes,
            latency_us: profile.allreduce_time(machine, n_ranks, bytes).as_secs_f64() * 1e6,
        })
        .collect()
}

/// `osu_bcast`: broadcast latency per message size.
pub fn bcast_sweep(
    profile: &MpiProfile,
    machine: &Machine,
    n_ranks: usize,
    sizes: &[u64],
) -> Vec<OsuPoint> {
    sizes
        .iter()
        .map(|&bytes| OsuPoint {
            bytes,
            latency_us: profile.broadcast_time(machine, n_ranks, bytes).as_secs_f64() * 1e6,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use summit_sim::MachineConfig;

    fn machine(gpus: usize) -> Machine {
        Machine::new(MachineConfig::summit_for_gpus(gpus))
    }

    #[test]
    fn ladder_is_powers_of_two() {
        assert_eq!(size_ladder(4, 64), vec![4, 8, 16, 32, 64]);
        assert_eq!(size_ladder(3, 16), vec![4, 8, 16]);
        assert_eq!(size_ladder(1, 1), vec![1]);
    }

    #[test]
    #[should_panic(expected = "invalid ladder")]
    fn bad_ladder_panics() {
        size_ladder(16, 4);
    }

    #[test]
    fn allreduce_sweep_shapes() {
        let m = machine(24);
        let sizes = size_ladder(1 << 10, 1 << 24);
        let mv2 = allreduce_sweep(&MpiProfile::mvapich2_gdr(), &m, 24, &sizes);
        let spec = allreduce_sweep(&MpiProfile::spectrum_default(), &m, 24, &sizes);
        assert_eq!(mv2.len(), sizes.len());
        // Large-message regime: MV2 wins decisively (GDR + tuned algo).
        let last = sizes.len() - 1;
        assert!(spec[last].latency_us > mv2[last].latency_us * 1.2);
        // Latency grows with size at the top of the ladder.
        assert!(mv2[last].latency_us > mv2[last - 4].latency_us);
    }

    #[test]
    fn bcast_sweep_monotone_at_large_sizes() {
        let m = machine(12);
        let sizes = size_ladder(1 << 16, 1 << 24);
        let pts = bcast_sweep(&MpiProfile::mvapich2_gdr(), &m, 12, &sizes);
        for w in pts.windows(2) {
            assert!(w[1].latency_us > w[0].latency_us * 0.9);
        }
    }
}

/// `osu_latency`-style point-to-point sweep between two GPUs: one
/// message per size, reported as one-way latency in µs.
pub fn pt2pt_latency_sweep(
    profile: &crate::profile::MpiProfile,
    machine: &Machine,
    src: summit_sim::GpuId,
    dst: summit_sim::GpuId,
    sizes: &[u64],
) -> Vec<OsuPoint> {
    use collectives::CostModel;
    use summit_sim::{Executor, Op, Program};
    sizes
        .iter()
        .map(|&bytes| {
            let p = profile.msg(machine, src, dst, bytes);
            let mut programs = vec![Program::new(); 2];
            programs[0].step(vec![Op::Send {
                peer: 1,
                bytes,
                tag: 0,
                path: p.path,
                overhead: p.overhead,
                rate_cap: p.rate_cap,
                eager: false,
            }]);
            programs[1].step(vec![Op::recv(0, 0)]);
            let exec = Executor::new(machine, vec![src, dst]);
            OsuPoint { bytes, latency_us: exec.run(programs).makespan.as_secs_f64() * 1e6 }
        })
        .collect()
}

/// `osu_bw`-style sweep: a window of 16 back-to-back messages per size,
/// reported as achieved bandwidth in GB/s.
pub fn pt2pt_bandwidth_sweep(
    profile: &crate::profile::MpiProfile,
    machine: &Machine,
    src: summit_sim::GpuId,
    dst: summit_sim::GpuId,
    sizes: &[u64],
) -> Vec<(u64, f64)> {
    use collectives::CostModel;
    use summit_sim::{Executor, Op, Program};
    const WINDOW: u64 = 16;
    sizes
        .iter()
        .map(|&bytes| {
            let p = profile.msg(machine, src, dst, bytes);
            let mut programs = vec![Program::new(); 2];
            for i in 0..WINDOW {
                programs[0].step(vec![Op::Send {
                    peer: 1,
                    bytes,
                    tag: i,
                    path: p.path,
                    overhead: p.overhead,
                    rate_cap: p.rate_cap,
                    eager: false,
                }]);
                programs[1].step(vec![Op::recv(0, i)]);
            }
            let exec = Executor::new(machine, vec![src, dst]);
            let t = exec.run(programs).makespan.as_secs_f64();
            (bytes, (WINDOW * bytes) as f64 / t / 1e9)
        })
        .collect()
}

#[cfg(test)]
mod pt2pt_tests {
    use super::*;
    use crate::profile::MpiProfile;
    use summit_sim::{GpuId, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig::summit(2))
    }

    #[test]
    fn latency_small_messages_are_microseconds() {
        let m = machine();
        let pts =
            pt2pt_latency_sweep(&MpiProfile::mvapich2_gdr(), &m, GpuId(0), GpuId(6), &[8, 1024]);
        assert!(pts[0].latency_us > 1.0 && pts[0].latency_us < 20.0, "{:?}", pts[0]);
    }

    #[test]
    fn gdr_beats_staged_pt2pt() {
        let m = machine();
        let sizes = [4u64 << 20];
        let mv2 = pt2pt_latency_sweep(&MpiProfile::mvapich2_gdr(), &m, GpuId(0), GpuId(6), &sizes);
        let spec =
            pt2pt_latency_sweep(&MpiProfile::spectrum_default(), &m, GpuId(0), GpuId(6), &sizes);
        assert!(spec[0].latency_us > mv2[0].latency_us * 1.5);
    }

    #[test]
    fn bandwidth_approaches_link_rate_for_large_messages() {
        let m = machine();
        let bw = pt2pt_bandwidth_sweep(&MpiProfile::nccl(), &m, GpuId(0), GpuId(6), &[64 << 20]);
        // Inter-node GDR floor is the PCIe leg at 16 GB/s.
        assert!(bw[0].1 > 10.0 && bw[0].1 <= 16.0, "achieved {} GB/s", bw[0].1);
    }

    #[test]
    fn intra_node_bandwidth_is_nvlink_class() {
        let m = machine();
        let bw = pt2pt_bandwidth_sweep(&MpiProfile::nccl(), &m, GpuId(0), GpuId(1), &[64 << 20]);
        assert!(bw[0].1 > 35.0 && bw[0].1 <= 50.0, "achieved {} GB/s", bw[0].1);
    }
}
