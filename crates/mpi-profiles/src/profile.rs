//! An MPI library personality: knobs + cost-model implementation + a
//! cached allreduce-time oracle.

use parking_lot::Mutex;
use std::collections::HashMap;

use collectives::{Algorithm, CostModel, MsgParams};
use summit_sim::{DataPath, GpuId, Machine, SimTime};

use crate::knobs::Knobs;

/// A named MPI personality.
#[derive(Debug, Clone)]
pub struct MpiProfile {
    pub name: &'static str,
    pub knobs: Knobs,
}

impl MpiProfile {
    pub fn mvapich2_gdr() -> Self {
        MpiProfile { name: "MVAPICH2-GDR", knobs: Knobs::mvapich2_gdr() }
    }

    pub fn spectrum_default() -> Self {
        MpiProfile { name: "Spectrum-MPI (default)", knobs: Knobs::spectrum_default() }
    }

    pub fn nccl() -> Self {
        MpiProfile { name: "NCCL-like", knobs: Knobs::nccl() }
    }

    /// Which algorithm this library runs for an allreduce of `bytes`.
    pub fn select_algorithm(&self, bytes: u64) -> Algorithm {
        self.knobs.selection.select(bytes)
    }

    /// Simulate one allreduce of `bytes` across `n_ranks` dense-placed
    /// GPUs. Exact (uncached) — see [`AllreduceOracle`] for the
    /// interpolating cache used inside training-step loops.
    pub fn allreduce_time(&self, machine: &Machine, n_ranks: usize, bytes: u64) -> SimTime {
        if n_ranks <= 1 || bytes == 0 {
            return SimTime::ZERO;
        }
        let elems = (bytes as usize).div_ceil(collectives::ELEM_BYTES as usize);
        let algo = self.select_algorithm(bytes);
        let schedule = algo.build(n_ranks, elems);
        collectives::simulate_dense(&schedule, machine, self).makespan
    }

    /// Simulate a broadcast of `bytes` from rank 0 (model/parameter
    /// broadcast at training start).
    pub fn broadcast_time(&self, machine: &Machine, n_ranks: usize, bytes: u64) -> SimTime {
        if n_ranks <= 1 || bytes == 0 {
            return SimTime::ZERO;
        }
        let elems = (bytes as usize).div_ceil(collectives::ELEM_BYTES as usize);
        let schedule = collectives::tree::broadcast(n_ranks, elems, 0);
        collectives::simulate_dense(&schedule, machine, self).makespan
    }
}

impl CostModel for MpiProfile {
    fn msg(&self, machine: &Machine, src: GpuId, dst: GpuId, bytes: u64) -> MsgParams {
        let k = &self.knobs;
        let intra = machine.node_of(src) == machine.node_of(dst);
        let eager = bytes <= k.eager_threshold;
        let overhead = if eager { k.overhead_small } else { k.overhead_large };
        if intra {
            // Intra-node GPU-GPU goes over NVLink CUDA IPC regardless of
            // library; quality differences show up in the overheads.
            return MsgParams {
                path: DataPath::Gdr,
                overhead: SimTime::from_secs_f64(overhead),
                rate_cap: f64::INFINITY,
                eager,
            };
        }
        let (path, rate_cap) = if k.use_gdr && bytes <= k.gdr_limit {
            (DataPath::Gdr, f64::INFINITY)
        } else {
            (DataPath::HostStaged, k.staging_rate)
        };
        MsgParams { path, overhead: SimTime::from_secs_f64(overhead), rate_cap, eager }
    }
}

/// Quarter-octave geometric size grid used by the oracle's cache.
fn grid_bounds(bytes: u64) -> (u64, u64) {
    assert!(bytes >= 1);
    // Points at 2^(k/2): 256, 362, 512, 724, 1024, ...
    let mut lo = 256u64;
    if bytes <= lo {
        return (lo, lo);
    }
    loop {
        let hi = lo + lo / 2 + lo / 16; // ≈ lo * sqrt(2)
        if bytes <= hi {
            return (lo, hi);
        }
        lo = hi;
        if lo > 8 << 30 {
            return (lo, lo);
        }
    }
}

/// A memoizing allreduce-time oracle: simulates the geometric size grid
/// once per (rank count) and linearly interpolates between grid points.
/// The Horovod runtime calls this once per fused buffer per step, so the
/// cache is what keeps parameter sweeps fast.
pub struct AllreduceOracle<'m> {
    profile: MpiProfile,
    machine: &'m Machine,
    n_ranks: usize,
    cache: Mutex<HashMap<u64, f64>>,
}

impl<'m> AllreduceOracle<'m> {
    pub fn new(profile: MpiProfile, machine: &'m Machine, n_ranks: usize) -> Self {
        assert!(n_ranks <= machine.config.total_gpus(), "machine too small for rank count");
        AllreduceOracle { profile, machine, n_ranks, cache: Mutex::new(HashMap::new()) }
    }

    pub fn profile(&self) -> &MpiProfile {
        &self.profile
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    fn grid_time(&self, bytes: u64) -> f64 {
        if let Some(&t) = self.cache.lock().get(&bytes) {
            return t;
        }
        let t = self.profile.allreduce_time(self.machine, self.n_ranks, bytes).as_secs_f64();
        self.cache.lock().insert(bytes, t);
        t
    }

    /// Interpolated allreduce time for an arbitrary size, in seconds.
    pub fn time(&self, bytes: u64) -> f64 {
        if self.n_ranks <= 1 || bytes == 0 {
            return 0.0;
        }
        let (lo, hi) = grid_bounds(bytes);
        let t_lo = self.grid_time(lo);
        if lo == hi {
            // Below the grid floor or above its ceiling: scale by size
            // ratio beyond the ceiling, clamp at the floor.
            if bytes <= lo {
                return t_lo;
            }
            return t_lo * bytes as f64 / lo as f64;
        }
        let t_hi = self.grid_time(hi);
        let frac = (bytes - lo) as f64 / (hi - lo) as f64;
        t_lo + frac * (t_hi - t_lo)
    }

    /// Number of distinct grid points simulated so far.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summit_sim::MachineConfig;

    fn machine(gpus: usize) -> Machine {
        Machine::new(MachineConfig::summit_for_gpus(gpus))
    }

    #[test]
    fn grid_bounds_bracket() {
        for bytes in [1u64, 300, 1000, 5 << 20, 64 << 20] {
            let (lo, hi) = grid_bounds(bytes);
            assert!(lo <= hi);
            if bytes > 256 && hi > lo {
                assert!(lo < bytes && bytes <= hi, "bytes {bytes} in ({lo}, {hi}]");
            }
        }
    }

    #[test]
    fn mv2_beats_spectrum_on_large_allreduce() {
        let m = machine(24);
        let bytes = 64 << 20;
        let mv2 = MpiProfile::mvapich2_gdr().allreduce_time(&m, 24, bytes);
        let spec = MpiProfile::spectrum_default().allreduce_time(&m, 24, bytes);
        assert!(
            mv2.as_secs_f64() * 1.2 < spec.as_secs_f64(),
            "MV2 {mv2} should clearly beat Spectrum {spec}"
        );
    }

    #[test]
    fn mv2_beats_spectrum_on_mid_size() {
        let m = machine(48);
        let bytes = 2 << 20;
        let mv2 = MpiProfile::mvapich2_gdr().allreduce_time(&m, 48, bytes);
        let spec = MpiProfile::spectrum_default().allreduce_time(&m, 48, bytes);
        assert!(mv2 < spec);
    }

    #[test]
    fn nccl_competitive_with_mv2() {
        let m = machine(24);
        let bytes = 32 << 20;
        let nccl = MpiProfile::nccl().allreduce_time(&m, 24, bytes).as_secs_f64();
        let mv2 = MpiProfile::mvapich2_gdr().allreduce_time(&m, 24, bytes).as_secs_f64();
        assert!((nccl / mv2) < 1.5 && (mv2 / nccl) < 1.5, "nccl {nccl} vs mv2 {mv2}");
    }

    #[test]
    fn intra_node_is_fast_for_everyone() {
        let m = machine(6);
        for p in [MpiProfile::mvapich2_gdr(), MpiProfile::spectrum_default(), MpiProfile::nccl()] {
            let t = p.allreduce_time(&m, 6, 16 << 20).as_secs_f64();
            assert!(t < 3e-3, "{}: intra-node 16 MiB allreduce took {t}", p.name);
        }
    }

    #[test]
    fn allreduce_time_monotone_in_size() {
        let m = machine(12);
        let p = MpiProfile::mvapich2_gdr();
        let mut last = 0.0;
        for pow in 10..26 {
            let t = p.allreduce_time(&m, 12, 1 << pow).as_secs_f64();
            assert!(t >= last * 0.7, "gross non-monotonicity at 2^{pow}: {t} after {last}");
            last = t;
        }
    }

    #[test]
    fn trivial_cases_are_free() {
        let m = machine(6);
        let p = MpiProfile::mvapich2_gdr();
        assert_eq!(p.allreduce_time(&m, 1, 1 << 20), SimTime::ZERO);
        assert_eq!(p.allreduce_time(&m, 6, 0), SimTime::ZERO);
    }

    #[test]
    fn oracle_interpolates_and_caches() {
        let m = machine(12);
        let oracle = AllreduceOracle::new(MpiProfile::mvapich2_gdr(), &m, 12);
        let exact = oracle.profile().allreduce_time(&m, 12, 3 << 20).as_secs_f64();
        let interp = oracle.time(3 << 20);
        assert!((interp - exact).abs() / exact < 0.15, "interp {interp} vs exact {exact}");
        let before = oracle.cache_len();
        let _ = oracle.time(3 << 20);
        let _ = oracle.time((3 << 20) + 5);
        assert_eq!(oracle.cache_len(), before, "repeat queries must hit the cache");
    }

    #[test]
    fn oracle_monotone_enough() {
        let m = machine(24);
        let oracle = AllreduceOracle::new(MpiProfile::mvapich2_gdr(), &m, 24);
        let t1 = oracle.time(1 << 20);
        let t64 = oracle.time(64 << 20);
        assert!(t64 > t1 * 4.0);
    }

    #[test]
    fn broadcast_time_positive_and_scales() {
        let m = machine(24);
        let p = MpiProfile::mvapich2_gdr();
        let small = p.broadcast_time(&m, 24, 1 << 20).as_secs_f64();
        let large = p.broadcast_time(&m, 24, 64 << 20).as_secs_f64();
        assert!(small > 0.0 && large > small);
        assert_eq!(p.broadcast_time(&m, 1, 1 << 20), SimTime::ZERO);
    }

    #[test]
    fn oracle_zero_and_single_rank() {
        let m = machine(6);
        let oracle = AllreduceOracle::new(MpiProfile::nccl(), &m, 1);
        assert_eq!(oracle.time(1 << 20), 0.0);
        let oracle6 = AllreduceOracle::new(MpiProfile::nccl(), &m, 6);
        assert_eq!(oracle6.time(0), 0.0);
    }
}
