//! Tunable knobs of an MPI personality.
//!
//! These mirror the environment variables the paper sweeps
//! (`MV2_GPUDIRECT_LIMIT`, eager thresholds, hierarchical selection, …)
//! reduced to the parameters that matter to the fluid-flow model: which
//! data path a message takes, how fast the staged pipeline runs, how much
//! software overhead each message pays, and which collective algorithm a
//! given size selects.

use collectives::{Algorithm, LeaderAlgo};

/// Protocol/data-path knobs. All rates bytes/s, overheads seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Knobs {
    /// Messages at or below this size use the eager protocol (sender
    /// completes locally). MPI `*_EAGER_THRESHOLD`.
    pub eager_threshold: u64,
    /// Whether the library drives GPUDirect RDMA at all (CUDA-awareness
    /// quality). `MV2_USE_GPUDIRECT`.
    pub use_gdr: bool,
    /// Inter-node messages at or below this size go over the GDR path;
    /// larger ones fall back to (pipelined) host staging.
    /// `MV2_GPUDIRECT_LIMIT`.
    pub gdr_limit: u64,
    /// Effective pipeline rate of the host-staged path. Tuned libraries
    /// overlap the NVLink copy-in, PCIe injection and wire transfer;
    /// untuned ones stall between pipeline stages.
    pub staging_rate: f64,
    /// Per-message software overhead for small/eager messages.
    pub overhead_small: f64,
    /// Per-message software overhead for rendezvous messages (handshake).
    pub overhead_large: f64,
    /// Allreduce algorithm selection by total message size.
    pub selection: SelectionTable,
}

/// Size-indexed algorithm selection, like an MPI library's tuning table.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionTable {
    /// `(max_bytes, algorithm)` entries in increasing `max_bytes` order:
    /// the first entry whose bound is >= the message size wins.
    pub entries: Vec<(u64, Algorithm)>,
    /// Used when the message exceeds every bound.
    pub fallback: Algorithm,
}

impl SelectionTable {
    pub fn new(entries: Vec<(u64, Algorithm)>, fallback: Algorithm) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "selection bounds must be strictly increasing"
        );
        SelectionTable { entries, fallback }
    }

    pub fn select(&self, bytes: u64) -> Algorithm {
        for &(bound, algo) in &self.entries {
            if bytes <= bound {
                return algo;
            }
        }
        self.fallback
    }
}

impl Knobs {
    /// MVAPICH2-GDR-like defaults: aggressive GDR use, efficient staged
    /// pipelining, and a well-tuned selection table (including the
    /// two-level algorithm in the fused-buffer size range).
    pub fn mvapich2_gdr() -> Self {
        Knobs {
            eager_threshold: 16 << 10,
            use_gdr: true,
            gdr_limit: 512 << 10,
            staging_rate: 12e9,
            overhead_small: 1.8e-6,
            overhead_large: 5.0e-6,
            selection: SelectionTable::new(
                vec![
                    (16 << 10, Algorithm::RecursiveDoubling),
                    (128 << 10, Algorithm::Rabenseifner),
                    (
                        4 << 20,
                        Algorithm::Hierarchical { per_node: 6, leader: LeaderAlgo::Rabenseifner },
                    ),
                ],
                Algorithm::Ring,
            ),
        }
    }

    /// Spectrum-MPI-like system defaults: CUDA-aware but with an
    /// unpipelined staged path, higher per-message costs, and a selection
    /// table never tuned for GPU-resident multi-megabyte buffers
    /// (recursive doubling persists far past its useful range).
    pub fn spectrum_default() -> Self {
        Knobs {
            eager_threshold: 4 << 10,
            use_gdr: false,
            gdr_limit: 0,
            staging_rate: 6e9,
            overhead_small: 4.0e-6,
            overhead_large: 12.0e-6,
            selection: SelectionTable::new(
                vec![(64 << 10, Algorithm::Tree), (4 << 20, Algorithm::RecursiveDoubling)],
                Algorithm::Ring,
            ),
        }
    }

    /// NCCL-like: GDR everywhere, minimal software overhead, tree for
    /// small messages and topology rings for the rest.
    pub fn nccl() -> Self {
        Knobs {
            eager_threshold: 8 << 10,
            use_gdr: true,
            gdr_limit: u64::MAX,
            staging_rate: f64::INFINITY,
            overhead_small: 1.2e-6,
            overhead_large: 2.5e-6,
            selection: SelectionTable::new(vec![(32 << 10, Algorithm::Tree)], Algorithm::Ring),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_picks_first_matching_bound() {
        let t = Knobs::mvapich2_gdr().selection;
        assert_eq!(t.select(1 << 10), Algorithm::RecursiveDoubling);
        assert_eq!(t.select(16 << 10), Algorithm::RecursiveDoubling);
        assert_eq!(t.select((16 << 10) + 1), Algorithm::Rabenseifner);
        assert!(matches!(t.select(1 << 20), Algorithm::Hierarchical { .. }));
        assert_eq!(t.select(64 << 20), Algorithm::Ring);
    }

    #[test]
    fn spectrum_defaults_keep_rd_too_long() {
        let t = Knobs::spectrum_default().selection;
        assert_eq!(t.select(2 << 20), Algorithm::RecursiveDoubling);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_table_rejected() {
        SelectionTable::new(vec![(100, Algorithm::Ring), (100, Algorithm::Tree)], Algorithm::Ring);
    }

    #[test]
    fn profile_relationships() {
        let mv2 = Knobs::mvapich2_gdr();
        let spec = Knobs::spectrum_default();
        assert!(mv2.use_gdr && !spec.use_gdr);
        assert!(mv2.staging_rate > spec.staging_rate);
        assert!(mv2.overhead_large < spec.overhead_large);
    }

    #[test]
    fn empty_table_uses_fallback() {
        let t = SelectionTable::new(vec![], Algorithm::Ring);
        assert_eq!(t.select(0), Algorithm::Ring);
        assert_eq!(t.select(u64::MAX), Algorithm::Ring);
    }
}
