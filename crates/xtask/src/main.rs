//! `cargo run -p xtask -- lint` — the repo's in-house source lint pass.
//!
//! Rules, applied to library sources (`src/` of the root facade and of
//! every `crates/*` member except `bench` and this tool; `vendor/`,
//! `tests/`, and `#[cfg(test)]` code are exempt):
//!
//! 1. **unwrap-ban** — no `.unwrap()` / `.expect(` in library code.
//!    A site may be waived with a same-line justification comment
//!    `// lint: allow(unwrap): <reason>`; an empty reason is itself a
//!    violation. `dbg!`, `todo!`, and `unimplemented!` are banned with
//!    no waiver.
//! 2. **hot-path-alloc** — a function preceded by a `// lint: hot-path`
//!    marker must not contain allocation-capable calls (`vec!`,
//!    `Vec::new`, `with_capacity`, `.to_vec()`, `to_owned`,
//!    `.collect(`, `.clone()`, `Box::new`, `String::…`, `format!`).
//!    These are the per-step kernels the zero-allocation claim covers.
//! 3. **no-f64** — a function preceded by `// lint: no-f64` must not
//!    mention `f64` anywhere in its body: the deterministic reduction
//!    paths accumulate in `f32` exactly like the GPU kernels they
//!    model, and a stray widening would silently change every
//!    fingerprinted result.
//! 4. **hot-path-dyn-trace** — inside a `// lint: hot-path` fn,
//!    instrumentation must use the span recorder's no-alloc API
//!    (`Lane::record` / `record_args`, `&'static str` names); the
//!    allocating `record_dyn(` escape hatch is banned there.
//! 5. **sleep-ban** — no bare `thread::sleep` in library code: every
//!    delay must go through `faults::FaultClock`, so chaos runs can be
//!    replayed on a virtual clock. The one sanctioned site (the clock
//!    itself) carries a same-line waiver
//!    `// lint: allow(sleep): <reason>`; an empty reason is itself a
//!    violation.
//! 6. **simd-fallback** — every `#[target_feature]` fn must (a) carry
//!    an `_avx2` / `_f16c` suffix naming the feature it needs, (b) have
//!    a same-file `_scalar` twin, (c) be reachable only through a
//!    runtime-dispatch call site (the file must consult the matching
//!    `simd::have_*` predicate), and (d) both twins must actually be
//!    called somewhere in the file. This keeps the crate loadable on
//!    machines without the extension and keeps the differential tests
//!    honest — an uncalled twin proves nothing.
//! 7. **atomic-ordering** — every `Ordering::Relaxed` in library code
//!    must carry a same-line `// lint: allow(relaxed): <invariant>`
//!    waiver naming the invariant that makes the relaxation sound (an
//!    empty reason is itself a violation), and every `compare_exchange`
//!    / `compare_exchange_weak` call must name both the success and
//!    failure orderings explicitly (two `Ordering::` mentions within
//!    the call). The DPOR models in `trainer/tests/dpor_protocols.rs`
//!    prove exactly which orderings the executor protocols need; this
//!    rule keeps a future "harmless" demotion from slipping past review
//!    unjustified.
//! 8. **transport-timeout** — no hard-coded `Duration::from_*` in
//!    `crates/transport/src`: socket deadlines, heartbeat pacing, and
//!    backoff must derive from `faults::RetryPolicy` / `FaultClock` so
//!    every wait in the byte-stream path obeys one tunable policy and
//!    stays replayable. A non-timeout use (e.g. unit conversion of a
//!    timestamp) may be waived with a same-line
//!    `// lint: allow(duration): <reason>`; an empty reason is itself
//!    a violation. Test code is exempt as for every rule.
//!
//! The pass is deliberately token-based (comment- and string-stripped
//! lines, brace counting) rather than AST-based: it has zero
//! dependencies, runs in milliseconds, and the rules it enforces are
//! local enough that tokens suffice.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

/// Crates whose sources the lint pass skips: report binaries (`bench`)
/// and this tool itself — neither is library code on the hot path.
const EXEMPT_CRATES: &[&str] = &["bench", "xtask"];

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files);
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if EXEMPT_CRATES.contains(&name) {
                continue;
            }
            collect_rs(&dir.join("src"), &mut files);
        }
    }
    files.sort();

    // Pass 1: files that are whole-file test modules (`#[cfg(test)]
    // mod name;` in a parent) are exempt from every rule.
    let test_files = test_module_files(&files);

    // Pass 2: lint.
    let mut findings: Vec<Finding> = Vec::new();
    let mut linted = 0usize;
    let mut exempt = 0usize;
    for file in &files {
        if test_files.contains(file) {
            exempt += 1;
            continue;
        }
        match std::fs::read_to_string(file) {
            // A file-wide `#![cfg(test)]` makes the whole file test code.
            Ok(text) if text.lines().any(|l| l.trim() == "#![cfg(test)]") => exempt += 1,
            Ok(text) => {
                linted += 1;
                lint_file(file, &text, &root, &mut findings);
                lint_simd_fallback(file, &text, &root, &mut findings);
            }
            Err(err) => {
                eprintln!("xtask lint: cannot read {}: {err}", file.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if findings.is_empty() {
        println!("xtask lint: clean ({linted} files, {exempt} test-module files exempt)");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("xtask lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(manifest)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Files pulled in via `#[cfg(test)] mod name;` anywhere in the set.
fn test_module_files(files: &[PathBuf]) -> std::collections::HashSet<PathBuf> {
    let mut out = std::collections::HashSet::new();
    for file in files {
        let Ok(text) = std::fs::read_to_string(file) else { continue };
        let Some(dir) = file.parent() else { continue };
        let mut pending_cfg_test = false;
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
                continue;
            }
            if pending_cfg_test {
                if let Some(rest) = t.strip_prefix("mod ").or_else(|| t.strip_prefix("pub mod ")) {
                    if let Some(name) = rest.strip_suffix(';') {
                        let name = name.trim();
                        out.insert(dir.join(format!("{name}.rs")));
                        out.insert(dir.join(name).join("mod.rs"));
                    }
                }
                if !t.starts_with("#[") {
                    pending_cfg_test = false;
                }
            }
        }
    }
    out
}

struct Finding {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path.display(), self.line, self.rule, self.detail)
    }
}

/// Allocation-capable tokens banned inside `// lint: hot-path` bodies.
const ALLOC_TOKENS: &[&str] = &[
    "vec!",
    "Vec::new",
    "Vec::<",
    "with_capacity",
    ".to_vec()",
    "to_owned",
    ".collect(",
    ".clone()",
    "Box::new",
    "String::new",
    "String::from",
    "format!",
];

/// Macros banned outright, waiver or not.
const BANNED_MACROS: &[&str] = &["dbg!(", "todo!(", "unimplemented!("];

fn lint_file(path: &Path, text: &str, root: &Path, findings: &mut Vec<Finding>) {
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let in_transport = rel.starts_with("crates/transport/src");
    let all_lines: Vec<&str> = text.lines().collect();
    let mut depth: i64 = 0;
    // Skip state for `#[cfg(test)]`-gated items (mod blocks, fns).
    let mut pending_cfg_test = false;
    let mut skip_until_depth: Option<i64> = None;
    // Marker state for hot-path / no-f64 functions.
    let mut pending_hot = false;
    let mut pending_no_f64 = false;
    let mut marked: Option<(bool, bool, i64)> = None; // (hot, no_f64, body entry depth)
    let mut awaiting_body: Option<(bool, bool)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_comments_and_strings(raw);
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;

        // Inside a cfg(test)-gated block: only track braces.
        if let Some(until) = skip_until_depth {
            depth += opens - closes;
            if depth <= until {
                skip_until_depth = None;
            }
            continue;
        }

        let trimmed = raw.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            depth += opens - closes;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("#[") {
                depth += opens - closes;
                continue; // further attributes on the gated item
            }
            pending_cfg_test = false;
            if opens > 0 {
                // Gated item with a body: skip until its braces close.
                let entry = depth;
                depth += opens - closes;
                if depth > entry {
                    skip_until_depth = Some(entry);
                }
                continue;
            }
            // Gated single-line item (`mod x;`, `use …;`): just skip it.
            depth += opens - closes;
            continue;
        }

        // Marker comments precede the fn they mark.
        if raw.contains("// lint: hot-path") {
            pending_hot = true;
        }
        if raw.contains("// lint: no-f64") {
            pending_no_f64 = true;
        }
        if (pending_hot || pending_no_f64) && code.contains("fn ") {
            awaiting_body = Some((pending_hot, pending_no_f64));
            pending_hot = false;
            pending_no_f64 = false;
        }
        if let Some((hot, no_f64)) = awaiting_body {
            if opens > 0 {
                marked = Some((hot, no_f64, depth));
                awaiting_body = None;
            }
        }

        // Rules inside a marked fn body (including its opening line).
        if let Some((hot, no_f64, entry)) = marked {
            if hot {
                for tok in ALLOC_TOKENS {
                    if code.contains(tok) {
                        findings.push(Finding {
                            path: rel.clone(),
                            line: line_no,
                            rule: "hot-path-alloc",
                            detail: format!(
                                "allocation-capable `{tok}` in a `// lint: hot-path` fn"
                            ),
                        });
                    }
                }
                if code.contains("record_dyn(") {
                    findings.push(Finding {
                        path: rel.clone(),
                        line: line_no,
                        rule: "hot-path-dyn-trace",
                        detail: "allocating `record_dyn(` in a `// lint: hot-path` fn; \
                                 use `record`/`record_args` with static names"
                            .to_string(),
                    });
                }
            }
            if no_f64 && code.contains("f64") {
                findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule: "no-f64",
                    detail: "`f64` in a `// lint: no-f64` fn".to_string(),
                });
            }
            depth += opens - closes;
            if depth <= entry {
                marked = None;
            }
        } else {
            depth += opens - closes;
        }

        // Universal bans.
        for mac in BANNED_MACROS {
            if code.contains(mac) {
                findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule: "banned-macro",
                    detail: format!("`{}` must not ship in library code", &mac[..mac.len() - 1]),
                });
            }
        }
        if code.contains("thread::sleep") {
            match waiver_reason_for(raw, "sleep") {
                Some(reason) if !reason.is_empty() => {}
                Some(_) => findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule: "sleep-ban",
                    detail: "waiver comment present but the reason is empty".to_string(),
                }),
                None => findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule: "sleep-ban",
                    detail: "bare `thread::sleep` in library code — route delays through \
                             `faults::FaultClock` (waive with `// lint: allow(sleep): <reason>`)"
                        .to_string(),
                }),
            }
        }
        let has_unwrap = code.contains(".unwrap()") || code.contains(".expect(");
        if has_unwrap {
            match waiver_reason(raw) {
                Some(reason) if !reason.is_empty() => {}
                Some(_) => findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule: "unwrap-ban",
                    detail: "waiver comment present but the reason is empty".to_string(),
                }),
                None => findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule: "unwrap-ban",
                    detail: "`.unwrap()`/`.expect(` in library code (waive with \
                             `// lint: allow(unwrap): <reason>`)"
                        .to_string(),
                }),
            }
        }
        if code.contains("Ordering::Relaxed") {
            match waiver_reason_for(raw, "relaxed") {
                Some(reason) if !reason.is_empty() => {}
                Some(_) => findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule: "atomic-ordering",
                    detail: "waiver comment present but the invariant is empty".to_string(),
                }),
                None => findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule: "atomic-ordering",
                    detail: "`Ordering::Relaxed` in library code — name the invariant that \
                             makes it sound (`// lint: allow(relaxed): <invariant>`)"
                        .to_string(),
                }),
            }
        }
        if in_transport && code.contains("Duration::from_") {
            match waiver_reason_for(raw, "duration") {
                Some(reason) if !reason.is_empty() => {}
                Some(_) => findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule: "transport-timeout",
                    detail: "waiver comment present but the reason is empty".to_string(),
                }),
                None => findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule: "transport-timeout",
                    detail: "hard-coded `Duration::from_*` in the transport layer — derive \
                             waits from `faults::RetryPolicy`/`FaultClock` (waive a \
                             non-timeout use with `// lint: allow(duration): <reason>`)"
                        .to_string(),
                }),
            }
        }
        if code.contains("compare_exchange") && !orderings_explicit(&all_lines, idx) {
            findings.push(Finding {
                path: rel.clone(),
                line: line_no,
                rule: "atomic-ordering",
                detail: "`compare_exchange*` must name both the success and failure \
                         orderings explicitly (two `Ordering::` mentions)"
                    .to_string(),
            });
        }
    }
}

/// True when the `compare_exchange*` call starting on `all_lines[idx]`
/// names two `Ordering::` values within the call's argument list. The
/// call may wrap: stripped lines are joined from the call site until
/// its parentheses balance (bounded lookahead — a call that hasn't
/// closed within 8 lines is judged on what was seen).
fn orderings_explicit(all_lines: &[&str], idx: usize) -> bool {
    let mut mentions = 0usize;
    let mut paren_depth = 0i64;
    let mut seen_open = false;
    for (k, raw) in all_lines.iter().enumerate().skip(idx).take(8) {
        let code = strip_comments_and_strings(raw);
        let scan = if k == idx {
            // Start at the call itself, not earlier text on the line.
            match code.find("compare_exchange") {
                Some(at) => code[at..].to_string(),
                None => code,
            }
        } else {
            code
        };
        mentions += scan.matches("Ordering::").count();
        for c in scan.chars() {
            match c {
                '(' => {
                    paren_depth += 1;
                    seen_open = true;
                }
                ')' => paren_depth -= 1,
                _ => {}
            }
        }
        if seen_open && paren_depth <= 0 {
            break;
        }
    }
    mentions >= 2
}

/// The fn name declared on `line`, if any.
fn declared_fn_name(line: &str) -> Option<&str> {
    let at = line.find("fn ")?;
    // Reject `hot_fn x` style false positives: `fn` must start a word.
    if at > 0 && line.as_bytes()[at - 1].is_ascii_alphanumeric() {
        return None;
    }
    let rest = line[at + 3..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_alphanumeric() && c != '_').unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

/// Rule 6 (`simd-fallback`): see the module docs. Whole-file pass —
/// the twin/dispatch requirements relate distant lines, so it runs
/// separately from the line-state machine in [`lint_file`].
fn lint_simd_fallback(path: &Path, text: &str, root: &Path, findings: &mut Vec<Finding>) {
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    // Collect the `#[target_feature]` fns: attribute line(s), then the
    // declaration. Stripped lines keep attributes-in-strings (as in
    // this file's own tests) from registering.
    let mut simd_fns: Vec<(usize, String)> = Vec::new();
    let mut pending = false;
    for (idx, raw) in text.lines().enumerate() {
        let code = strip_comments_and_strings(raw);
        let t = code.trim();
        if t.starts_with("#[target_feature") {
            pending = true;
            continue;
        }
        if pending {
            if t.starts_with("#[") || t.is_empty() {
                continue;
            }
            if let Some(name) = declared_fn_name(&code) {
                simd_fns.push((idx + 1, name.to_string()));
            }
            pending = false;
        }
    }
    if simd_fns.is_empty() {
        return;
    }

    let stripped: Vec<String> = text.lines().map(strip_comments_and_strings).collect();
    let calls = |name: &str| {
        let declaration = format!("fn {name}");
        let call = format!("{name}(");
        stripped.iter().filter(|l| l.contains(&call) && !l.contains(&declaration)).count()
    };
    for (line, name) in &simd_fns {
        let Some((stem, predicate)) = name
            .strip_suffix("_avx2")
            .map(|s| (s, "have_avx2_fma("))
            .or_else(|| name.strip_suffix("_f16c").map(|s| (s, "have_f16c(")))
        else {
            findings.push(Finding {
                path: rel.clone(),
                line: *line,
                rule: "simd-fallback",
                detail: format!(
                    "`#[target_feature]` fn `{name}` must carry an `_avx2`/`_f16c` suffix \
                     naming the feature it needs"
                ),
            });
            continue;
        };
        let twin = format!("{stem}_scalar");
        if !stripped.iter().any(|l| l.contains(&format!("fn {twin}"))) {
            findings.push(Finding {
                path: rel.clone(),
                line: *line,
                rule: "simd-fallback",
                detail: format!("`{name}` has no same-file scalar twin `{twin}`"),
            });
            continue;
        }
        if !stripped.iter().any(|l| l.contains(predicate)) {
            findings.push(Finding {
                path: rel.clone(),
                line: *line,
                rule: "simd-fallback",
                detail: format!(
                    "`{name}` has no runtime-dispatch call site: the file never consults \
                     `{}...)`",
                    predicate
                ),
            });
        }
        if calls(name) == 0 {
            findings.push(Finding {
                path: rel.clone(),
                line: *line,
                rule: "simd-fallback",
                detail: format!("`{name}` is declared but never dispatched"),
            });
        }
        if calls(&twin) == 0 {
            findings.push(Finding {
                path: rel.clone(),
                line: *line,
                rule: "simd-fallback",
                detail: format!("scalar twin `{twin}` is never called — the fallback is dead"),
            });
        }
    }
}

/// The reason text of a same-line `// lint: allow(unwrap): …` waiver.
fn waiver_reason(raw: &str) -> Option<&str> {
    waiver_reason_for(raw, "unwrap")
}

/// The reason text of a same-line `// lint: allow(<kind>): …` waiver.
fn waiver_reason_for<'a>(raw: &'a str, kind: &str) -> Option<&'a str> {
    let marker = format!("// lint: allow({kind}):");
    raw.find(&marker).map(|at| raw[at + marker.len()..].trim())
}

/// Blank out `//` comments, string literals, char literals, and
/// lifetime-free quoting so brace counting and token matching see only
/// code. Keeps the line length intact where convenient; the output is
/// only scanned for substrings and braces.
fn strip_comments_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_str = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_str {
            if c == '\\' {
                i += 2;
                continue;
            }
            if c == '"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        match c {
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break, // line comment
            '"' => {
                in_str = true;
                i += 1;
            }
            '\'' => {
                // Char literal: 'x' or '\n' or '\\'; lifetimes ('a) have
                // no closing quote within a few chars — leave them.
                if i + 2 < bytes.len() && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\\' {
                    i += 3;
                } else if i + 3 < bytes.len() && bytes[i + 1] == b'\\' && bytes[i + 3] == b'\'' {
                    i += 4;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(src: &str) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        lint_file(Path::new("x.rs"), src, Path::new("."), &mut out);
        out.into_iter().map(|f| (f.rule.to_string(), f.line)).collect()
    }

    fn transport_findings_for(src: &str) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        lint_file(Path::new("crates/transport/src/x.rs"), src, Path::new("."), &mut out);
        out.into_iter().map(|f| (f.rule.to_string(), f.line)).collect()
    }

    #[test]
    fn transport_duration_literals_need_a_waiver() {
        let src = "\
fn f(policy: &RetryPolicy) {
    let t = Duration::from_millis(250);
    let u = Duration::from_millis(ms); // lint: allow(duration):
    let v = Duration::from_millis(ms); // lint: allow(duration): unit conversion, not a timeout
    let w = policy.deadline(0);
}
";
        assert_eq!(
            transport_findings_for(src),
            vec![("transport-timeout".to_string(), 2), ("transport-timeout".to_string(), 3)]
        );
        // The same source outside crates/transport/src is untouched.
        assert_eq!(findings_for(src), vec![]);
    }

    #[test]
    fn transport_duration_in_test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f() {
        let t = Duration::from_secs(2);
    }
}
";
        assert_eq!(transport_findings_for(src), vec![]);
    }

    #[test]
    fn relaxed_ordering_needs_a_waiver_with_an_invariant() {
        let src = "\
fn f(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
    c.load(Ordering::Relaxed); // lint: allow(relaxed):
    c.store(0, Ordering::Relaxed); // lint: allow(relaxed): monotonic counter, read under lock
}
";
        assert_eq!(
            findings_for(src),
            vec![("atomic-ordering".to_string(), 2), ("atomic-ordering".to_string(), 3)]
        );
    }

    #[test]
    fn relaxed_in_cfg_test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}
";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn compare_exchange_must_name_both_orderings() {
        let src = "\
fn f(w: &AtomicU64) {
    let _ = w.compare_exchange_weak(a, b, Ordering::AcqRel, Ordering::Acquire);
    let _ = w.compare_exchange(a, b, Ordering::SeqCst);
}
";
        assert_eq!(findings_for(src), vec![("atomic-ordering".to_string(), 3)]);
    }

    #[test]
    fn wrapped_compare_exchange_calls_are_scanned_to_the_closing_paren() {
        let src = "\
fn f(w: &AtomicU64) {
    let _ = w.compare_exchange_weak(
        cur,
        new,
        Ordering::AcqRel,
        Ordering::Acquire,
    );
}
";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn record_dyn_is_banned_in_hot_path_fns() {
        let src = "\
// lint: hot-path
fn step(lane: &Lane) {
    lane.record_dyn(\"CAT\", &name, t0, dur);
}
";
        assert_eq!(findings_for(src), vec![("hot-path-dyn-trace".to_string(), 3)]);
    }

    #[test]
    fn static_recorder_api_passes_the_hot_path_rule() {
        let src = "\
// lint: hot-path
fn step(lane: &Lane) {
    lane.record_args(\"CAT\", \"name\", t0, dur, 0, 1);
    lane.record(\"CAT\", \"name\", t0, dur);
}
";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn record_dyn_is_allowed_on_cold_paths() {
        let src = "\
fn replay(lane: &Lane) {
    lane.record_dyn(\"CAT\", &name, t0, dur);
}
";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn hot_path_marker_covers_only_the_next_fn() {
        let src = "\
// lint: hot-path
fn hot(lane: &Lane) {
    lane.record_args(\"CAT\", \"name\", t0, dur, 0, 1);
}

fn cold(lane: &Lane) {
    lane.record_dyn(\"CAT\", &name, t0, dur);
    let v = Vec::new();
}
";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn alloc_tokens_still_fire_alongside_the_dyn_rule() {
        let src = "\
// lint: hot-path
fn step(lane: &Lane) {
    lane.record_dyn(\"CAT\", &format!(\"x{i}\"), t0, dur);
}
";
        let rules: Vec<String> = findings_for(src).into_iter().map(|(r, _)| r).collect();
        assert!(rules.contains(&"hot-path-alloc".to_string()), "{rules:?}");
        assert!(rules.contains(&"hot-path-dyn-trace".to_string()), "{rules:?}");
    }

    fn simd_findings_for(src: &str) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        lint_simd_fallback(Path::new("x.rs"), src, Path::new("."), &mut out);
        out.into_iter().map(|f| (f.rule.to_string(), f.line)).collect()
    }

    const SIMD_OK: &str = "\
fn sum_scalar(x: &mut [f32]) {}

#[cfg(target_arch = \"x86_64\")]
#[target_feature(enable = \"avx2,fma\")]
unsafe fn sum_avx2(x: &mut [f32]) {}

pub fn sum(x: &mut [f32]) {
    if simd::have_avx2_fma() {
        return unsafe { sum_avx2(x) };
    }
    sum_scalar(x)
}
";

    #[test]
    fn complete_simd_triple_passes() {
        assert!(simd_findings_for(SIMD_OK).is_empty());
    }

    #[test]
    fn simd_fn_without_feature_suffix_fails() {
        let src = SIMD_OK.replace("sum_avx2", "sum_fast");
        let f = simd_findings_for(&src);
        assert_eq!(f, vec![("simd-fallback".to_string(), 5)]);
    }

    #[test]
    fn missing_scalar_twin_fails() {
        let src = SIMD_OK.replace("sum_scalar", "sum_slow");
        assert_eq!(simd_findings_for(&src), vec![("simd-fallback".to_string(), 5)]);
    }

    #[test]
    fn missing_dispatch_predicate_fails() {
        let src = SIMD_OK.replace("simd::have_avx2_fma()", "true");
        let f = simd_findings_for(&src);
        assert_eq!(f, vec![("simd-fallback".to_string(), 5)], "{f:?}");
    }

    #[test]
    fn uncalled_twins_fail() {
        let src = "\
fn pack_scalar(x: &mut [f32]) {}

#[target_feature(enable = \"f16c\")]
unsafe fn pack_f16c(x: &mut [f32]) {}

pub fn pack(x: &mut [f32]) {
    let _ = simd::have_f16c();
}
";
        let f = simd_findings_for(src);
        assert_eq!(
            f,
            vec![("simd-fallback".to_string(), 4), ("simd-fallback".to_string(), 4)],
            "both the simd fn and the scalar twin are dead: {f:?}"
        );
    }

    #[test]
    fn files_without_target_feature_are_untouched() {
        assert!(simd_findings_for("fn plain() {}\n").is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt_from_hot_path_rules() {
        let src = "\
#[cfg(test)]
mod tests {
    // lint: hot-path
    fn helper(lane: &Lane) {
        lane.record_dyn(\"CAT\", &name, t0, dur);
    }
}
";
        assert!(findings_for(src).is_empty());
    }
}
