//! Adversarial property tests for the wire frame codec: arbitrary
//! garbage, truncations, and single-bit flips must never panic the
//! decoder and never smuggle a corrupted frame through; duplicated and
//! reordered frames must come out of the dedup window exactly once, in
//! order. The incremental [`FrameDecoder`] is differentially tested
//! against the naive [`reference_decode`] under arbitrary chunk splits.

use proptest::prelude::*;
use transport::frame::{
    encode, parse_body, reference_decode, DedupWindow, Frame, FrameDecoder, FrameError, FrameKind,
    Offer, HEADER_LEN,
};

fn kind_strategy() -> impl Strategy<Value = FrameKind> {
    prop::sample::select(vec![
        FrameKind::Data,
        FrameKind::Ack,
        FrameKind::Nack,
        FrameKind::Heartbeat,
        FrameKind::Hello,
        FrameKind::Welcome,
        FrameKind::Ready,
        FrameKind::Start,
        FrameKind::StepDone,
        FrameKind::Commit,
        FrameKind::Degrade,
        FrameKind::Finished,
        FrameKind::Telemetry,
    ])
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        kind_strategy(),
        0u16..64,
        0u32..8,
        0u64..1 << 40,
        (0u32..1024, 0u32..32, 0u32..1 << 20),
        prop::collection::vec(0u8..=255, 0..256),
    )
        .prop_map(|(kind, from, era, seq, (step, round, offset), payload)| Frame {
            kind,
            from,
            era,
            seq,
            step,
            round,
            offset,
            payload,
        })
}

/// Drain every decodable frame (or error) out of an incremental
/// decoder, stopping once it poisons or runs out of complete frames.
fn drain(dec: &mut FrameDecoder) -> Vec<Result<Frame, FrameError>> {
    let mut out = Vec::new();
    while let Some(item) = dec.next_frame() {
        let poisoned = dec.is_poisoned();
        out.push(item);
        if poisoned {
            break;
        }
    }
    out
}

/// Split `bytes` into chunks at the given cut fractions — models TCP
/// delivering a stream in arbitrary pieces.
fn feed_in_chunks(dec: &mut FrameDecoder, bytes: &[u8], cuts: &[usize]) {
    let mut at = 0;
    for &c in cuts {
        let cut = at + c % (bytes.len() - at + 1);
        dec.feed(&bytes[at..cut]);
        at = cut;
    }
    dec.feed(&bytes[at..]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity, no matter how the stream is
    /// chopped into read chunks.
    #[test]
    fn roundtrip_survives_arbitrary_chunking(
        frames in prop::collection::vec(frame_strategy(), 1..8),
        cuts in prop::collection::vec(0usize..4096, 0..12),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode(f));
        }
        let mut dec = FrameDecoder::new();
        feed_in_chunks(&mut dec, &bytes, &cuts);
        let got = drain(&mut dec);
        prop_assert_eq!(got.len(), frames.len());
        for (g, want) in got.iter().zip(&frames) {
            prop_assert_eq!(g.as_ref().expect("valid frame decodes"), want);
        }
        prop_assert!(!dec.is_poisoned());
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Arbitrary garbage never panics either decoder, and the
    /// incremental decoder agrees with the reference on every frame it
    /// can see. The reference reports trailing incomplete bytes as
    /// `Truncated`; the incremental decoder just waits for more input,
    /// so that one trailing entry is allowed to differ.
    #[test]
    fn incremental_decoder_matches_reference_on_garbage(
        bytes in prop::collection::vec(0u8..=255, 0..2048),
        cuts in prop::collection::vec(0usize..4096, 0..12),
    ) {
        let want = reference_decode(&bytes);
        let mut dec = FrameDecoder::new();
        feed_in_chunks(&mut dec, &bytes, &cuts);
        let got = drain(&mut dec);

        let trailing_truncation = matches!(want.last(), Some(Err(FrameError::Truncated)));
        let head = if trailing_truncation { &want[..want.len() - 1] } else { &want[..] };
        prop_assert_eq!(got.len(), head.len());
        for (g, w) in got.iter().zip(head) {
            prop_assert_eq!(g, w);
        }
        if trailing_truncation {
            prop_assert!(!dec.is_poisoned());
            prop_assert!(dec.pending() > 0);
        }
    }

    /// Garbage mixed into a valid stream: whatever happens, decoding
    /// never panics and the frames *before* the corruption decode
    /// exactly.
    #[test]
    fn garbage_after_valid_frames_never_panics(
        frames in prop::collection::vec(frame_strategy(), 1..4),
        garbage in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode(f));
        }
        bytes.extend_from_slice(&garbage);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let got = drain(&mut dec);
        prop_assert!(got.len() >= frames.len());
        for (g, want) in got.iter().zip(&frames) {
            prop_assert_eq!(g.as_ref().expect("pre-corruption frame decodes"), want);
        }
    }

    /// Truncating a valid frame anywhere never yields a frame and never
    /// poisons the stream — the decoder waits for the rest.
    #[test]
    fn truncation_is_detected_not_misdecoded(
        frame in frame_strategy(),
        cut_sel in 0usize..1 << 16,
    ) {
        let bytes = encode(&frame);
        let cut = cut_sel % bytes.len(); // strictly shorter than the frame
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes[..cut]);
        prop_assert!(dec.next_frame().is_none());
        prop_assert!(!dec.is_poisoned());
        // The reference decoder calls the same prefix truncated.
        if cut > 0 {
            let want = reference_decode(&bytes[..cut]);
            prop_assert_eq!(want.last(), Some(&Err(FrameError::Truncated)));
        }
    }

    /// A single flipped bit is always caught: the decoder either
    /// reports an error, keeps waiting for bytes, or — if the flip
    /// lands in the uncovered length prefix and still frames — the
    /// decoded frame must equal the original (CRC covers everything
    /// after the prefix). It never panics and never delivers a mangled
    /// frame.
    #[test]
    fn single_bit_flip_never_smuggles_a_frame(
        frame in frame_strategy(),
        bit_sel in 0usize..1 << 20,
    ) {
        let mut bytes = encode(&frame);
        let bit = bit_sel % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);

        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        if let Some(Ok(got)) = dec.next_frame() {
            prop_assert_eq!(got, frame.clone());
        }

        // The body parser (post-length layer) must always reject a
        // body-region flip outright.
        if bit / 8 >= 4 {
            let body = &bytes[4..];
            prop_assert!(parse_body(body, Vec::new()).is_err());
        }
    }

    /// Duplicated and reordered frames come out of the dedup window
    /// exactly once each, in seq order — for any arrival order.
    #[test]
    fn dedup_window_delivers_each_seq_once_in_order(
        n in 1usize..24,
        order_seed in prop::collection::vec((0usize..1 << 16, 0u8..4), 8..64),
    ) {
        // Arrival sequence: seqs 0..n each appearing 1 + dups times, in
        // a deterministic shuffle derived from order_seed.
        let mut arrivals: Vec<u64> = Vec::new();
        for seq in 0..n as u64 {
            arrivals.push(seq);
        }
        for (i, &(pos, dup)) in order_seed.iter().enumerate() {
            if dup > 0 {
                arrivals.push((i % n) as u64); // duplicate transmissions
            }
            let a = pos % arrivals.len();
            let b = (pos / 7) % arrivals.len();
            arrivals.swap(a, b); // reordering
        }

        let mut window = DedupWindow::new();
        let mut delivered: Vec<u64> = Vec::new();
        for seq in arrivals {
            let mut f = Frame::control(FrameKind::Data, 0, 0, 0);
            f.seq = seq;
            match window.offer(f) {
                Offer::Deliver(d) => {
                    delivered.push(d.seq);
                    while let Some(next) = window.pop_ready() {
                        delivered.push(next.seq);
                    }
                }
                Offer::Duplicate | Offer::Stashed => {}
            }
        }
        let want: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(delivered, want);
    }

    /// `parse_body` handles arbitrary bodies (including undersized and
    /// oversized ones) without panicking, and only ever accepts bodies
    /// whose CRC tail verifies.
    #[test]
    fn parse_body_total_on_arbitrary_input(
        body in prop::collection::vec(0u8..=255, 0..(HEADER_LEN + 4) * 3),
    ) {
        if let Ok(f) = parse_body(&body, Vec::new()) {
            // Re-encoding what we parsed must reproduce the body.
            let re = encode(&f);
            prop_assert_eq!(&re[4..], &body[..]);
        }
    }
}
