//! The socket [`Wire`] backend: a full mesh of [`PeerConn`]s over
//! Unix-domain sockets, one per peer pair, addressed by original rank
//! id. Built by the rendezvous protocol ([`crate::rendezvous`]); the
//! buffer pool is shared across connections so released payloads serve
//! whichever peer reads next.

use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

use faults::RetryPolicy;

use crate::conn::{BufPool, PeerConn};
use crate::frame::Frame;
use crate::{Wire, WireError};

/// See the module docs.
#[derive(Debug)]
pub struct SocketMesh {
    rank: usize,
    world_ids: Vec<usize>,
    /// Indexed by original id; `None` for self and never-connected ids.
    conns: Vec<Option<PeerConn>>,
    pool: Arc<BufPool>,
}

impl SocketMesh {
    /// Assemble a mesh for original rank `rank` over `world_ids` from
    /// established per-peer streams. Each stream gets a reader thread
    /// and (per `policy`) a heartbeat beacon.
    pub fn new(
        rank: usize,
        world_ids: Vec<usize>,
        streams: Vec<(usize, UnixStream)>,
        policy: RetryPolicy,
    ) -> std::io::Result<Self> {
        let max_id = world_ids.iter().copied().max().unwrap_or(0);
        let pool = BufPool::new();
        let mut conns: Vec<Option<PeerConn>> = (0..=max_id).map(|_| None).collect();
        for (peer, stream) in streams {
            let conn = PeerConn::spawn(peer, rank, stream, Arc::clone(&pool), Some(policy), None)?;
            conns[peer] = Some(conn);
        }
        Ok(SocketMesh { rank, world_ids, conns, pool })
    }

    fn conn(&self, peer: usize) -> Result<&PeerConn, WireError> {
        self.conns.get(peer).and_then(|c| c.as_ref()).ok_or(WireError::NoSuchPeer(peer))
    }
}

impl Wire for SocketMesh {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_ids(&self) -> &[usize] {
        &self.world_ids
    }

    fn send(&self, peer: usize, frame: &Frame) -> Result<(), WireError> {
        self.conn(peer)?.send(frame)
    }

    fn recv_timeout(&self, peer: usize, timeout: Duration) -> Result<Frame, WireError> {
        self.conn(peer)?.recv_timeout(timeout)
    }

    fn silence(&self, peer: usize) -> Duration {
        match self.conn(peer) {
            Ok(c) => c.silence(),
            Err(_) => Duration::MAX,
        }
    }

    fn release(&self, payload: Vec<u8>) {
        self.pool.release(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameKind;

    fn fast() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(10),
            factor: 2,
            max_attempts: 4,
            tick: Duration::from_millis(1),
        }
    }

    /// An in-process two-rank mesh over a real socketpair: the smallest
    /// configuration that exercises framed byte streams end to end.
    #[test]
    fn two_rank_mesh_over_socketpair() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let m0 = SocketMesh::new(0, vec![0, 1], vec![(1, a)], fast()).unwrap();
        let m1 = SocketMesh::new(1, vec![0, 1], vec![(0, b)], fast()).unwrap();
        let mut f = Frame::control(FrameKind::Data, 0, 0, 2);
        f.seq = 9;
        f.payload = vec![1, 2, 3, 4];
        m0.send(1, &f).unwrap();
        let got = m1.recv_timeout(0, Duration::from_secs(2)).unwrap();
        assert_eq!(got, f);
        m1.release(got.payload);
        assert_eq!(m1.recv_timeout(9, Duration::from_millis(5)), Err(WireError::NoSuchPeer(9)));
    }
}
