//! Byte-stream transport for the collective schedules.
//!
//! The threaded executor ([`collectives::exec_thread`]) moves payloads
//! between rank *threads* over channels; this crate is the same idea
//! over real byte streams between rank *processes*. One abstraction —
//! [`Wire`] — with two backends:
//!
//! * [`channel::ChannelWire`] — in-process, frames pass by value over
//!   crossbeam channels. Zero serialization; used by protocol unit
//!   tests and as the degenerate single-process backend.
//! * [`mesh::SocketMesh`] — Unix-domain sockets, one full-duplex stream
//!   per peer pair, every message a length-prefixed CRC32-tailed
//!   [`frame::Frame`]. A reader thread per connection decodes frames
//!   into a pre-allocated ring; a heartbeat thread beacons liveness so
//!   silence is distinguishable from death; payload buffers are pooled
//!   so steady-state exchange allocates nothing.
//!
//! Death detection is two-signal: a SIGKILLed peer's socket returns EOF
//! (fast path), and a wedged-but-open peer trips the
//! [`faults::RetryPolicy::death_threshold`] silence bound (slow path).
//! Every timeout in the crate derives from [`faults::RetryPolicy`] and
//! sleeps route through [`faults::FaultClock`] — `xtask lint` bans bare
//! `thread::sleep` and hard-coded `Duration` literals here (rule 8).
//!
//! The crate knows nothing about schedules or reduction: it moves
//! frames. The §5d reliability protocol (seq/ack/nack/resend/dedup)
//! executes above it, in `collectives::exec_peer`, identically over
//! both backends.

pub mod channel;
pub mod conn;
pub mod frame;
pub mod mesh;
pub mod rendezvous;

use std::time::Duration;

pub use channel::ChannelWire;
pub use conn::{connect_with_backoff, read_frame_blocking, write_frame_blocking, PeerConn};
pub use frame::{
    encode, encode_into, parse_body, reference_decode, DedupWindow, Frame, FrameDecoder,
    FrameError, FrameKind, Offer, HEADER_LEN, MAX_FRAME_LEN,
};
pub use mesh::SocketMesh;
pub use rendezvous::{join, Joined, Rendezvous, Welcome, WorkerHello, COORD_SOCK};

/// Why a wire operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// No frame arrived within the timeout (the peer may be slow, dead,
    /// or the frame lost — the caller's retry policy decides).
    Timeout,
    /// The peer's stream is gone: every queued frame has been drained
    /// and the connection reported EOF or a write error.
    PeerGone,
    /// The target is not a peer of this wire (unknown original id, or
    /// a send to self).
    NoSuchPeer(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Timeout => write!(f, "receive timed out"),
            WireError::PeerGone => write!(f, "peer connection closed"),
            WireError::NoSuchPeer(id) => write!(f, "no connection to rank {id}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A producer of telemetry payloads that piggyback the heartbeat
/// cadence (see [`PeerConn::solo_with_telemetry`]). Every heartbeat
/// interval the beacon thread calls `fill`; when it returns `true` the
/// bytes left in `out` ship as one [`FrameKind::Telemetry`] frame in
/// place of the plain beacon (a telemetry frame refreshes the peer's
/// last-heard-from clock just like a heartbeat would, so liveness is
/// preserved).
///
/// `fill` runs on the beacon thread at heartbeat cadence with a
/// *reused* buffer — implementations that only write into `out` keep
/// the steady state allocation-free (the counting-allocator proof in
/// `collectives/tests/socket_zero_alloc.rs` covers the trainer's
/// implementation). The transport does not interpret the payload; the
/// format contract lives with the producer/consumer pair (the
/// trainer's is `trace::telemetry`).
pub trait TelemetrySource: Send + Sync {
    /// Overwrite `out` with the next snapshot payload. Return `false`
    /// to skip this interval (a plain heartbeat is sent instead).
    fn fill(&self, out: &mut Vec<u8>) -> bool;
}

/// A full mesh of reliable, ordered frame links between this rank and
/// its peers. Peers are addressed by **original (world) rank id** —
/// the addressing survives elastic renumbering after deaths, exactly
/// like the trainer's data sharding does.
pub trait Wire: Send + Sync {
    /// This rank's original id.
    fn rank(&self) -> usize;

    /// Original ids of every rank in the initial world (including self
    /// and any peers that have since died), ascending.
    fn world_ids(&self) -> &[usize];

    /// Queue `frame` to `peer`. Ordered and reliable while the peer
    /// lives; [`WireError::PeerGone`] once its stream is closed.
    fn send(&self, peer: usize, frame: &Frame) -> Result<(), WireError>;

    /// Next frame from `peer`, waiting up to `timeout`. Queued frames
    /// are always drained before [`WireError::PeerGone`] is reported,
    /// so a peer's parting sends are never lost to its death.
    fn recv_timeout(&self, peer: usize, timeout: Duration) -> Result<Frame, WireError>;

    /// How long since *any* frame (heartbeats included) arrived from
    /// `peer`. The heartbeat death bound compares this against
    /// [`faults::RetryPolicy::death_threshold`].
    fn silence(&self, peer: usize) -> Duration;

    /// Return a frame payload buffer to the backend's pool. Callers
    /// that recycle every received payload keep the steady state
    /// allocation-free on the socket backend.
    fn release(&self, payload: Vec<u8>);
}
