//! The in-process [`Wire`] backend: frames pass by value over
//! crossbeam channels between rank threads — no serialization, no
//! sockets, no heartbeats (a thread cannot be SIGKILLed out from under
//! the mesh; explicit disconnection is the only death signal).
//!
//! This is the backend the protocol unit tests drive, including the
//! fault-injecting wrappers that drop, duplicate, and reorder frames
//! to exercise the §5d reliability layer in `collectives::exec_peer`.

use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::frame::Frame;
use crate::{Wire, WireError};

/// One rank's endpoint of an in-process full mesh.
pub struct ChannelWire {
    rank: usize,
    world_ids: Vec<usize>,
    /// Indexed by original id: sender toward that peer.
    tx: Vec<Option<Sender<Frame>>>,
    /// Indexed by original id: receiver from that peer.
    rx: Vec<Option<Mutex<Receiver<Frame>>>>,
}

impl ChannelWire {
    /// Build a full mesh over original ids `0..world`, one wire per
    /// rank. Channels are bounded generously — a schedule's in-flight
    /// frame count is bounded by its round structure.
    pub fn mesh(world: usize) -> Vec<ChannelWire> {
        let ids: Vec<usize> = (0..world).collect();
        // links[a][b] = channel a -> b
        let mut senders: Vec<Vec<Option<Sender<Frame>>>> =
            (0..world).map(|_| (0..world).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<Mutex<Receiver<Frame>>>>> =
            (0..world).map(|_| (0..world).map(|_| None).collect()).collect();
        for a in 0..world {
            for b in 0..world {
                if a == b {
                    continue;
                }
                let (s, r) = bounded(4096);
                senders[a][b] = Some(s);
                receivers[b][a] = Some(Mutex::new(r));
            }
        }
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (tx, rx))| ChannelWire { rank, world_ids: ids.clone(), tx, rx })
            .collect()
    }

    /// Drop this wire's sender toward `peer` — the in-process analogue
    /// of a process death, used by tests to simulate a crashed rank.
    pub fn hang_up(&mut self, peer: usize) {
        if let Some(slot) = self.tx.get_mut(peer) {
            *slot = None;
        }
    }
}

impl Wire for ChannelWire {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_ids(&self) -> &[usize] {
        &self.world_ids
    }

    fn send(&self, peer: usize, frame: &Frame) -> Result<(), WireError> {
        if peer == self.rank {
            return Err(WireError::NoSuchPeer(peer));
        }
        let tx = self
            .tx
            .get(peer)
            .ok_or(WireError::NoSuchPeer(peer))?
            .as_ref()
            .ok_or(WireError::PeerGone)?;
        tx.send(frame.clone()).map_err(|_| WireError::PeerGone)
    }

    fn recv_timeout(&self, peer: usize, timeout: Duration) -> Result<Frame, WireError> {
        let rx = self
            .rx
            .get(peer)
            .ok_or(WireError::NoSuchPeer(peer))?
            .as_ref()
            .ok_or(WireError::NoSuchPeer(peer))?
            .lock();
        // Drain-before-gone: a disconnected channel still yields its
        // queued frames through try_recv.
        match rx.try_recv() {
            Ok(f) => return Ok(f),
            Err(TryRecvError::Disconnected) => return Err(WireError::PeerGone),
            Err(TryRecvError::Empty) => {}
        }
        match rx.recv_timeout(timeout) {
            Ok(f) => Ok(f),
            Err(RecvTimeoutError::Timeout) => Err(WireError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(WireError::PeerGone),
        }
    }

    fn silence(&self, _peer: usize) -> Duration {
        // Channels do not go silent: disconnection is explicit, so the
        // heartbeat death bound never trips on this backend.
        Duration::ZERO
    }

    fn release(&self, _payload: Vec<u8>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameKind;

    #[test]
    fn mesh_routes_by_original_id() {
        let wires = ChannelWire::mesh(3);
        let mut f = Frame::control(FrameKind::Data, 0, 0, 1);
        f.payload = vec![7];
        wires[0].send(2, &f).unwrap();
        let got = wires[2].recv_timeout(0, Duration::from_millis(100)).unwrap();
        assert_eq!(got, f);
        assert_eq!(wires[1].recv_timeout(0, Duration::from_millis(10)), Err(WireError::Timeout));
    }

    #[test]
    fn hang_up_reports_peer_gone() {
        let mut wires = ChannelWire::mesh(2);
        let f = Frame::control(FrameKind::Data, 1, 0, 0);
        wires[1].send(0, &f).unwrap();
        wires[1].hang_up(0);
        // Queued frame drains first, then the hangup surfaces.
        assert!(wires[0].recv_timeout(1, Duration::from_millis(100)).is_ok());
        assert_eq!(wires[0].recv_timeout(1, Duration::from_millis(100)), Err(WireError::PeerGone));
    }

    #[test]
    fn send_to_self_or_unknown_is_rejected() {
        let wires = ChannelWire::mesh(2);
        let f = Frame::control(FrameKind::Data, 0, 0, 0);
        assert_eq!(wires[0].send(0, &f), Err(WireError::NoSuchPeer(0)));
        assert_eq!(wires[0].send(9, &f), Err(WireError::NoSuchPeer(9)));
    }
}
