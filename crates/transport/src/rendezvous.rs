//! Rendezvous: how N freshly-spawned worker processes find each other
//! and become a [`SocketMesh`].
//!
//! The launcher binds `<dir>/coord.sock` and waits. Each worker binds
//! its own listener socket *first*, then dials the coordinator (with
//! [`connect_with_backoff`] — everything starts concurrently) and sends
//! a [`WorkerHello`] naming its pid and listener path. The coordinator
//! assigns ranks in arrival order and answers each worker with a
//! [`Welcome`] carrying its rank and every peer's listener path. The
//! Hello stream stays open as the worker's *control* connection: the
//! commit/degrade protocol and the Ready→Start barrier run over it, and
//! its EOF is the coordinator's fast-path death signal for that worker.
//!
//! Mesh wiring is deadlock-free by construction: rank `r` dials every
//! rank below it (prefixing the stream with a bare `Hello` frame whose
//! `from` field names the dialer) and accepts from every rank above it.
//! Listener backlogs absorb the races — a dial succeeds as soon as the
//! peer's listener is bound, which happens before its Hello.

use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

use faults::{FaultClock, RetryPolicy};

use crate::conn::{connect_with_backoff, read_frame_blocking, write_frame_blocking};
use crate::frame::{Frame, FrameKind};
use crate::mesh::SocketMesh;

/// Name of the coordinator's listening socket inside the rendezvous dir.
pub const COORD_SOCK: &str = "coord.sock";

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A worker's introduction to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerHello {
    /// OS pid of the worker process — the coordinator's kill handle.
    pub pid: u32,
    /// Filesystem path of the worker's own listener socket.
    pub listen_path: String,
}

impl WorkerHello {
    pub fn to_frame(&self) -> Frame {
        let mut f = Frame::control(FrameKind::Hello, 0, 0, 0);
        f.payload = format!("{}\n{}", self.pid, self.listen_path).into_bytes();
        f
    }

    pub fn from_frame(f: &Frame) -> io::Result<Self> {
        if f.kind != FrameKind::Hello {
            return Err(bad_data(format!("expected Hello, got {:?}", f.kind)));
        }
        let text = std::str::from_utf8(&f.payload).map_err(|_| bad_data("hello not utf-8"))?;
        let mut lines = text.lines();
        let pid = lines
            .next()
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| bad_data("hello missing pid"))?;
        let listen_path = lines.next().ok_or_else(|| bad_data("hello missing path"))?.to_string();
        Ok(WorkerHello { pid, listen_path })
    }
}

/// The coordinator's answer: your rank, and where everyone listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Welcome {
    pub rank: usize,
    /// Listener paths indexed by rank.
    pub world_paths: Vec<String>,
}

impl Welcome {
    pub fn to_frame(&self) -> Frame {
        let mut f = Frame::control(FrameKind::Welcome, 0, 0, 0);
        let mut text = self.rank.to_string();
        for p in &self.world_paths {
            text.push('\n');
            text.push_str(p);
        }
        f.payload = text.into_bytes();
        f
    }

    pub fn from_frame(f: &Frame) -> io::Result<Self> {
        if f.kind != FrameKind::Welcome {
            return Err(bad_data(format!("expected Welcome, got {:?}", f.kind)));
        }
        let text = std::str::from_utf8(&f.payload).map_err(|_| bad_data("welcome not utf-8"))?;
        let mut lines = text.lines();
        let rank = lines
            .next()
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| bad_data("welcome missing rank"))?;
        let world_paths: Vec<String> = lines.map(str::to_string).collect();
        if rank >= world_paths.len() {
            return Err(bad_data("welcome rank outside world"));
        }
        Ok(Welcome { rank, world_paths })
    }
}

/// Coordinator side of the rendezvous: a bound listener on
/// `<dir>/coord.sock`.
#[derive(Debug)]
pub struct Rendezvous {
    listener: UnixListener,
    path: PathBuf,
}

impl Rendezvous {
    pub fn coord_path(dir: &Path) -> PathBuf {
        dir.join(COORD_SOCK)
    }

    pub fn bind(dir: &Path) -> io::Result<Self> {
        let path = Self::coord_path(dir);
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Ok(Rendezvous { listener, path })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Accept `n` workers, assign ranks in arrival order, and answer
    /// each with its [`Welcome`]. Returns, indexed by rank, each
    /// worker's hello and its still-open control stream.
    pub fn assemble(&self, n: usize) -> io::Result<Vec<(WorkerHello, UnixStream)>> {
        let mut joined: Vec<(WorkerHello, UnixStream)> = Vec::with_capacity(n);
        for _ in 0..n {
            let (mut stream, _) = self.listener.accept()?;
            let hello = WorkerHello::from_frame(&read_frame_blocking(&mut stream)?)?;
            joined.push((hello, stream));
        }
        let world_paths: Vec<String> = joined.iter().map(|(h, _)| h.listen_path.clone()).collect();
        for (rank, (_, stream)) in joined.iter_mut().enumerate() {
            let welcome = Welcome { rank, world_paths: world_paths.clone() };
            write_frame_blocking(stream, &welcome.to_frame())?;
        }
        Ok(joined)
    }
}

/// Worker side mid-rendezvous: welcomed, not yet meshed.
#[derive(Debug)]
pub struct Joined {
    pub rank: usize,
    pub world_paths: Vec<String>,
    /// The control stream to the coordinator (the Hello connection).
    pub ctl: UnixStream,
    listener: UnixListener,
}

/// Join the rendezvous at `dir`. `tag` must be unique per worker within
/// the dir (the launcher uses the worker index) — it names this
/// worker's listener socket, which is bound *before* the Hello so peers
/// can dial it the moment they learn the path.
pub fn join(dir: &Path, tag: &str, policy: &RetryPolicy, clock: &FaultClock) -> io::Result<Joined> {
    let listen_path = dir.join(format!("w-{tag}.sock"));
    let _ = std::fs::remove_file(&listen_path);
    let listener = UnixListener::bind(&listen_path)?;
    let mut ctl = connect_with_backoff(&Rendezvous::coord_path(dir), policy, clock)?;
    let hello = WorkerHello {
        pid: std::process::id(),
        listen_path: listen_path.to_string_lossy().into_owned(),
    };
    write_frame_blocking(&mut ctl, &hello.to_frame())?;
    let welcome = Welcome::from_frame(&read_frame_blocking(&mut ctl)?)?;
    Ok(Joined { rank: welcome.rank, world_paths: welcome.world_paths, ctl, listener })
}

impl Joined {
    /// Wire the full mesh (dial lower ranks, accept higher ranks) and
    /// hand back the [`SocketMesh`] plus the control stream.
    pub fn build_mesh(
        self,
        policy: RetryPolicy,
        clock: &FaultClock,
    ) -> io::Result<(SocketMesh, UnixStream)> {
        let rank = self.rank;
        let world: Vec<usize> = (0..self.world_paths.len()).collect();
        let mut streams: Vec<(usize, UnixStream)> = Vec::with_capacity(world.len() - 1);
        for peer in 0..rank {
            let mut s = connect_with_backoff(Path::new(&self.world_paths[peer]), &policy, clock)?;
            write_frame_blocking(&mut s, &Frame::control(FrameKind::Hello, rank as u16, 0, 0))?;
            streams.push((peer, s));
        }
        for _ in rank + 1..world.len() {
            let (mut s, _) = self.listener.accept()?;
            let f = read_frame_blocking(&mut s)?;
            if f.kind != FrameKind::Hello {
                return Err(bad_data(format!("mesh dial sent {:?}, not Hello", f.kind)));
            }
            let peer = f.from as usize;
            if peer >= world.len() || peer <= rank {
                return Err(bad_data(format!("mesh Hello from impossible rank {peer}")));
            }
            streams.push((peer, s));
        }
        let mesh = SocketMesh::new(rank, world, streams, policy)?;
        Ok((mesh, self.ctl))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn fast() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(10),
            factor: 2,
            max_attempts: 6,
            tick: Duration::from_millis(1),
        }
    }

    fn scratch_dir() -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rdzv-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn hello_and_welcome_roundtrip_through_frames() {
        let h = WorkerHello { pid: 4242, listen_path: "/tmp/w-0.sock".into() };
        assert_eq!(WorkerHello::from_frame(&h.to_frame()).unwrap(), h);
        let w = Welcome { rank: 2, world_paths: vec!["a".into(), "b".into(), "c".into()] };
        assert_eq!(Welcome::from_frame(&w.to_frame()).unwrap(), w);
        // Kind confusion is rejected, not misparsed.
        assert!(WorkerHello::from_frame(&w.to_frame()).is_err());
        assert!(Welcome::from_frame(&h.to_frame()).is_err());
    }

    /// Full in-process rendezvous: a coordinator thread and three worker
    /// threads assemble, barrier on Start, then pass a token around the
    /// ring to prove every mesh link is live and correctly addressed.
    #[test]
    fn three_workers_rendezvous_and_ring_a_token() {
        let dir = scratch_dir();
        let n = 3;

        let coord_dir = dir.clone();
        let coord = std::thread::spawn(move || {
            let rdzv = Rendezvous::bind(&coord_dir).unwrap();
            let mut joined = rdzv.assemble(n).unwrap();
            // Ready → Start barrier over the control streams.
            for (_, stream) in joined.iter_mut() {
                let f = read_frame_blocking(stream).unwrap();
                assert_eq!(f.kind, FrameKind::Ready);
            }
            for (_, stream) in joined.iter_mut() {
                write_frame_blocking(stream, &Frame::control(FrameKind::Start, 0, 0, 0)).unwrap();
            }
            joined.iter().map(|(h, _)| h.pid).collect::<Vec<_>>()
        });

        let workers: Vec<_> = (0..n)
            .map(|i| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let clock = FaultClock::real();
                    let joined = join(&dir, &format!("t{i}"), &fast(), &clock).unwrap();
                    let rank = joined.rank;
                    let (mesh, mut ctl) = joined.build_mesh(fast(), &clock).unwrap();
                    write_frame_blocking(
                        &mut ctl,
                        &Frame::control(FrameKind::Ready, rank as u16, 0, 0),
                    )
                    .unwrap();
                    assert_eq!(read_frame_blocking(&mut ctl).unwrap().kind, FrameKind::Start);

                    use crate::Wire;
                    let next = (rank + 1) % n;
                    let prev = (rank + n - 1) % n;
                    let mut f = Frame::control(FrameKind::Data, rank as u16, 0, 0);
                    f.payload = vec![rank as u8; 8];
                    mesh.send(next, &f).unwrap();
                    let got = mesh.recv_timeout(prev, Duration::from_secs(5)).unwrap();
                    assert_eq!(got.from as usize, prev);
                    assert_eq!(got.payload, vec![prev as u8; 8]);
                    mesh.release(got.payload);
                    rank
                })
            })
            .collect();

        let pids = coord.join().unwrap();
        assert_eq!(pids, vec![std::process::id(); n]);
        let mut ranks: Vec<usize> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
