//! One peer connection: a Unix-domain stream wrapped with a decoding
//! reader thread, a liveness heartbeat, and pooled frame buffers.
//!
//! The reader thread owns the receive half: it blocks on `read_exact`,
//! decodes frames ([`crate::frame`]), stamps a last-heard-from clock,
//! consumes heartbeats, and pushes everything else into a pre-allocated
//! ring the consumer drains with a timeout. EOF (the peer died — a
//! SIGKILLed process's kernel closes its sockets) closes the ring:
//! queued frames drain first, then receives report
//! [`WireError::PeerGone`]. A frame that fails its CRC is *dropped*
//! here — to the reliability layer above it looks like loss, and the
//! §5d deadline/nack machinery recovers it.
//!
//! All pacing derives from [`RetryPolicy`]; connect retries sleep
//! through [`FaultClock`].

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faults::{FaultClock, RetryPolicy};
use parking_lot::Mutex;

use crate::frame::{parse_body, Frame, FrameKind, HEADER_LEN, MAX_FRAME_LEN};
use crate::{TelemetrySource, WireError};

/// Frames queued per connection before the ring grows (it still grows
/// under pathological backlog rather than dropping — growth is rare
/// enough that the steady-state zero-allocation proof tolerates it by
/// never reaching it).
const RING_CAPACITY: usize = 256;

/// A shared pool of payload byte buffers: the reader thread acquires,
/// the consumer releases. Keeps the per-frame buffer churn off the
/// allocator once warm.
#[derive(Debug, Default)]
pub(crate) struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
}

impl BufPool {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(BufPool { free: Mutex::new(Vec::with_capacity(RING_CAPACITY)) })
    }

    pub(crate) fn acquire(&self) -> Vec<u8> {
        self.free.lock().pop().unwrap_or_default()
    }

    pub(crate) fn release(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < RING_CAPACITY {
            free.push(buf);
        }
    }
}

/// A blocking MPSC ring of decoded frames with explicit close. Built
/// on std's paired `Mutex`/`Condvar` (the vendored `parking_lot` shim
/// carries no condvar).
#[derive(Debug)]
struct FrameRing {
    inner: std::sync::Mutex<RingInner>,
    ready: std::sync::Condvar,
}

#[derive(Debug)]
struct RingInner {
    queue: std::collections::VecDeque<Frame>,
    closed: bool,
}

impl FrameRing {
    fn new() -> Self {
        FrameRing {
            inner: std::sync::Mutex::new(RingInner {
                queue: std::collections::VecDeque::with_capacity(RING_CAPACITY),
                closed: false,
            }),
            ready: std::sync::Condvar::new(),
        }
    }

    fn push(&self, frame: Frame) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.queue.push_back(frame);
        drop(inner);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }

    /// Pop the next frame, waiting up to `timeout`. Queued frames drain
    /// before the closed state is reported.
    fn pop_timeout(&self, timeout: Duration) -> Result<Frame, WireError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(f) = inner.queue.pop_front() {
                return Ok(f);
            }
            if inner.closed {
                return Err(WireError::PeerGone);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(WireError::Timeout);
            }
            let (guard, wait) =
                self.ready.wait_timeout(inner, deadline - now).unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if wait.timed_out() {
                return match inner.queue.pop_front() {
                    Some(f) => Ok(f),
                    None if inner.closed => Err(WireError::PeerGone),
                    None => Err(WireError::Timeout),
                };
            }
        }
    }
}

/// Write half: the stream plus a reusable encode scratch, serialized
/// under one lock so concurrent senders cannot interleave frame bytes.
/// *Every* frame write — consumer sends and the heartbeat/telemetry
/// pump alike — goes through this lock; a partially completed
/// `write_all` under send-buffer backpressure would otherwise splice
/// two frames together and the peer's reader would see framing loss.
#[derive(Debug)]
struct WriteHalf {
    stream: UnixStream,
    scratch: Vec<u8>,
    broken: bool,
}

impl WriteHalf {
    /// Write pre-encoded frame bytes; a failure marks the half broken
    /// and the connection dead.
    fn write_encoded(&mut self, bytes: &[u8], alive: &AtomicBool) -> bool {
        if self.broken {
            return false;
        }
        if self.stream.write_all(bytes).is_err() {
            self.broken = true;
            alive.store(false, Ordering::Release);
            return false;
        }
        true
    }
}

/// See the module docs.
#[derive(Debug)]
pub struct PeerConn {
    peer: usize,
    writer: Arc<Mutex<WriteHalf>>,
    ring: Arc<FrameRing>,
    pool: Arc<BufPool>,
    /// Milliseconds since `epoch` when the last frame arrived.
    last_rx_ms: Arc<AtomicU64>,
    epoch: Instant,
    alive: Arc<AtomicBool>,
    /// Clone of the stream used only by `Drop`: shutdown must not wait
    /// on the writer lock, which a heartbeat blocked mid-write under
    /// backpressure could hold indefinitely.
    shutdown_handle: UnixStream,
}

impl PeerConn {
    /// Wrap an established stream to original rank `peer`. Spawns the
    /// reader thread, and — when `heartbeat` is set — a beacon thread
    /// pacing [`RetryPolicy::heartbeat_interval`].
    pub(crate) fn spawn(
        peer: usize,
        self_rank: usize,
        stream: UnixStream,
        pool: Arc<BufPool>,
        heartbeat: Option<RetryPolicy>,
        telemetry: Option<Arc<dyn TelemetrySource>>,
    ) -> std::io::Result<Self> {
        let ring = Arc::new(FrameRing::new());
        let epoch = Instant::now();
        let last_rx_ms = Arc::new(AtomicU64::new(0));
        let alive = Arc::new(AtomicBool::new(true));

        let read_stream = stream.try_clone()?;
        let shutdown_handle = stream.try_clone()?;
        let writer =
            Arc::new(Mutex::new(WriteHalf { stream, scratch: Vec::new(), broken: false }));
        {
            let ring = Arc::clone(&ring);
            let pool = Arc::clone(&pool);
            let last = Arc::clone(&last_rx_ms);
            let alive = Arc::clone(&alive);
            std::thread::Builder::new()
                .name(format!("rx-{self_rank}-{peer}"))
                .spawn(move || reader_main(read_stream, ring, pool, last, alive, epoch))?;
        }
        if let Some(policy) = heartbeat {
            let writer = Arc::clone(&writer);
            let alive = Arc::clone(&alive);
            std::thread::Builder::new()
                .name(format!("hb-{self_rank}-{peer}"))
                .spawn(move || heartbeat_main(writer, self_rank, policy, alive, telemetry))?;
        }
        Ok(PeerConn { peer, writer, ring, pool, last_rx_ms, epoch, alive, shutdown_handle })
    }

    /// A standalone connection with its own private buffer pool —
    /// for control streams that are not part of a [`SocketMesh`]
    /// (whose connections share one pool).
    ///
    /// [`SocketMesh`]: crate::mesh::SocketMesh
    pub fn solo(
        peer: usize,
        self_rank: usize,
        stream: UnixStream,
        heartbeat: Option<RetryPolicy>,
    ) -> std::io::Result<Self> {
        PeerConn::spawn(peer, self_rank, stream, BufPool::new(), heartbeat, None)
    }

    /// [`PeerConn::solo`] with a [`TelemetrySource`] piggybacking the
    /// heartbeat cadence: each beacon interval the source fills a
    /// reused payload buffer and a `Telemetry` frame ships in place of
    /// the plain beacon. Requires `heartbeat` (the beacon thread is the
    /// telemetry pump).
    pub fn solo_with_telemetry(
        peer: usize,
        self_rank: usize,
        stream: UnixStream,
        heartbeat: RetryPolicy,
        telemetry: Arc<dyn TelemetrySource>,
    ) -> std::io::Result<Self> {
        PeerConn::spawn(peer, self_rank, stream, BufPool::new(), Some(heartbeat), Some(telemetry))
    }

    pub fn peer(&self) -> usize {
        self.peer
    }

    /// Encode and write one frame. A write error marks the connection
    /// broken (the peer is gone; Rust ignores SIGPIPE, so a dead reader
    /// surfaces as `BrokenPipe` here).
    pub fn send(&self, frame: &Frame) -> Result<(), WireError> {
        let mut w = self.writer.lock();
        if w.broken {
            return Err(WireError::PeerGone);
        }
        let mut scratch = std::mem::take(&mut w.scratch);
        crate::frame::encode_into(frame, &mut scratch);
        let ok = w.write_encoded(&scratch, &self.alive);
        w.scratch = scratch;
        if ok {
            Ok(())
        } else {
            Err(WireError::PeerGone)
        }
    }

    /// Next decoded frame, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Frame, WireError> {
        self.ring.pop_timeout(timeout)
    }

    /// How long since the peer was last heard from (any frame kind).
    pub fn silence(&self) -> Duration {
        let now = self.epoch.elapsed().as_millis() as u64;
        let last = self.last_rx_ms.load(Ordering::Acquire);
        Duration::from_millis(now.saturating_sub(last)) // lint: allow(duration): unit conversion of the rx timestamp delta, not a timeout constant
    }

    /// Return a payload buffer to this connection's pool.
    pub fn release(&self, payload: Vec<u8>) {
        self.pool.release(payload);
    }

    /// False once either direction of the stream has failed.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }
}

impl Drop for PeerConn {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Release);
        // Shut the socket down so the reader/heartbeat threads unblock
        // and exit instead of leaking. Deliberately does NOT take the
        // writer lock: a heartbeat wedged in `write_all` holds it, and
        // this shutdown is exactly what unwedges that write.
        let _ = self.shutdown_handle.shutdown(std::net::Shutdown::Both);
    }
}

fn reader_main(
    mut stream: UnixStream,
    ring: Arc<FrameRing>,
    pool: Arc<BufPool>,
    last_rx_ms: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
    epoch: Instant,
) {
    let mut body: Vec<u8> = Vec::new();
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).is_err() {
            break; // EOF or error: the peer is gone.
        }
        let body_len = u32::from_le_bytes(len_buf) as usize;
        if !(HEADER_LEN + 4..=MAX_FRAME_LEN).contains(&body_len) {
            break; // Framing lost for good; treat as a dead stream.
        }
        body.clear();
        body.resize(body_len, 0);
        if stream.read_exact(&mut body).is_err() {
            break;
        }
        last_rx_ms.store(epoch.elapsed().as_millis() as u64, Ordering::Release);
        match parse_body(&body, pool.acquire()) {
            Ok(frame) if frame.kind == FrameKind::Heartbeat => pool.release(frame.payload),
            Ok(frame) => ring.push(frame),
            // CRC/version rejects look like loss to the layer above;
            // its deadline/nack machinery requests a resend.
            Err(_) => {}
        }
    }
    alive.store(false, Ordering::Release);
    ring.close();
}

fn heartbeat_main(
    writer: Arc<Mutex<WriteHalf>>,
    self_rank: usize,
    policy: RetryPolicy,
    alive: Arc<AtomicBool>,
    telemetry: Option<Arc<dyn TelemetrySource>>,
) {
    let beacon =
        crate::frame::encode(&Frame::control(FrameKind::Heartbeat, self_rank as u16, 0, 0));
    let interval = policy.heartbeat_interval();
    // Telemetry reuses one frame (its payload buffer included) and one
    // encode scratch across intervals, so the pump allocates nothing
    // once the buffers are warm. Encoding happens outside the writer
    // lock; only the actual write serializes with the consumer's sends
    // (interleaving frame bytes would be framing loss to the peer).
    let mut tel_frame = Frame::control(FrameKind::Telemetry, self_rank as u16, 0, 0);
    let mut wire_buf: Vec<u8> = Vec::new();
    while alive.load(Ordering::Acquire) {
        // The beacon must track wall time even under a virtual
        // FaultClock — a real socket peer really times out.
        std::thread::sleep(interval); // lint: allow(sleep): heartbeat pacing, interval from RetryPolicy::heartbeat_interval
        let mut sent_telemetry = false;
        if let Some(src) = &telemetry {
            if src.fill(&mut tel_frame.payload) {
                crate::frame::encode_into(&tel_frame, &mut wire_buf);
                if !writer.lock().write_encoded(&wire_buf, &alive) {
                    break;
                }
                tel_frame.seq += 1;
                sent_telemetry = true;
            }
        }
        if !sent_telemetry && !writer.lock().write_encoded(&beacon, &alive) {
            break;
        }
    }
}

/// Dial `path`, retrying with the policy's exponential backoff (capped
/// per attempt) while the listener comes up. Rendezvous races —
/// workers and the coordinator all start concurrently — resolve here.
pub fn connect_with_backoff(
    path: &Path,
    policy: &RetryPolicy,
    clock: &FaultClock,
) -> std::io::Result<UnixStream> {
    let mut attempt = 0u32;
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if attempt >= policy.max_attempts.saturating_mul(4) {
                    return Err(e);
                }
                clock.inject(policy.deadline(attempt.min(4)));
                attempt += 1;
            }
        }
    }
}

/// Read exactly one frame off a raw stream (rendezvous handshakes,
/// before the reader thread exists). Not for the hot path.
pub fn read_frame_blocking(stream: &mut UnixStream) -> std::io::Result<Frame> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let body_len = u32::from_le_bytes(len_buf) as usize;
    if !(HEADER_LEN + 4..=MAX_FRAME_LEN).contains(&body_len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame body length {body_len} out of bounds"),
        ));
    }
    let mut body = vec![0u8; body_len];
    stream.read_exact(&mut body)?;
    parse_body(&body, Vec::new())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Write one frame to a raw stream (rendezvous handshakes).
pub fn write_frame_blocking(stream: &mut UnixStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&crate::frame::encode(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UnixStream, UnixStream) {
        UnixStream::pair().expect("socketpair")
    }

    fn policy_fast() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(10),
            factor: 2,
            max_attempts: 4,
            tick: Duration::from_millis(1),
        }
    }

    #[test]
    fn frames_cross_a_socketpair() {
        let (a, b) = pair();
        let pool = BufPool::new();
        let left = PeerConn::spawn(1, 0, a, Arc::clone(&pool), None, None).unwrap();
        let right = PeerConn::spawn(0, 1, b, pool, None, None).unwrap();
        let mut f = Frame::control(FrameKind::Data, 0, 0, 3);
        f.seq = 5;
        f.payload = vec![1, 2, 3];
        left.send(&f).unwrap();
        let got = right.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, f);
        right.release(got.payload);
    }

    #[test]
    fn eof_drains_queued_frames_then_reports_gone() {
        let (a, b) = pair();
        let pool = BufPool::new();
        let left = PeerConn::spawn(1, 0, a, Arc::clone(&pool), None, None).unwrap();
        let right = PeerConn::spawn(0, 1, b, pool, None, None).unwrap();
        let mut f = Frame::control(FrameKind::Data, 0, 0, 0);
        f.payload = vec![9; 4];
        left.send(&f).unwrap();
        // Give the bytes time to land in right's ring before the writer
        // side disappears.
        let got = right.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.payload, vec![9; 4]);
        drop(left);
        assert_eq!(right.recv_timeout(Duration::from_millis(200)), Err(WireError::PeerGone));
        assert!(!right.is_alive());
    }

    #[test]
    fn heartbeats_keep_silence_low_and_never_surface() {
        let (a, b) = pair();
        let pool = BufPool::new();
        let _left = PeerConn::spawn(1, 0, a, Arc::clone(&pool), Some(policy_fast()), None).unwrap();
        let right = PeerConn::spawn(0, 1, b, pool, None, None).unwrap();
        // No data frames at all: receives time out...
        assert_eq!(right.recv_timeout(Duration::from_millis(60)), Err(WireError::Timeout));
        // ...but the beacon keeps the peer visibly alive.
        assert!(right.silence() < policy_fast().death_threshold());
    }

    #[test]
    fn connect_backoff_gives_up_on_a_missing_listener() {
        let clock = FaultClock::virtual_clock();
        let err = connect_with_backoff(
            Path::new("/tmp/definitely-not-bound-by-anyone.sock"),
            &policy_fast(),
            &clock,
        );
        assert!(err.is_err());
        assert!(clock.injected() > Duration::ZERO, "retries waited through the clock");
    }

    #[test]
    fn blocking_helpers_roundtrip() {
        let (mut a, mut b) = pair();
        let mut f = Frame::control(FrameKind::Hello, 2, 0, 0);
        f.payload = b"path".to_vec();
        write_frame_blocking(&mut a, &f).unwrap();
        assert_eq!(read_frame_blocking(&mut b).unwrap(), f);
    }
}
