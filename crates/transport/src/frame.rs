//! The wire frame format: length-prefixed, sequence-numbered,
//! CRC32-tailed.
//!
//! Every byte that crosses a socket in the multi-process runtime is one
//! frame:
//!
//! ```text
//! u32  len      body length in bytes (header + payload + crc tail)
//! u8   kind     FrameKind discriminant
//! u8   version  wire-format version (currently 1)
//! u16  from     sender's original (world) rank id
//! u32  era      topology epoch; bumped on every degradation
//! u64  seq      per-(sender, receiver, era) sequence number
//! u32  step     training step the frame belongs to
//! u32  round    schedule round (data frames; 0 otherwise)
//! u32  offset   segment offset into the reduce buffer (data frames)
//! ...  payload  payload_len = len - HEADER_LEN - 4 bytes
//! u32  crc      CRC32 (IEEE) over header-after-len + payload
//! ```
//!
//! The CRC tail covers everything after the length prefix, so a
//! bit-flip anywhere in the header or payload is detected; the length
//! prefix itself is sanity-bounded ([`MAX_FRAME_LEN`]) so a corrupted
//! length cannot make the decoder allocate unboundedly or stall forever
//! mid-frame. Decoding never panics on adversarial bytes — every
//! malformed input is a typed [`FrameError`] (proven by the adversarial
//! proptests in `tests/frame_proptests.rs`, differentially against
//! [`reference_decode`]).

use faults::crc32_bytes;

/// Header bytes after the u32 length prefix.
pub const HEADER_LEN: usize = 1 + 1 + 2 + 4 + 8 + 4 + 4 + 4;

/// Hard upper bound on the body length a decoder will accept. Large
/// enough for any gradient segment this repo ships (64 MiB), small
/// enough that a corrupted length prefix cannot drive allocation wild.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Wire-format version stamped into every frame.
pub const WIRE_VERSION: u8 = 1;

/// What a frame is. Discriminants are the on-wire byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// A schedule payload segment (f32 little-endian bytes).
    Data = 1,
    /// Receiver acknowledges every data seq up to and including `seq`.
    Ack = 2,
    /// Receiver rejected `seq` (CRC mismatch) and requests a resend.
    Nack = 3,
    /// Liveness beacon; carries no payload.
    Heartbeat = 4,
    /// Rendezvous: worker -> coordinator registration (payload: listener
    /// path), and peer -> peer identification (no payload).
    Hello = 5,
    /// Rendezvous: coordinator -> worker rank assignment (payload: rank,
    /// world, peer listener paths).
    Welcome = 6,
    /// Worker -> coordinator: mesh fully connected, ready to train.
    Ready = 7,
    /// Coordinator -> workers: all ranks ready, start the run.
    Start = 8,
    /// Worker -> coordinator: exchange for `step` completed under `era`.
    StepDone = 9,
    /// Coordinator -> workers: every live rank finished `step`; apply it.
    Commit = 10,
    /// Coordinator -> workers: ranks died; payload lists the dead
    /// original ids (u16 each). Rebuild over the survivors under `era`.
    Degrade = 11,
    /// Worker -> coordinator: run complete, results written.
    Finished = 12,
    /// Worker -> coordinator: a versioned telemetry snapshot (metric
    /// cells, current step, flight-recorder tail). Rides the heartbeat
    /// cadence on control streams; never crosses a data wire. Payload
    /// format: `trace::telemetry`.
    Telemetry = 13,
}

impl FrameKind {
    fn from_byte(b: u8) -> Result<Self, FrameError> {
        Ok(match b {
            1 => FrameKind::Data,
            2 => FrameKind::Ack,
            3 => FrameKind::Nack,
            4 => FrameKind::Heartbeat,
            5 => FrameKind::Hello,
            6 => FrameKind::Welcome,
            7 => FrameKind::Ready,
            8 => FrameKind::Start,
            9 => FrameKind::StepDone,
            10 => FrameKind::Commit,
            11 => FrameKind::Degrade,
            12 => FrameKind::Finished,
            13 => FrameKind::Telemetry,
            other => return Err(FrameError::BadKind(other)),
        })
    }
}

/// One decoded frame. `payload` buffers are plain `Vec<u8>` so callers
/// can pool and recycle them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub from: u16,
    pub era: u32,
    pub seq: u64,
    pub step: u32,
    pub round: u32,
    pub offset: u32,
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-less control frame.
    pub fn control(kind: FrameKind, from: u16, era: u32, step: u32) -> Self {
        Frame { kind, from, era, seq: 0, step, round: 0, offset: 0, payload: Vec::new() }
    }
}

/// Why a byte sequence failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Body length exceeds [`MAX_FRAME_LEN`] or is shorter than the
    /// fixed header + crc tail.
    BadLength(usize),
    /// Unknown [`FrameKind`] discriminant.
    BadKind(u8),
    /// Unsupported wire-format version.
    BadVersion(u8),
    /// CRC tail does not match the received bytes.
    BadCrc { want: u32, got: u32 },
    /// The input ended mid-frame (stream truncation).
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(n) => write!(f, "frame body length {n} out of bounds"),
            FrameError::BadKind(b) => write!(f, "unknown frame kind {b}"),
            FrameError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::BadCrc { want, got } => {
                write!(f, "crc mismatch: frame says {want:#010x}, bytes hash to {got:#010x}")
            }
            FrameError::Truncated => write!(f, "input ended mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode `frame` into `out` (cleared first). The buffer can be pooled
/// and reused; steady-state encoding allocates nothing once `out` has
/// grown to the largest frame size.
pub fn encode_into(frame: &Frame, out: &mut Vec<u8>) {
    out.clear();
    let body_len = HEADER_LEN + frame.payload.len() + 4;
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(frame.kind as u8);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&frame.from.to_le_bytes());
    out.extend_from_slice(&frame.era.to_le_bytes());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&frame.step.to_le_bytes());
    out.extend_from_slice(&frame.round.to_le_bytes());
    out.extend_from_slice(&frame.offset.to_le_bytes());
    out.extend_from_slice(&frame.payload);
    let crc = crc32_bytes(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Encode `frame` into a fresh buffer (test/rendezvous convenience; the
/// hot path uses [`encode_into`] with a pooled buffer).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + HEADER_LEN + frame.payload.len() + 4);
    encode_into(frame, &mut out);
    out
}

fn read_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    let mut x = [0u8; 8];
    x.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(x)
}

/// Parse one frame *body* (the bytes after the u32 length prefix; the
/// caller has already read exactly `body.len()` bytes off the stream).
/// The payload is copied into `payload_buf` (cleared first) so callers
/// can recycle pooled buffers; the returned frame takes ownership of it.
pub fn parse_body(body: &[u8], mut payload_buf: Vec<u8>) -> Result<Frame, FrameError> {
    if body.len() < HEADER_LEN + 4 || body.len() > MAX_FRAME_LEN {
        return Err(FrameError::BadLength(body.len()));
    }
    let crc_at = body.len() - 4;
    let want = read_u32(body, crc_at);
    let got = crc32_bytes(&body[..crc_at]);
    if want != got {
        return Err(FrameError::BadCrc { want, got });
    }
    let kind = FrameKind::from_byte(body[0])?;
    if body[1] != WIRE_VERSION {
        return Err(FrameError::BadVersion(body[1]));
    }
    payload_buf.clear();
    payload_buf.extend_from_slice(&body[HEADER_LEN..crc_at]);
    Ok(Frame {
        kind,
        from: read_u16(body, 2),
        era: read_u32(body, 4),
        seq: read_u64(body, 8),
        step: read_u32(body, 16),
        round: read_u32(body, 20),
        offset: read_u32(body, 24),
        payload: payload_buf,
    })
}

/// Incremental decoder: feed arbitrary byte chunks, pop complete
/// frames. Framing errors are sticky per frame but not per stream — a
/// frame that fails its CRC is reported once and skipped (the caller's
/// reliability layer NACKs it), and decoding continues at the next
/// length boundary. A length prefix outside bounds poisons the stream
/// (byte alignment is lost for good).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    at: usize,
    poisoned: bool,
}

impl FrameDecoder {
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily so the buffer does not grow without bound.
        if self.at > 0 && self.at == self.buf.len() {
            self.buf.clear();
            self.at = 0;
        } else if self.at > (1 << 16) {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// True once a malformed length prefix destroyed stream alignment.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Bytes fed but not yet consumed by [`FrameDecoder::next_frame`].
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Pop the next complete frame, a per-frame error, or `None` when
    /// more bytes are needed.
    pub fn next_frame(&mut self) -> Option<Result<Frame, FrameError>> {
        if self.poisoned {
            return Some(Err(FrameError::Truncated));
        }
        let avail = self.buf.len() - self.at;
        if avail < 4 {
            return None;
        }
        let body_len = read_u32(&self.buf, self.at) as usize;
        if !(HEADER_LEN + 4..=MAX_FRAME_LEN).contains(&body_len) {
            self.poisoned = true;
            return Some(Err(FrameError::BadLength(body_len)));
        }
        if avail < 4 + body_len {
            return None;
        }
        let body = &self.buf[self.at + 4..self.at + 4 + body_len];
        let result = parse_body(body, Vec::new());
        self.at += 4 + body_len;
        Some(result)
    }
}

/// Reference decoder: the naive, obviously-correct full-buffer decode
/// the incremental [`FrameDecoder`] is differentially tested against.
/// Returns the frames (or per-frame errors) up to the first point where
/// the input is truncated or unframeable.
pub fn reference_decode(mut bytes: &[u8]) -> Vec<Result<Frame, FrameError>> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        if bytes.len() < 4 {
            out.push(Err(FrameError::Truncated));
            return out;
        }
        let body_len = read_u32(bytes, 0) as usize;
        if !(HEADER_LEN + 4..=MAX_FRAME_LEN).contains(&body_len) {
            out.push(Err(FrameError::BadLength(body_len)));
            return out;
        }
        if bytes.len() < 4 + body_len {
            out.push(Err(FrameError::Truncated));
            return out;
        }
        out.push(parse_body(&bytes[4..4 + body_len], Vec::new()));
        bytes = &bytes[4 + body_len..];
    }
    out
}

/// Receive-side sequence tracking: in-order delivery with idempotent
/// duplicate drop and a bounded stash for early arrivals — the §5d
/// dedup discipline lifted onto frames. One window per (peer, era);
/// counters reset on every era bump.
#[derive(Debug, Default)]
pub struct DedupWindow {
    /// Next sequence number to deliver.
    expected: u64,
    /// Early frames keyed by seq (BTreeMap: drained in seq order).
    stash: std::collections::BTreeMap<u64, Frame>,
}

/// What [`DedupWindow::offer`] decided about a frame.
#[derive(Debug, PartialEq, Eq)]
pub enum Offer {
    /// The frame is the next in sequence: deliver it now.
    Deliver(Frame),
    /// Already delivered (duplicate) — dropped idempotently.
    Duplicate,
    /// Ahead of sequence — stashed until the gap fills.
    Stashed,
}

impl DedupWindow {
    pub fn new() -> Self {
        DedupWindow::default()
    }

    /// Reset for a new era: sequence numbers restart at zero and any
    /// stashed frames from the old era are discarded.
    pub fn reset(&mut self) {
        self.expected = 0;
        self.stash.clear();
    }

    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Classify `frame` against the window (see [`Offer`]).
    pub fn offer(&mut self, frame: Frame) -> Offer {
        if frame.seq < self.expected {
            return Offer::Duplicate;
        }
        if frame.seq > self.expected {
            // Re-stashing an already-stashed seq is also a duplicate.
            if self.stash.contains_key(&frame.seq) {
                return Offer::Duplicate;
            }
            self.stash.insert(frame.seq, frame);
            return Offer::Stashed;
        }
        self.expected += 1;
        Offer::Deliver(frame)
    }

    /// Pop the next in-sequence stashed frame, if the gap has filled.
    pub fn pop_ready(&mut self) -> Option<Frame> {
        if let Some(f) = self.stash.remove(&self.expected) {
            self.expected += 1;
            return Some(f);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_frame(seq: u64, payload: &[u8]) -> Frame {
        Frame {
            kind: FrameKind::Data,
            from: 3,
            era: 2,
            seq,
            step: 7,
            round: 1,
            offset: 128,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let f = data_frame(42, &[1, 2, 3, 4, 5]);
        let bytes = encode(&f);
        let got = parse_body(&bytes[4..], Vec::new()).unwrap();
        assert_eq!(got, f);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = Frame::control(FrameKind::Heartbeat, 1, 0, 9);
        let bytes = encode(&f);
        assert_eq!(bytes.len(), 4 + HEADER_LEN + 4);
        assert_eq!(parse_body(&bytes[4..], Vec::new()).unwrap(), f);
    }

    #[test]
    fn bit_flip_is_rejected_by_crc() {
        let bytes = encode(&data_frame(0, &[9; 32]));
        for at in 4..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            match parse_body(&bad[4..], Vec::new()) {
                Err(FrameError::BadCrc { .. }) => {}
                other => panic!("flip at {at} not caught by crc: {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_decoder_handles_byte_at_a_time() {
        let frames = [data_frame(0, &[1; 10]), data_frame(1, &[2; 3]), data_frame(2, &[])];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.feed(std::slice::from_ref(b));
            while let Some(r) = dec.next_frame() {
                got.push(r.unwrap());
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn oversized_length_poisons_the_stream() {
        let mut dec = FrameDecoder::new();
        dec.feed(&u32::MAX.to_le_bytes());
        assert!(matches!(dec.next_frame(), Some(Err(FrameError::BadLength(_)))));
        assert!(dec.is_poisoned());
    }

    #[test]
    fn corrupt_frame_skipped_stream_continues() {
        let a = encode(&data_frame(0, &[7; 8]));
        let b = encode(&data_frame(1, &[8; 8]));
        let mut stream = a.clone();
        let flip_at = stream.len() - 6; // inside a's payload
        stream[flip_at] ^= 0xff;
        stream.extend_from_slice(&b);
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        assert!(matches!(dec.next_frame(), Some(Err(FrameError::BadCrc { .. }))));
        assert_eq!(dec.next_frame().unwrap().unwrap().seq, 1);
    }

    #[test]
    fn dedup_window_orders_dedups_and_resets() {
        let mut w = DedupWindow::new();
        assert!(matches!(w.offer(data_frame(1, &[])), Offer::Stashed));
        assert!(matches!(w.offer(data_frame(1, &[])), Offer::Duplicate));
        match w.offer(data_frame(0, &[])) {
            Offer::Deliver(f) => assert_eq!(f.seq, 0),
            other => panic!("{other:?}"),
        }
        assert_eq!(w.pop_ready().map(|f| f.seq), Some(1));
        assert_eq!(w.pop_ready(), None);
        assert!(matches!(w.offer(data_frame(0, &[])), Offer::Duplicate));
        w.reset();
        assert!(matches!(w.offer(data_frame(0, &[])), Offer::Deliver(_)));
    }
}
