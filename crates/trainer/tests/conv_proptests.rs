//! Property-tested equivalence of the optimized cache-blocked conv
//! kernels (im2col + tiled matmul) against the retained naive
//! `reference_*` implementations, across random shapes including
//! k = 1 and non-square h×w, within 1e-4.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trainer::real::net::{
    col2im_acc, conv_backward, conv_forward, im2col, im2col_len, reference_conv_backward,
    reference_conv_forward, BatchWorkspace, NetConfig, SegNet,
};
use trainer::real::segdata::Sample;

/// Mixed absolute/relative tolerance: the optimized kernels reassociate
/// float sums (8-lane dots, tiled accumulation), so results differ from
/// the naive sequential order in the last bits only.
fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + b.abs().max(a.abs()))
}

fn assert_all_close(got: &[f32], want: &[f32], tol: f32, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: length mismatch", what);
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        prop_assert!(close(g, w, tol), "{}[{}]: optimized {} vs reference {}", what, i, g, w);
    }
    Ok(())
}

fn fill(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect()
}

/// Random conv shape: kernel in {1, 3, 5}, deliberately non-square h×w
/// most of the time, channel counts small enough to keep cases fast.
fn shape_strategy() -> impl Strategy<Value = (usize, usize, usize, usize, usize, u64)> {
    (3usize..=9, 3usize..=9, 1usize..=4, 1usize..=5, 0usize..3, 0u64..1 << 48)
        .prop_map(|(h, w, cin, cout, ki, seed)| (h, w, cin, cout, [1, 3, 5][ki], seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn forward_matches_reference((h, w, cin, cout, k, seed) in shape_strategy()) {
        prop_assume!(k <= h && k <= w);
        let mut rng = StdRng::seed_from_u64(seed);
        let npix = h * w;
        let input = fill(&mut rng, cin * npix);
        let weights = fill(&mut rng, cout * cin * k * k);
        let bias = fill(&mut rng, cout);

        let mut want = vec![0.0f32; cout * npix];
        reference_conv_forward(&input, cin, h, w, &weights, &bias, k, cout, &mut want);

        let mut cols = vec![0.0f32; im2col_len(cin, k, npix)];
        let mut got = vec![0.0f32; cout * npix];
        conv_forward(&input, cin, h, w, &weights, &bias, k, cout, false, &mut cols, &mut got);
        assert_all_close(&got, &want, 1e-4, "out")?;

        // Fused ReLU must equal a separate max(0, ·) pass.
        let mut relu_got = vec![0.0f32; cout * npix];
        conv_forward(&input, cin, h, w, &weights, &bias, k, cout, true, &mut cols, &mut relu_got);
        let relu_want: Vec<f32> = want.iter().map(|&x| x.max(0.0)).collect();
        assert_all_close(&relu_got, &relu_want, 1e-4, "relu out")?;
    }

    #[test]
    fn backward_matches_reference((h, w, cin, cout, k, seed) in shape_strategy()) {
        prop_assume!(k <= h && k <= w);
        let mut rng = StdRng::seed_from_u64(seed);
        let npix = h * w;
        let input = fill(&mut rng, cin * npix);
        let weights = fill(&mut rng, cout * cin * k * k);
        let bias = fill(&mut rng, cout);
        let dout = fill(&mut rng, cout * npix);
        // Start the accumulators non-zero: both kernels must *accumulate*.
        let dw0 = fill(&mut rng, weights.len());
        let db0 = fill(&mut rng, cout);
        let din0 = fill(&mut rng, input.len());

        let (mut dw_want, mut db_want, mut din_want) = (dw0.clone(), db0.clone(), din0.clone());
        reference_conv_backward(
            &input, cin, h, w, &weights, k, cout, &dout,
            &mut dw_want, &mut db_want, Some(&mut din_want),
        );

        let mut cols = vec![0.0f32; im2col_len(cin, k, npix)];
        let mut out = vec![0.0f32; cout * npix];
        conv_forward(&input, cin, h, w, &weights, &bias, k, cout, false, &mut cols, &mut out);
        let mut dcols = vec![0.0f32; cols.len()];
        let (mut dw, mut db, mut din) = (dw0, db0, din0);
        conv_backward(
            &input, cin, h, w, &weights, k, cout, &dout,
            &cols, &mut dcols, &mut dw, &mut db, Some(&mut din),
        );
        assert_all_close(&dw, &dw_want, 1e-4, "dw")?;
        assert_all_close(&db, &db_want, 1e-4, "db")?;
        assert_all_close(&din, &din_want, 1e-4, "dinput")?;
    }

    /// im2col followed by its adjoint scatter (col2im) is exactly the
    /// patch-multiplicity operator: each pixel's coefficient counts how
    /// many valid k×k windows cover it.
    #[test]
    fn im2col_col2im_adjoint_roundtrip((h, w, cin, _cout, k, seed) in shape_strategy()) {
        prop_assume!(k <= h && k <= w && k > 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let npix = h * w;
        let input = fill(&mut rng, cin * npix);
        let mut cols = vec![0.0f32; im2col_len(cin, k, npix)];
        im2col(&input, cin, h, w, k, &mut cols);
        let mut back = vec![0.0f32; input.len()];
        col2im_acc(&cols, cin, h, w, k, &mut back);
        let r = (k / 2) as isize;
        for c in 0..cin {
            for y in 0..h as isize {
                for x in 0..w as isize {
                    // Multiplicity along each axis: number of window centers
                    // within radius r that are in-bounds.
                    let my = ((y - r).max(0)..=(y + r).min(h as isize - 1)).count();
                    let mx = ((x - r).max(0)..=(x + r).min(w as isize - 1)).count();
                    let idx = c * npix + (y as usize) * w + x as usize;
                    let want = input[idx] * (my * mx) as f32;
                    prop_assert!(
                        close(back[idx], want, 1e-4),
                        "pixel ({}, {}, {}): col2im(im2col(x)) = {} vs multiplicity {} × {}",
                        c, y, x, back[idx], (my * mx), input[idx]
                    );
                }
            }
        }
    }
}

/// Build a random batch of samples for a config.
fn random_batch(cfg: &NetConfig, rng: &mut StdRng, n: usize) -> Vec<Sample> {
    (0..n)
        .map(|_| {
            let npix = cfg.height * cfg.width;
            Sample {
                pixels: fill(rng, cfg.cin * npix),
                labels: (0..npix).map(|_| rng.gen_range(0..cfg.n_classes) as u8).collect(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The workspace-reusing batch path equals the per-sample naive
    /// reference averaged by hand, across random (non-square) configs.
    #[test]
    fn batch_loss_grad_ws_matches_reference(
        (h, w, seed) in (4usize..=8, 4usize..=8, 0u64..1 << 48),
        batch_n in 1usize..=5,
        n_classes in 2usize..=4,
    ) {
        let cfg = NetConfig {
            height: h,
            width: w,
            cin: 2,
            hidden1: 3,
            hidden2: 4,
            n_classes,
            k: 3,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = SegNet::new(cfg, seed ^ 0x5eed);
        let batch = random_batch(&cfg, &mut rng, batch_n);

        let mut want_grad = vec![0.0f32; net.n_params()];
        let mut want_loss = 0.0f64;
        for s in &batch {
            let (l, g) = net.reference_loss_grad(s);
            want_loss += l;
            for (acc, gi) in want_grad.iter_mut().zip(&g) {
                *acc += gi;
            }
        }
        want_loss /= batch.len() as f64;
        for g in &mut want_grad {
            *g /= batch.len() as f32;
        }

        let mut bw = BatchWorkspace::new(&cfg);
        let loss = net.batch_loss_grad_ws(&batch, &mut bw);
        prop_assert!(
            (loss - want_loss).abs() <= 1e-4 * (1.0 + want_loss.abs()),
            "loss: workspace {} vs reference {}", loss, want_loss
        );
        assert_all_close(&bw.grad, &want_grad, 1e-4, "grad")?;
    }
}
