//! Counting-allocator proof that the hot gradient path performs zero
//! heap allocation once the workspaces exist.
//!
//! A `#[global_allocator]` wrapper counts every `alloc`/`realloc`; the
//! assertions run in one `#[test]` so no sibling test's allocations can
//! interleave with the counted regions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use collectives::CodecKind;
use trainer::real::net::{BatchWorkspace, NetConfig, SegNet, Workspace};
use trainer::real::pipeline::PipelineExecutor;
use trainer::real::segdata::{generate_batch, DataConfig};
use trainer::real::sgd::{LrSchedule, MomentumSgd};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` and return how many allocation events it triggered.
///
/// Minimum over three runs: the counting allocator is process-global,
/// and libtest's harness thread can lazily initialize its
/// channel-parking context (two Arc allocations inside
/// `Receiver::recv`) while a region is being counted — one-time
/// ambient noise, not hot-path allocation. Anything the region itself
/// allocates recurs every run and survives the min.
fn count_allocs(mut f: impl FnMut()) -> usize {
    (0..3)
        .map(|_| {
            let before = ALLOC_EVENTS.load(Ordering::Relaxed);
            f();
            ALLOC_EVENTS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap_or(0)
}

#[test]
fn hot_gradient_path_is_allocation_free() {
    let data = DataConfig::default();
    let cfg = NetConfig {
        height: data.height,
        width: data.width,
        cin: data.channels,
        n_classes: data.n_classes,
        ..NetConfig::default()
    };
    let net = SegNet::new(cfg, 42);
    let batch = generate_batch(&data, 42, 0, 16);

    // --- per-sample path: strictly zero allocations, always ---------
    let mut ws = Workspace::new(&cfg);
    let mut grad = vec![0.0f32; net.n_params()];
    // Warm-up (first touch of lazily-initialized TLS etc. must not count).
    let mut loss = net.loss_grad_acc(&batch[0], &mut ws, &mut grad);
    let n = count_allocs(|| {
        for s in &batch {
            grad.fill(0.0);
            loss += net.loss_grad_acc(s, &mut ws, &mut grad);
        }
    });
    assert!(loss.is_finite());
    assert_eq!(n, 0, "loss_grad_acc allocated {n} times over 16 samples");

    // --- enabled trace recorder + metrics on the hot path -----------
    // The observability layer must not reintroduce allocation: lanes
    // record into preallocated ring buffers, metric cells are resolved
    // up front and updated with atomics.
    let session = trace::TraceSession::new();
    let lane = session.recorder.lane(0, 0, "rank 0", "compute");
    let steps = session.registry.counter("train_steps_total");
    let hist = session.registry.histogram("train_step_seconds");
    // Warm-up creates nothing lazily, but keep symmetry with the rest.
    lane.record_args("BACKWARD", "forward+backward", lane.now_us(), 1.0, 0, 1);
    let n = count_allocs(|| {
        for s in &batch {
            let t0 = lane.now_us();
            grad.fill(0.0);
            loss += net.loss_grad_acc(s, &mut ws, &mut grad);
            lane.record_args("BACKWARD", "forward+backward", t0, lane.now_us() - t0, 0, 1);
            hist.observe(1e-3);
            steps.inc();
        }
    });
    assert_eq!(n, 0, "recording spans+metrics allocated {n} times over 16 samples");
    assert!(lane.recorded() >= batch.len(), "spans actually landed in the ring");
    // count_allocs runs the region three times; every pass must land.
    assert_eq!(steps.get(), 3 * batch.len() as u64);

    // --- pipelined executor, every gradient codec -------------------
    // The whole pipelined step — work-stealing dispatch, per-layer tile
    // reductions, the codec encode/decode (fused fp16 and the pooled
    // int8/int4/top-k paths, with and without error feedback), and the
    // optimizer updates — must stay allocation-free once the executor
    // exists. Helper threads share the global counting allocator, so an
    // allocation on *any* pool lane would fail the assertion.
    {
        let replicas = 2;
        let mut exec = PipelineExecutor::new(&cfg, replicas, 4, 1, 2);
        let lr = LrSchedule {
            base_lr: 0.1,
            scale: 1.0,
            warmup_steps: 2,
            total_steps: 8,
            poly_power: 0.9,
        };
        let mut nets: Vec<SegNet> = (0..replicas).map(|_| SegNet::new(cfg, 7)).collect();
        let mut opts: Vec<MomentumSgd> =
            (0..replicas).map(|_| MomentumSgd::new(lr, 0.9, net.n_params())).collect();
        let shards: Vec<Vec<_>> =
            (0..replicas).map(|r| generate_batch(&data, 42, (r * 4) as u64, 4)).collect();
        for (codec, ef) in [
            (CodecKind::None, false),
            (CodecKind::Fp16, false),
            (CodecKind::Fp16, true),
            (CodecKind::Int8, true),
            (CodecKind::Int4, true),
            (CodecKind::TopK, true),
        ] {
            // Warm-up: the first step with a codec may touch
            // lazily-created thread state and grows the per-tile
            // EncodeScratch to its steady-state capacity.
            let _ = exec.step(nets.iter_mut().zip(opts.iter_mut()), &shards, codec, ef);
            let mut sum = 0.0f64;
            let n = count_allocs(|| {
                for _ in 0..4 {
                    sum += exec.step(nets.iter_mut().zip(opts.iter_mut()), &shards, codec, ef);
                }
            });
            assert!(sum.is_finite());
            assert_eq!(n, 0, "pipelined {codec} (ef={ef}) step allocated {n} times over 4 steps");
        }
    }

    // --- batch path -------------------------------------------------
    let mut bw = BatchWorkspace::new(&cfg);
    let _ = net.batch_loss_grad_ws(&batch, &mut bw);
    if rayon::current_num_threads() == 1 {
        // Single-threaded the rayon shim runs inline: strictly zero.
        let n = count_allocs(|| {
            let _ = net.batch_loss_grad_ws(&batch, &mut bw);
        });
        assert_eq!(n, 0, "single-threaded batch_loss_grad_ws allocated {n} times");
    } else {
        // Multi-threaded, thread spawning itself allocates — but the
        // count must depend only on the worker count, not on how much
        // work flows through, i.e. no per-sample allocations.
        let small = count_allocs(|| {
            let _ = net.batch_loss_grad_ws(&batch[..4], &mut bw);
        });
        let large = count_allocs(|| {
            let _ = net.batch_loss_grad_ws(&batch, &mut bw);
        });
        assert!(
            large <= small.max(1) * 2,
            "batch_loss_grad_ws allocations scale with batch size: {small} at 4 samples, \
             {large} at 16"
        );
    }
}
