//! Checkpoint/restart integration: a run interrupted at a checkpoint
//! and resumed must be indistinguishable from one that never stopped.

use std::path::PathBuf;

use collectives::CodecKind;

use trainer::real::{train, Checkpoint, CheckpointConfig, DataConfig, NetConfig, TrainConfig};

fn tiny(workers: usize, steps: usize) -> TrainConfig {
    let data = DataConfig { height: 10, width: 10, ..DataConfig::default() };
    let net =
        NetConfig { height: 10, width: 10, cin: 3, hidden1: 4, hidden2: 6, n_classes: 4, k: 3 };
    TrainConfig {
        data,
        net,
        workers,
        batch_per_worker: 2,
        steps,
        base_lr: 0.4,
        lr_scale: 1.0,
        warmup_steps: 5,
        momentum: 0.9,
        weight_decay: 0.0,
        accumulation_steps: 1,
        algo: collectives::Algorithm::Ring,
        pipeline: false,
        fp16_gradients: false,
        codec: CodecKind::None,
        error_feedback: false,
        augment: false,
        eval_every: 0,
        eval_samples: 16,
        seed: 42,
        faults: None,
        checkpoint: None,
        trace: None,
    }
}

fn ck_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("summit-ckpt-restart");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn resumed_run_is_bit_identical_to_uninterrupted() {
    let path = ck_path("resume.bin");
    let _ = std::fs::remove_file(&path);

    // The uninterrupted reference: 10 steps straight through.
    let full = train(&tiny(2, 10));

    // Interrupted run: same 10-step config, but crash right after the
    // step-5 checkpoint. The LR schedule spans the full 10 steps, just
    // like a really-interrupted run.
    let mut first = tiny(2, 10);
    first.checkpoint =
        Some(CheckpointConfig { path: path.clone(), every: 5, resume: false, halt_after: Some(5) });
    let half = train(&first);
    assert!(path.exists(), "checkpoint written at step 5");
    assert_eq!(half.step_losses.len(), 5, "run halted after step 5");

    // The on-disk snapshot round-trips bit-exactly: params and
    // optimizer state are the interrupted run's final state.
    let ck = Checkpoint::load(&path).unwrap();
    assert_eq!(ck.step, 5);
    assert_eq!(ck.live, vec![0, 1]);
    assert_eq!(ck.opt_step, 5);
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&ck.params), bits(&half.final_params), "saved params are bit-exact");

    // Resume to step 10: every remaining step's loss and the final
    // parameters must match the uninterrupted run bit for bit.
    let mut second = tiny(2, 10);
    second.checkpoint =
        Some(CheckpointConfig { path: path.clone(), every: 0, resume: true, halt_after: None });
    let resumed = train(&second);
    assert_eq!(
        bits(&resumed.final_params),
        bits(&full.final_params),
        "resumed parameters diverged from the uninterrupted run"
    );
    assert_eq!(resumed.final_miou, full.final_miou);
    // The resumed run records losses for steps 5..10; the tail of the
    // full run's trajectory (≥ 5 steps) must be identical.
    assert_eq!(resumed.step_losses.len(), 5);
    assert_eq!(resumed.step_losses, full.step_losses[5..].to_vec(), "loss trajectory diverged");

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn periodic_saves_keep_only_the_latest() {
    let path = ck_path("periodic.bin");
    let _ = std::fs::remove_file(&path);
    let mut cfg = tiny(2, 9);
    cfg.checkpoint =
        Some(CheckpointConfig { path: path.clone(), every: 3, resume: false, halt_after: None });
    let r = train(&cfg);
    let ck = Checkpoint::load(&path).unwrap();
    assert_eq!(ck.step, 9, "latest periodic save wins");
    assert_eq!(ck.params, r.final_params);
    assert!(!path.with_extension("tmp").exists(), "atomic rename leaves no temp file");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mismatched_checkpoint_is_rejected_not_loaded() {
    let path = ck_path("mismatch.bin");
    let _ = std::fs::remove_file(&path);
    let mut small = tiny(2, 4);
    small.checkpoint =
        Some(CheckpointConfig { path: path.clone(), every: 4, resume: false, halt_after: None });
    train(&small);

    // A bigger net cannot resume from it.
    let mut big = tiny(2, 8);
    big.net.hidden1 = 6;
    big.checkpoint =
        Some(CheckpointConfig { path: path.clone(), every: 0, resume: true, halt_after: None });
    let err = trainer::real::try_train(&big).unwrap_err();
    assert!(
        matches!(err, trainer::real::TrainError::CheckpointMismatch(_)),
        "expected CheckpointMismatch, got {err}"
    );
    std::fs::remove_file(&path).unwrap();
}
