//! Kill-a-worker chaos: SIGKILL a real OS worker process mid-step and
//! prove the survivors converge to the *bit-exact* rescaled result the
//! threaded fault path produces for the same crash.
//!
//! The launcher's `--kill-rank R --kill-step S` hook pulls the trigger
//! when the first `StepDone` vote for step S arrives, so the victim
//! dies somewhere inside step S — computing, mid-exchange, or already
//! voted. Wherever the bullet lands, the commit protocol guarantees
//! step S was never applied, so the survivors' retry over the shrunken
//! world must equal the threaded replay of a crash at `(S, round 0)`.
//!
//! `DIST_CHAOS_SEEDS` (comma-separated) widens the sweep; CI runs four
//! seeds, the default local run one.

use std::path::{Path, PathBuf};
use std::process::Command;

use faults::{FaultKind, FaultPlan, Injection};
use trainer::real::worker::preset;
use trainer::real::{try_train, FaultToleranceConfig};

const WORKERS: usize = 4;
const STEPS: usize = 6;
const KILL_RANK: usize = 2;
const KILL_STEP: usize = 3;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seg_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read_params(dir: &Path, rank: usize) -> Vec<u32> {
    let bytes = std::fs::read(dir.join(format!("params_r{rank}.bin")))
        .unwrap_or_else(|e| panic!("params_r{rank}.bin: {e}"));
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

/// Pull the degrade step out of summary.json without a JSON parser:
/// the launcher writes `{"step": N, "dead": [R]}` entries.
fn degrade_step(summary: &str) -> usize {
    let at = summary.find("\"step\": ").expect("summary records a degrade");
    summary[at + 8..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("degrade step parses")
}

fn run_chaos(seed: u64) {
    let dir = scratch_dir(&format!("s{seed}"));
    let out = Command::new(env!("CARGO_BIN_EXE_dist_train"))
        .arg("launch")
        .args(["--dir", &dir.to_string_lossy()])
        .args(["--workers", &WORKERS.to_string()])
        .args(["--steps", &STEPS.to_string()])
        .args(["--seed", &seed.to_string()])
        .args(["--preset", "tiny"])
        .args(["--kill-rank", &KILL_RANK.to_string()])
        .args(["--kill-step", &KILL_STEP.to_string()])
        .output()
        .expect("launching dist_train");
    assert!(
        out.status.success(),
        "seed {seed}: launcher failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );

    let summary = std::fs::read_to_string(dir.join("summary.json")).expect("summary.json");
    assert!(
        summary.contains(&format!("\"dead\": [{KILL_RANK}]")),
        "seed {seed}: summary does not record the kill: {summary}"
    );
    let d = degrade_step(&summary);
    assert_eq!(d, KILL_STEP, "seed {seed}: kill landed on the wrong step");

    // The victim died before writing results.
    assert!(
        !dir.join(format!("params_r{KILL_RANK}.bin")).exists(),
        "seed {seed}: the killed rank wrote params"
    );

    // Survivors agree bit-for-bit among themselves...
    let survivors: Vec<usize> = (0..WORKERS).filter(|&r| r != KILL_RANK).collect();
    let first = read_params(&dir, survivors[0]);
    for &r in &survivors[1..] {
        assert_eq!(read_params(&dir, r), first, "seed {seed}: rank {r} diverges");
    }

    // ...and with the threaded fault path replaying the same crash.
    let mut cfg = preset("tiny", WORKERS, STEPS, seed);
    cfg.faults = Some(FaultToleranceConfig::with_plan(FaultPlan::explicit(
        seed,
        vec![Injection { step: d, rank: KILL_RANK, round: 0, kind: FaultKind::Crash }],
    )));
    let reference = try_train(&cfg).expect("threaded crash replay");
    assert_eq!(reference.survivors, survivors, "seed {seed}: survivor sets differ");
    assert_eq!(
        first,
        reference.final_params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        "seed {seed}: socket survivors diverge from the threaded crash replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_step_converges_to_threaded_crash_replay() {
    let seeds = std::env::var("DIST_CHAOS_SEEDS").unwrap_or_else(|_| "42".into());
    for seed in seeds.split(',') {
        run_chaos(seed.trim().parse().expect("DIST_CHAOS_SEEDS entries are u64"));
    }
}
