//! The tentpole parity claim: the same verified schedule executed over
//! real Unix-domain sockets between separate OS processes produces
//! bit-identical parameters to the in-process threaded trainer.

use std::path::{Path, PathBuf};
use std::process::Command;

use trainer::real::worker::preset;
use trainer::real::{try_train, TrainResult};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seg_dist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read_params(dir: &Path, rank: usize) -> Vec<f32> {
    let bytes = std::fs::read(dir.join(format!("params_r{rank}.bin")))
        .unwrap_or_else(|e| panic!("params_r{rank}.bin: {e}"));
    assert_eq!(bytes.len() % 4, 0, "params file is whole f32s");
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

fn launch(dir: &Path, workers: usize, steps: usize, seed: u64, extra: &[&str]) {
    let out = Command::new(env!("CARGO_BIN_EXE_dist_train"))
        .arg("launch")
        .args(["--dir", &dir.to_string_lossy()])
        .args(["--workers", &workers.to_string()])
        .args(["--steps", &steps.to_string()])
        .args(["--seed", &seed.to_string()])
        .args(["--preset", "tiny"])
        .args(extra)
        .output()
        .expect("launching dist_train");
    assert!(
        out.status.success(),
        "launcher failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}

fn threaded(workers: usize, steps: usize, seed: u64) -> TrainResult {
    try_train(&preset("tiny", workers, steps, seed)).expect("threaded reference run")
}

#[test]
fn four_process_socket_run_matches_threaded_bit_exactly() {
    let workers = 4;
    let steps = 6;
    let seed = 42;
    let dir = scratch_dir("parity");
    launch(&dir, workers, steps, seed, &[]);

    let reference = threaded(workers, steps, seed);
    let rank0 = read_params(&dir, 0);
    assert_eq!(rank0.len(), reference.final_params.len());
    for (i, (&sock, &thr)) in rank0.iter().zip(&reference.final_params).enumerate() {
        assert_eq!(
            sock.to_bits(),
            thr.to_bits(),
            "param {i} diverges: socket {sock} vs threaded {thr}"
        );
    }
    for rank in 1..workers {
        assert_eq!(read_params(&dir, rank), rank0, "rank {rank} diverges from rank 0");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_process_socket_run_matches_threaded_bit_exactly() {
    let workers = 2;
    let steps = 4;
    let seed = 7;
    let dir = scratch_dir("parity2");
    launch(&dir, workers, steps, seed, &[]);

    let reference = threaded(workers, steps, seed);
    let rank0 = read_params(&dir, 0);
    assert_eq!(
        rank0.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        reference.final_params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
    );
    assert_eq!(read_params(&dir, 1), rank0);
    let _ = std::fs::remove_dir_all(&dir);
}
