//! DPOR model checking of the pipelined executor's three lock-free
//! protocols (`trainer::real::{pool, pipeline}`), via the vendored
//! `interleave` checker's relaxed-memory machine.
//!
//! Each protocol is modeled over [`interleave::Mem`] with the *exact*
//! orderings the real code uses, so the unmutated checks certify those
//! orderings are sufficient, and seeded mutants (dropped fence,
//! Relaxed-ified CAS/RMW, off-by-one counter, torn CAS, lost unpark,
//! panic-mid-phase) must each be refuted with a replayable trace:
//!
//! 1. [`QueueModel`] — `RangeQueue` (`pool.rs`): owner `pop_front` vs
//!    two thieves `steal_back` racing CAS on the packed
//!    `head:32 | end:32` word, with independent per-chunk work after
//!    each claim. This is also the DPOR-vs-BFS benchmark model: the
//!    post-claim work is what plain BFS state-space multiplies over and
//!    DPOR collapses.
//! 2. [`PoolModel`] — the `CorePool` park/unpark generation handshake
//!    (`run` / `helper_loop`), including the submit-while-parking
//!    window (a worker observes a stale generation and heads to park
//!    while the submitter publishes) and the panic-mid-phase window (a
//!    worker panics after reading the job; the real code still
//!    decrements `remaining`).
//! 3. [`TileModel`] — the pipelined `reduce_tile` completion-counter
//!    drain (`pipeline.rs`): workers publish partials with plain writes
//!    ordered only by the counter's `fetch_sub(AcqRel)` chain; the
//!    final decrementer reduces and runs the PR 7 codec path
//!    (encode-to-scratch, publish reduced) — with a compression step
//!    active, a stale partial read corrupts the wire payload, which is
//!    why the drain's ordering is load-bearing.
//!
//! Modeling conventions: park/unpark happens-before uses
//! [`Mem::transfer`] at token-consume time (std guarantees
//! release/acquire for `unpark`→`park`); `compare_exchange_weak`
//! spurious failures are not modeled (a spurious failure only retries
//! with the freshly returned value, adding no new visible behavior).

use interleave::{
    check_dpor, check_nd, replay_nd, DporOptions, Loc, Mem, MemOrd, NdModel, NdVerdict, Op, Steps,
};

fn pack(head: u32, end: u32) -> u64 {
    (u64::from(head) << 32) | u64::from(end)
}

fn unpack(w: u64) -> (u32, u32) {
    ((w >> 32) as u32, w as u32)
}

// ---------------------------------------------------------------------
// 1. RangeQueue: pop_front vs steal_back
// ---------------------------------------------------------------------

const WORD: Loc = 0;

#[derive(Clone, Copy, PartialEq, Eq)]
enum QueueBug {
    None,
    /// CAS replaced by load-then-store: the claim is no longer atomic.
    TornCas,
    /// `steal_back` claims index `end` instead of `end - 1`.
    StealOffByOne,
}

/// Owner (thread 0) pops from the front, thieves steal from the back,
/// exactly as `RangeQueue::{pop_front, steal_back}`: Acquire load, then
/// a `compare_exchange(AcqRel, Acquire)` retry loop fed by the returned
/// current value. Each claimed chunk is followed by `work_steps` of
/// thread-local work plus one write to the chunk's own slot — the
/// independent part DPOR is expected to collapse.
struct QueueModel {
    threads: usize,
    chunks: u32,
    work_steps: u8,
    /// `Some(n)`: each thread retires after `n` successful claims —
    /// the steady-state configuration (every worker owns one chunk and
    /// crunches it) used by the DPOR-vs-BFS benchmark, where the work
    /// phases overlap maximally. `None`: threads loop until the queue
    /// drains (the exhaustive and mutant checks).
    claims_per_thread: Option<u8>,
    bug: QueueBug,
}

#[derive(Clone, Hash, PartialEq, Eq, Debug)]
enum QueuePc {
    Load,
    Cas { cur: u64 },
    Work { idx: u32, stage: u8 },
    Finished,
}

#[derive(Clone, Hash, PartialEq, Eq, Debug)]
struct QueueState {
    mem: Mem,
    pc: Vec<QueuePc>,
    /// Model-level truth: how many times each chunk was claimed.
    claims: Vec<u8>,
    /// Successful claims per thread (for `claims_per_thread`).
    mine: Vec<u8>,
    /// A claim landed outside `0..chunks`.
    out_of_range: bool,
}

impl QueueModel {
    fn slot(idx: u32) -> Loc {
        1 + idx as Loc
    }
}

impl NdModel for QueueModel {
    type State = QueueState;

    fn initial(&self) -> QueueState {
        // Slot locations exist for every index a buggy claim can touch.
        let mut init = vec![0u64; 2 + self.chunks as usize];
        init[WORD as usize] = pack(0, self.chunks);
        QueueState {
            mem: Mem::new(self.threads, &init),
            pc: vec![QueuePc::Load; self.threads],
            claims: vec![0; self.chunks as usize],
            mine: vec![0; self.threads],
            out_of_range: false,
        }
    }

    fn n_threads(&self) -> usize {
        self.threads
    }

    fn steps(&self, s: &QueueState, tid: usize) -> Steps<QueueState> {
        let owner = tid == 0;
        match s.pc[tid].clone() {
            // The initial load reads the newest word (SeqCst): a stale
            // Acquire read is observationally equivalent to a CasFail —
            // the retry loop re-reads — so modeling stale branches here
            // only multiplies trace classes without adding behavior.
            // The CAS itself keeps the real AcqRel/Acquire orderings,
            // which is where the claim-atomicity bugs live.
            QueuePc::Load => Steps::Ready(
                s.mem
                    .load(tid, WORD, MemOrd::SeqCst)
                    .into_iter()
                    .map(|(v, mem)| {
                        let mut st = s.clone();
                        st.mem = mem;
                        let (head, end) = unpack(v);
                        st.pc[tid] =
                            if head >= end { QueuePc::Finished } else { QueuePc::Cas { cur: v } };
                        (Op::Read(WORD), st)
                    })
                    .collect(),
            ),
            QueuePc::Cas { cur } => {
                let (head, end) = unpack(cur);
                if head >= end {
                    // The retry observed a drained queue.
                    let mut st = s.clone();
                    st.pc[tid] = QueuePc::Finished;
                    return Steps::Ready(vec![(Op::Local, st)]);
                }
                let (new, idx) = if owner {
                    (pack(head + 1, end), head)
                } else {
                    match self.bug {
                        QueueBug::StealOffByOne => (pack(head, end - 1), end),
                        _ => (pack(head, end - 1), end - 1),
                    }
                };
                if self.bug == QueueBug::TornCas {
                    // Mutant: plain store of the precomputed word — two
                    // stale readers both "claim" the same index.
                    let mut st = s.clone();
                    st.mem = s.mem.store(tid, WORD, new, MemOrd::Release);
                    claim(&mut st, tid, self.chunks, idx);
                    st.pc[tid] = QueuePc::Work { idx, stage: 0 };
                    return Steps::Ready(vec![(Op::Write(WORD), st)]);
                }
                let (r, mem) = s.mem.cas(tid, WORD, cur, new, MemOrd::AcqRel, MemOrd::Acquire);
                let mut st = s.clone();
                st.mem = mem;
                match r {
                    Ok(_) => {
                        claim(&mut st, tid, self.chunks, idx);
                        st.pc[tid] = QueuePc::Work { idx, stage: 0 };
                        Steps::Ready(vec![(Op::CasOk(WORD), st)])
                    }
                    Err(now) => {
                        st.pc[tid] = QueuePc::Cas { cur: now };
                        Steps::Ready(vec![(Op::CasFail(WORD), st)])
                    }
                }
            }
            QueuePc::Work { idx, stage } => {
                let mut st = s.clone();
                if stage < self.work_steps {
                    // Thread-local compute on the claimed chunk.
                    st.pc[tid] = QueuePc::Work { idx, stage: stage + 1 };
                    Steps::Ready(vec![(Op::Local, st)])
                } else {
                    // Publish into the chunk's own slot: independent of
                    // every other chunk's slot.
                    let loc = QueueModel::slot(idx.min(self.chunks));
                    st.mem = s.mem.store(tid, loc, tid as u64 + 1, MemOrd::Relaxed);
                    let retired = self.claims_per_thread.is_some_and(|n| s.mine[tid] >= n);
                    st.pc[tid] = if retired { QueuePc::Finished } else { QueuePc::Load };
                    Steps::Ready(vec![(Op::Write(loc), st)])
                }
            }
            QueuePc::Finished => Steps::Done,
        }
    }

    fn invariant(&self, s: &QueueState) -> Result<(), String> {
        if s.out_of_range {
            return Err("a chunk index outside the queue range was claimed".into());
        }
        if let Some((i, &n)) = s.claims.iter().enumerate().find(|&(_, &n)| n > 1) {
            return Err(format!("chunk {i} claimed {n} times"));
        }
        if s.pc.iter().all(|pc| *pc == QueuePc::Finished) {
            if let Some((i, _)) = s.claims.iter().enumerate().find(|&(_, &n)| n == 0) {
                return Err(format!("all workers finished but chunk {i} was never claimed"));
            }
        }
        Ok(())
    }
}

fn claim(st: &mut QueueState, tid: usize, chunks: u32, idx: u32) {
    st.mine[tid] += 1;
    if idx >= chunks {
        st.out_of_range = true;
    } else {
        st.claims[idx as usize] += 1;
    }
}

#[test]
fn range_queue_three_threads_exhaustive_under_dpor() {
    let m = QueueModel {
        threads: 3,
        chunks: 3,
        work_steps: 2,
        claims_per_thread: None,
        bug: QueueBug::None,
    };
    let r = check_dpor(&m, DporOptions::default())
        .unwrap_or_else(|v| panic!("RangeQueue protocol refuted: {v}"));
    assert!(r.complete, "no preemption bound: the pass is exhaustive ({r:?})");
    assert!(r.traces > 1, "contended CAS must fork the exploration ({r:?})");
}

#[test]
fn range_queue_dpor_needs_under_one_percent_of_bfs_states() {
    // The acceptance benchmark: same 3-thread model, both engines.
    let m = QueueModel {
        threads: 3,
        chunks: 3,
        work_steps: 48,
        claims_per_thread: Some(1),
        bug: QueueBug::None,
    };
    let bfs = check_nd(&m, 10_000_000).unwrap_or_else(|v| panic!("BFS refuted the queue: {v}"));
    let dpor = check_dpor(&m, DporOptions::default())
        .unwrap_or_else(|v| panic!("DPOR refuted the queue: {v}"));
    println!(
        "RangeQueue 3-thread model: BFS visited {} states ({} transitions); \
         DPOR explored {} nodes across {} traces",
        bfs.states, bfs.transitions, dpor.nodes, dpor.traces
    );
    assert!(
        dpor.nodes * 100 <= bfs.states,
        "DPOR must need <=1% of BFS states: {} vs {}",
        dpor.nodes,
        bfs.states
    );
}

#[test]
fn range_queue_torn_cas_mutant_refuted() {
    let m = QueueModel {
        threads: 3,
        chunks: 3,
        work_steps: 0,
        claims_per_thread: None,
        bug: QueueBug::TornCas,
    };
    let v = check_dpor(&m, DporOptions::default()).expect_err("torn CAS must double-claim");
    println!("torn-CAS counterexample: {v}");
    match &v {
        NdVerdict::InvariantViolated { trace, state, reason, .. } => {
            assert!(reason.contains("claimed"), "{reason}");
            let states = replay_nd(&m, trace);
            assert_eq!(states.last(), Some(state), "trace must replay to the violation");
        }
        other => panic!("expected an invariant violation, got {other}"),
    }
}

#[test]
fn range_queue_steal_off_by_one_mutant_refuted() {
    let m = QueueModel {
        threads: 3,
        chunks: 3,
        work_steps: 0,
        claims_per_thread: None,
        bug: QueueBug::StealOffByOne,
    };
    let v = check_dpor(&m, DporOptions::default()).expect_err("off-by-one steal must misclaim");
    println!("steal-off-by-one counterexample: {v}");
    match &v {
        NdVerdict::InvariantViolated { trace, state, reason, .. } => {
            assert!(
                reason.contains("outside the queue range") || reason.contains("claimed"),
                "{reason}"
            );
            let states = replay_nd(&m, trace);
            assert_eq!(states.last(), Some(state));
        }
        other => panic!("expected an invariant violation, got {other}"),
    }
}

// ---------------------------------------------------------------------
// 2. CorePool: park/unpark generation handshake
// ---------------------------------------------------------------------

const JOB: Loc = 0;
const REM: Loc = 1;
const GEN: Loc = 2;
/// Parking-lot ids (not memory locations).
const SUB_LOT: Loc = 100;
const JOB_VAL: u64 = 42;

#[derive(Clone, Copy, PartialEq, Eq)]
enum PoolBug {
    None,
    /// `generation.fetch_add(Release)` demoted to Relaxed — the dropped
    /// fence: a spinning helper can see the new generation but a stale
    /// job pointer.
    DroppedGenFence,
    /// The submitter only unparks helpers it observes as parked — the
    /// submit-while-parking window loses the wakeup.
    LostUnpark,
    /// A panicking worker skips the `remaining` decrement (the real
    /// code decrements after `catch_unwind`).
    PanicSkipsDecrement,
}

/// `CorePool::run` + `helper_loop` for one job: submitter (thread 0)
/// publishes job/remaining/generation with Release stores, unparks both
/// helpers, and waits for `remaining == 0` (Acquire) parking in
/// between; helpers (threads 1..=2) spin-or-park on the generation,
/// read the job, and decrement `remaining` with AcqRel, unparking the
/// submitter on the final decrement.
struct PoolModel {
    bug: PoolBug,
    /// Worker index (0-based) that panics mid-job, if any.
    panic_in: Option<usize>,
}

const N_WORKERS: usize = 2;

#[derive(Clone, Hash, PartialEq, Eq, Debug)]
struct PoolState {
    mem: Mem,
    /// 0 store job, 1 store rem, 2 bump gen, 3..4 unpark helpers,
    /// 5 load rem, 6 park, 7 done.
    sub_pc: u8,
    /// 0 load gen, 1 park, 2 load job, 3 run, 4 decrement, 5 unpark
    /// submitter, 6 done.
    w_pc: [u8; N_WORKERS],
    seen_job: [u64; N_WORKERS],
    /// Park tokens (std's `unpark` token semantics).
    token: [bool; N_WORKERS],
    sub_token: bool,
    /// Which worker issued the submitter's token (for the HB transfer).
    sub_token_from: usize,
    panicked: bool,
    underflow: bool,
}

impl PoolModel {
    fn wtid(w: usize) -> usize {
        w + 1
    }

    fn lot(w: usize) -> Loc {
        101 + w as Loc
    }
}

impl NdModel for PoolModel {
    type State = PoolState;

    fn initial(&self) -> PoolState {
        PoolState {
            mem: Mem::new(1 + N_WORKERS, &[0, 0, 0]),
            sub_pc: 0,
            w_pc: [0; N_WORKERS],
            seen_job: [0; N_WORKERS],
            token: [false; N_WORKERS],
            sub_token: false,
            sub_token_from: 0,
            panicked: false,
            underflow: false,
        }
    }

    fn n_threads(&self) -> usize {
        1 + N_WORKERS
    }

    fn steps(&self, s: &PoolState, tid: usize) -> Steps<PoolState> {
        if tid == 0 {
            return self.submitter_steps(s);
        }
        self.worker_steps(s, tid - 1)
    }

    fn invariant(&self, s: &PoolState) -> Result<(), String> {
        if s.underflow {
            return Err("remaining underflowed below zero".into());
        }
        for w in 0..N_WORKERS {
            if s.w_pc[w] >= 3 && s.seen_job[w] != JOB_VAL {
                return Err(format!(
                    "worker {w} ran with a stale job pointer ({} != {JOB_VAL})",
                    s.seen_job[w]
                ));
            }
        }
        if s.sub_pc == 7 && s.w_pc.iter().all(|&pc| pc == 6) && s.mem.peek(REM) != 0 {
            return Err(format!("handshake completed with remaining = {}", s.mem.peek(REM)));
        }
        Ok(())
    }
}

impl PoolModel {
    fn submitter_steps(&self, s: &PoolState) -> Steps<PoolState> {
        let tid = 0;
        match s.sub_pc {
            0 => {
                let mut st = s.clone();
                st.mem = s.mem.store(tid, JOB, JOB_VAL, MemOrd::Release);
                st.sub_pc = 1;
                Steps::Ready(vec![(Op::Write(JOB), st)])
            }
            1 => {
                let mut st = s.clone();
                st.mem = s.mem.store(tid, REM, N_WORKERS as u64, MemOrd::Release);
                st.sub_pc = 2;
                Steps::Ready(vec![(Op::Write(REM), st)])
            }
            2 => {
                let ord = if self.bug == PoolBug::DroppedGenFence {
                    MemOrd::Relaxed
                } else {
                    MemOrd::Release
                };
                let (_, mem) = s.mem.rmw(tid, GEN, ord, |v| v + 1);
                let mut st = s.clone();
                st.mem = mem;
                st.sub_pc = 3;
                Steps::Ready(vec![(Op::CasOk(GEN), st)])
            }
            pc @ (3 | 4) => {
                let w = pc as usize - 3;
                let mut st = s.clone();
                // The real code unparks every helper unconditionally;
                // the LostUnpark mutant "optimizes" by only unparking
                // helpers it observes as already parked.
                let skip = self.bug == PoolBug::LostUnpark && s.w_pc[w] != 1;
                if !skip {
                    st.token[w] = true;
                }
                st.sub_pc = pc + 1;
                Steps::Ready(vec![(Op::Unpark(PoolModel::lot(w)), st)])
            }
            5 => Steps::Ready(
                s.mem
                    .load(tid, REM, MemOrd::Acquire)
                    .into_iter()
                    .map(|(v, mem)| {
                        let mut st = s.clone();
                        st.mem = mem;
                        st.sub_pc = if v == 0 { 7 } else { 6 };
                        (Op::Read(REM), st)
                    })
                    .collect(),
            ),
            6 => {
                if !s.sub_token {
                    return Steps::Blocked;
                }
                let mut st = s.clone();
                st.sub_token = false;
                // park() returned because of unpark(): join the
                // unparker's view (std guarantees this edge).
                st.mem = s.mem.transfer(PoolModel::wtid(s.sub_token_from), 0);
                st.sub_pc = 5;
                Steps::Ready(vec![(Op::Park(SUB_LOT), st)])
            }
            _ => Steps::Done,
        }
    }

    fn worker_steps(&self, s: &PoolState, w: usize) -> Steps<PoolState> {
        let tid = PoolModel::wtid(w);
        match s.w_pc[w] {
            0 => Steps::Ready(
                s.mem
                    .load(tid, GEN, MemOrd::Acquire)
                    .into_iter()
                    .map(|(v, mem)| {
                        let mut st = s.clone();
                        st.mem = mem;
                        // gen == seen (0): nothing published yet from
                        // this helper's point of view — head to park.
                        st.w_pc[w] = if v == 0 { 1 } else { 2 };
                        (Op::Read(GEN), st)
                    })
                    .collect(),
            ),
            1 => {
                if !s.token[w] {
                    return Steps::Blocked;
                }
                let mut st = s.clone();
                st.token[w] = false;
                st.mem = s.mem.transfer(0, tid);
                st.w_pc[w] = 0;
                Steps::Ready(vec![(Op::Park(PoolModel::lot(w)), st)])
            }
            2 => Steps::Ready(
                s.mem
                    .load(tid, JOB, MemOrd::Acquire)
                    .into_iter()
                    .map(|(v, mem)| {
                        let mut st = s.clone();
                        st.mem = mem;
                        st.seen_job[w] = v;
                        st.w_pc[w] = 3;
                        (Op::Read(JOB), st)
                    })
                    .collect(),
            ),
            3 => {
                let mut st = s.clone();
                if self.panic_in == Some(w) {
                    st.panicked = true;
                    // The mutant forgets that a panicking job must
                    // still decrement `remaining`.
                    st.w_pc[w] = if self.bug == PoolBug::PanicSkipsDecrement { 6 } else { 4 };
                } else {
                    st.w_pc[w] = 4;
                }
                Steps::Ready(vec![(Op::Local, st)])
            }
            4 => {
                let (old, mem) = s.mem.rmw(tid, REM, MemOrd::AcqRel, |v| v.wrapping_sub(1));
                let mut st = s.clone();
                st.mem = mem;
                if old == 0 {
                    st.underflow = true;
                }
                st.w_pc[w] = if old == 1 { 5 } else { 6 };
                Steps::Ready(vec![(Op::CasOk(REM), st)])
            }
            5 => {
                let mut st = s.clone();
                st.sub_token = true;
                st.sub_token_from = w;
                st.w_pc[w] = 6;
                Steps::Ready(vec![(Op::Unpark(SUB_LOT), st)])
            }
            _ => Steps::Done,
        }
    }
}

#[test]
fn core_pool_handshake_exhaustive_under_dpor() {
    let r = check_dpor(&PoolModel { bug: PoolBug::None, panic_in: None }, DporOptions::default())
        .unwrap_or_else(|v| panic!("CorePool handshake refuted: {v}"));
    assert!(r.complete);
    assert!(r.traces > 1, "park vs spin windows must both be explored ({r:?})");
}

#[test]
fn core_pool_panic_mid_phase_window_still_drains() {
    // A worker panicking after reading the job: the real code
    // decrements anyway, so the handshake must still complete.
    let r =
        check_dpor(&PoolModel { bug: PoolBug::None, panic_in: Some(1) }, DporOptions::default())
            .unwrap_or_else(|v| panic!("panic-mid-phase handling refuted: {v}"));
    assert!(r.complete);
}

#[test]
fn core_pool_dropped_gen_fence_mutant_refuted() {
    let m = PoolModel { bug: PoolBug::DroppedGenFence, panic_in: None };
    let v = check_dpor(&m, DporOptions::default()).expect_err("relaxed gen bump must leak");
    println!("dropped-fence counterexample: {v}");
    match &v {
        NdVerdict::InvariantViolated { trace, state, reason, .. } => {
            assert!(reason.contains("stale job"), "{reason}");
            let states = replay_nd(&m, trace);
            assert_eq!(states.last(), Some(state));
        }
        other => panic!("expected a stale-job violation, got {other}"),
    }
}

#[test]
fn core_pool_lost_unpark_mutant_deadlocks() {
    let m = PoolModel { bug: PoolBug::LostUnpark, panic_in: None };
    let v = check_dpor(&m, DporOptions::default()).expect_err("lost wakeup must wedge the pool");
    println!("lost-unpark counterexample: {v}");
    assert!(
        matches!(v, NdVerdict::Deadlock { .. }),
        "submit-while-parking without a token must deadlock, got {v}"
    );
}

#[test]
fn core_pool_panic_skips_decrement_mutant_deadlocks() {
    let m = PoolModel { bug: PoolBug::PanicSkipsDecrement, panic_in: Some(0) };
    let v = check_dpor(&m, DporOptions::default()).expect_err("skipped decrement must wedge");
    println!("panic-skips-decrement counterexample: {v}");
    assert!(matches!(v, NdVerdict::Deadlock { .. }), "got {v}");
}

// ---------------------------------------------------------------------
// 3. reduce_tile completion-counter drain (codec active)
// ---------------------------------------------------------------------

const N_RED: usize = 3;
const CTR: Loc = N_RED as Loc;
const ENC: Loc = N_RED as Loc + 1;
const RED: Loc = N_RED as Loc + 2;

#[derive(Clone, Copy, PartialEq, Eq)]
enum TileBug {
    None,
    /// `counters[tile].fetch_sub(AcqRel)` demoted to Relaxed — the
    /// Relaxed-ified RMW: the final decrement no longer acquires the
    /// other workers' partial writes.
    RelaxedFetchSub,
    /// Counter seeded with `n_tasks - 1`.
    OffByOneInit,
}

/// Worker `w` writes its gradient partial (a plain store, ordered only
/// by the counter chain), then decrements the tile counter; whoever
/// sees the counter hit zero drains the tile: reads every partial,
/// quantizes the sum into the encode scratch (the PR 7 codec path), and
/// publishes the reduced value.
struct TileModel {
    bug: TileBug,
}

fn partial_of(w: usize) -> u64 {
    (w as u64 + 1) * 3
}

fn quantize(sum: u64) -> u64 {
    sum * 2 + 1
}

fn dequantize(enc: u64) -> u64 {
    (enc - 1) / 2
}

#[derive(Clone, Hash, PartialEq, Eq, Debug)]
struct TileState {
    mem: Mem,
    /// 0 compute, 1 store partial, 2 decrement, 3 reduce-read,
    /// 4 encode, 5 publish, 6 done.
    pc: [u8; N_RED],
    /// Reducer bookkeeping (at most one thread enters the drain).
    ridx: u8,
    sum: u64,
    stale_read: Option<(usize, u64)>,
    underflow: bool,
    published: bool,
}

impl NdModel for TileModel {
    type State = TileState;

    fn initial(&self) -> TileState {
        let mut init = vec![0u64; N_RED + 3];
        init[CTR as usize] = match self.bug {
            TileBug::OffByOneInit => N_RED as u64 - 1,
            _ => N_RED as u64,
        };
        TileState {
            mem: Mem::new(N_RED, &init),
            pc: [0; N_RED],
            ridx: 0,
            sum: 0,
            stale_read: None,
            underflow: false,
            published: false,
        }
    }

    fn n_threads(&self) -> usize {
        N_RED
    }

    fn steps(&self, s: &TileState, tid: usize) -> Steps<TileState> {
        match s.pc[tid] {
            0 => {
                let mut st = s.clone();
                st.pc[tid] = 1;
                Steps::Ready(vec![(Op::Local, st)])
            }
            1 => {
                let mut st = s.clone();
                st.mem = s.mem.store(tid, tid as Loc, partial_of(tid), MemOrd::Relaxed);
                st.pc[tid] = 2;
                Steps::Ready(vec![(Op::Write(tid as Loc), st)])
            }
            2 => {
                let ord = if self.bug == TileBug::RelaxedFetchSub {
                    MemOrd::Relaxed
                } else {
                    MemOrd::AcqRel
                };
                let (old, mem) = s.mem.rmw(tid, CTR, ord, |v| v.wrapping_sub(1));
                let mut st = s.clone();
                st.mem = mem;
                if old == 0 {
                    st.underflow = true;
                }
                st.pc[tid] = if old == 1 { 3 } else { 6 };
                Steps::Ready(vec![(Op::CasOk(CTR), st)])
            }
            3 => {
                let r = s.ridx as usize;
                Steps::Ready(
                    s.mem
                        .load(tid, r as Loc, MemOrd::Relaxed)
                        .into_iter()
                        .map(|(v, mem)| {
                            let mut st = s.clone();
                            st.mem = mem;
                            if v != partial_of(r) {
                                st.stale_read = Some((r, v));
                            }
                            st.sum = st.sum.wrapping_add(v);
                            st.ridx += 1;
                            if st.ridx as usize == N_RED {
                                st.pc[tid] = 4;
                            }
                            (Op::Read(r as Loc), st)
                        })
                        .collect(),
                )
            }
            4 => {
                let mut st = s.clone();
                st.mem = s.mem.store(tid, ENC, quantize(s.sum), MemOrd::Relaxed);
                st.pc[tid] = 5;
                Steps::Ready(vec![(Op::Write(ENC), st)])
            }
            5 => {
                let mut st = s.clone();
                st.mem = s.mem.store(tid, RED, dequantize(s.mem.peek(ENC)), MemOrd::Release);
                st.published = true;
                st.pc[tid] = 6;
                Steps::Ready(vec![(Op::Write(RED), st)])
            }
            _ => Steps::Done,
        }
    }

    fn invariant(&self, s: &TileState) -> Result<(), String> {
        if s.underflow {
            return Err("tile counter underflowed: the drain fired twice".into());
        }
        if let Some((w, v)) = s.stale_read {
            return Err(format!(
                "reduce_tile read a stale partial from worker {w}: {v} != {}",
                partial_of(w)
            ));
        }
        if s.pc.iter().all(|&pc| pc == 6) {
            if !s.published {
                return Err("every worker finished but the tile was never reduced".into());
            }
            let want: u64 = (0..N_RED).map(partial_of).sum();
            if s.mem.peek(RED) != want {
                return Err(format!(
                    "reduced tile holds {} but the partial sum is {want}",
                    s.mem.peek(RED)
                ));
            }
        }
        Ok(())
    }
}

#[test]
fn tile_drain_exhaustive_under_dpor() {
    let r = check_dpor(&TileModel { bug: TileBug::None }, DporOptions::default())
        .unwrap_or_else(|v| panic!("reduce_tile drain refuted: {v}"));
    assert!(r.complete);
    assert!(r.traces > 1, "decrement orders must fork the exploration ({r:?})");
}

#[test]
fn tile_relaxed_fetch_sub_mutant_refuted() {
    let m = TileModel { bug: TileBug::RelaxedFetchSub };
    let v = check_dpor(&m, DporOptions::default()).expect_err("relaxed drain must read stale");
    println!("relaxed-fetch_sub counterexample: {v}");
    match &v {
        NdVerdict::InvariantViolated { trace, state, reason, .. } => {
            assert!(reason.contains("stale partial"), "{reason}");
            let states = replay_nd(&m, trace);
            assert_eq!(states.last(), Some(state));
        }
        other => panic!("expected a stale-partial violation, got {other}"),
    }
}

#[test]
fn tile_off_by_one_counter_mutant_refuted() {
    let m = TileModel { bug: TileBug::OffByOneInit };
    let v = check_dpor(&m, DporOptions::default()).expect_err("short counter must fire early");
    println!("off-by-one-counter counterexample: {v}");
    match &v {
        NdVerdict::InvariantViolated { trace, state, reason, .. } => {
            assert!(reason.contains("stale partial") || reason.contains("underflow"), "{reason}");
            let states = replay_nd(&m, trace);
            assert_eq!(states.last(), Some(state));
        }
        other => panic!("expected a violation, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Budgeted runs (the CI model-check job's explicit state budget)
// ---------------------------------------------------------------------

#[test]
fn preemption_bounded_fallback_still_refutes_every_mutant() {
    // Under a 2-preemption budget the search is not exhaustive, but
    // every seeded bug still needs at most two preemptions to surface —
    // the fallback mode CI can afford on bigger models.
    let opts = DporOptions { preemption_bound: Some(2), ..Default::default() };
    assert!(check_dpor(
        &QueueModel {
            threads: 3,
            chunks: 3,
            work_steps: 0,
            claims_per_thread: None,
            bug: QueueBug::TornCas
        },
        opts
    )
    .is_err());
    assert!(check_dpor(&PoolModel { bug: PoolBug::DroppedGenFence, panic_in: None }, opts).is_err());
    assert!(check_dpor(&TileModel { bug: TileBug::RelaxedFetchSub }, opts).is_err());
}
