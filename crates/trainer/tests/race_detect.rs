//! Dynamic happens-before race detection on the real pipelined
//! trainer: run the 4-worker executor with the `trace::race` detector
//! installed and assert the instrumented protocol is race-free — then
//! prove the harness has teeth by injecting an unsynchronized write
//! and checking it is caught.
//!
//! Compiled only under `--features race-detect` (the instrumentation
//! in `real::pipeline` is feature-gated off the hot path).
#![cfg(feature = "race-detect")]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trainer::real::net::{NetConfig, SegNet};
use trainer::real::pipeline::{race_keys, PipelineExecutor};
use trainer::real::segdata::Sample;
use trainer::real::sgd::{LrSchedule, MomentumSgd};

use collectives::compression::CodecKind;

fn tiny_cfg() -> NetConfig {
    NetConfig { height: 6, width: 5, cin: 2, hidden1: 3, hidden2: 4, n_classes: 3, k: 3 }
}

fn random_shard(cfg: &NetConfig, rng: &mut StdRng, n: usize) -> Vec<Sample> {
    let npix = cfg.height * cfg.width;
    (0..n)
        .map(|_| Sample {
            pixels: (0..cfg.cin * npix).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect(),
            labels: (0..npix).map(|_| rng.gen_range(0..cfg.n_classes) as u8).collect(),
        })
        .collect()
}

/// One test body (not two `#[test]`s): the detector is a process-wide
/// `OnceLock`, so the zero-race phase must complete before the
/// injection phase dirties the history.
#[test]
fn pipelined_trainer_is_race_free_and_injection_is_caught() {
    let detector = trace::race::install(64, 4096, 256);

    let cfg = tiny_cfg();
    let replicas = 2;
    let mut rng = StdRng::seed_from_u64(41);
    let nets: Vec<SegNet> = (0..replicas).map(|_| SegNet::new(cfg, 9)).collect();
    let mut nets = nets;
    let n = nets[0].n_params();
    let mut opts: Vec<MomentumSgd> =
        (0..replicas).map(|_| MomentumSgd::new(LrSchedule::constant(0.05, 100), 0.9, n)).collect();
    let shards: Vec<Vec<Sample>> = (0..replicas).map(|_| random_shard(&cfg, &mut rng, 4)).collect();

    // Phase 1: the real 4-worker pipelined trainer, several steps, with
    // a codec active (the reduce path the tile model covers).
    let mut exec = PipelineExecutor::new(&cfg, replicas, 4, 1, 4);
    for _ in 0..5 {
        exec.step(nets.iter_mut().zip(opts.iter_mut()), &shards, CodecKind::Int8, true);
    }
    assert_eq!(
        detector.races(),
        0,
        "pipelined executor must be race-free; reports: {:?}",
        detector.reports()
    );
    assert_eq!(detector.dropped(), 0, "detector tables must be sized for the run");

    // Phase 2: injected unsynchronized write — a rogue lane touching a
    // gradient region that the last step's reduction wrote, with no
    // sync edge. The detector must flag exactly this.
    detector.on_write(0, 63, race_keys::slot_tile(0, 0));
    assert_eq!(detector.races(), 1, "the injected unsynced write must be caught");
    let report = detector.reports()[0];
    assert_eq!(report.current, (0, 63));
    assert_eq!(report.loc, race_keys::slot_tile(0, 0));
}
