//! End-to-end proof for the distributed telemetry plane, driven
//! through real OS processes:
//!
//! * a chaos run with telemetry + live scrape enabled converges to the
//!   *bit-exact* survivor params of the same run without telemetry —
//!   the plane rides the control stream and never perturbs training;
//! * the HTTP endpoint serves rank-labeled cluster metrics *mid-run*;
//! * SIGKILLing a worker leaves a `flight_<rank>.json` post-mortem
//!   whose `last_step` is exactly the kill step, with `alive: false`;
//! * the per-window `cluster_summary.json` records the shrunken world.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const STEPS: usize = 30;
const KILL_RANK: usize = 2;
const KILL_STEP: usize = 20;
const SEED: u64 = 42;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seg_telemetry_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn launch_cmd(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dist_train"));
    cmd.arg("launch")
        .args(["--dir", &dir.to_string_lossy()])
        .args(["--workers", &WORKERS.to_string()])
        .args(["--steps", &STEPS.to_string()])
        .args(["--seed", &SEED.to_string()])
        .args(["--preset", "quick"])
        .args(["--kill-rank", &KILL_RANK.to_string()])
        .args(["--kill-step", &KILL_STEP.to_string()]);
    cmd
}

fn read_params(dir: &Path, rank: usize) -> Vec<u32> {
    let bytes = std::fs::read(dir.join(format!("params_r{rank}.bin")))
        .unwrap_or_else(|e| panic!("params_r{rank}.bin: {e}"));
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

/// One plain GET against the scrape endpoint; the body, if the server
/// answered.
fn http_get(addr: &str, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let (head, body) = response.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_string())
}

/// Poll the scrape endpoint while the launcher runs, until a body
/// carrying rank-labeled series shows up.
fn scrape_mid_run(dir: &Path, child: &mut Child) -> (String, String) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr_file = dir.join("metrics_addr.txt");
    let mut text = None;
    let mut json = None;
    while Instant::now() < deadline {
        assert!(
            child.try_wait().expect("poll launcher").is_none(),
            "launcher exited before the live scrape observed rank series"
        );
        let Ok(addr) = std::fs::read_to_string(&addr_file) else { continue };
        if text.is_none() {
            text = http_get(addr.trim(), "/metrics").filter(|b| {
                (0..WORKERS)
                    .all(|r| b.contains(&format!("train_steps_committed_total{{rank=\"{r}\"}}")))
            });
        }
        if json.is_none() {
            json = http_get(addr.trim(), "/metrics.json")
                .filter(|b| b.contains("\"ewma_step_us\":") && b.contains("\"ranks\""));
        }
        if let (Some(t), Some(j)) = (&text, &json) {
            return (t.clone(), j.clone());
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("no rank-labeled scrape within 30s");
}

#[test]
fn telemetry_plane_is_inert_observable_and_survives_sigkill() {
    // Reference: the same chaos run with the plane disabled.
    let plain_dir = scratch_dir("plain");
    let out = launch_cmd(&plain_dir).output().expect("plain launch");
    assert!(
        out.status.success(),
        "plain launcher failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );

    // Instrumented: telemetry + live scrape on an ephemeral port.
    let tel_dir = scratch_dir("tel");
    std::fs::create_dir_all(&tel_dir).expect("scratch dir");
    let mut child = launch_cmd(&tel_dir)
        .args(["--metrics-addr", "127.0.0.1:0"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("telemetry launch");

    // Live scrape mid-run: rank-labeled series in both formats.
    let (text, json) = scrape_mid_run(&tel_dir, &mut child);
    for rank in 0..WORKERS {
        assert!(
            text.contains(&format!("train_steps_committed_total{{rank=\"{rank}\"}}")),
            "scrape lacks rank {rank}: {text}"
        );
    }
    assert!(text.contains("# TYPE train_straggler_lateness_us gauge"), "no straggler gauge");
    assert!(text.contains("cluster_ranks_total 4"), "no cluster total");
    assert!(json.contains("\"ewma_step_us\":"), "JSON scrape lacks the EWMA: {json}");

    let status = child.wait().expect("telemetry launcher");
    assert!(status.success(), "telemetry launcher failed with {status}");

    // The plane is inert: survivors match the plain run bit-for-bit,
    // and the fault unfolded at the same step.
    for r in (0..WORKERS).filter(|&r| r != KILL_RANK) {
        assert_eq!(
            read_params(&tel_dir, r),
            read_params(&plain_dir, r),
            "rank {r}: telemetry perturbed training"
        );
    }
    assert!(!tel_dir.join(format!("params_r{KILL_RANK}.bin")).exists());
    let summary = std::fs::read_to_string(tel_dir.join("summary.json")).expect("summary.json");
    assert!(
        summary.contains(&format!("{{\"step\": {KILL_STEP}, \"dead\": [{KILL_RANK}]}}")),
        "telemetry run's degrade drifted: {summary}"
    );

    // The crash flight recorder pinned the victim's last step.
    let flight = std::fs::read_to_string(tel_dir.join(format!("flight_{KILL_RANK}.json")))
        .expect("flight_<rank>.json for the killed rank");
    assert!(flight.contains(&format!("\"rank\": {KILL_RANK},")), "wrong rank: {flight}");
    assert!(flight.contains("\"alive\": false,"), "victim still marked alive: {flight}");
    assert!(
        flight.contains(&format!("\"last_step\": {KILL_STEP},")),
        "flight record does not pin the kill step: {flight}"
    );
    assert!(flight.contains("\"cat\": \"STEP\""), "no flight spans: {flight}");

    // The cluster summary records the shrunken world.
    let cluster =
        std::fs::read_to_string(tel_dir.join("cluster_summary.json")).expect("cluster_summary");
    assert!(cluster.contains("\"ranks_total\": 4,"), "bad summary: {cluster}");
    assert!(cluster.contains("\"ranks_alive\": 3,"), "bad summary: {cluster}");
    assert!(
        cluster.contains(&format!("\"rank\": {KILL_RANK}, \"alive\": false")),
        "summary misses the dead rank: {cluster}"
    );

    // No telemetry file leaks into the plain run's dir.
    assert!(!plain_dir.join("cluster_summary.json").exists());
    assert!(!plain_dir.join(format!("flight_{KILL_RANK}.json")).exists());

    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&tel_dir);
}
