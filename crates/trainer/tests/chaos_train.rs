//! End-to-end chaos: training under injected faults.
//!
//! The acceptance scenario from the fault-tolerance issue: 4 workers, a
//! seeded plan with one crashed rank and two straggler rounds —
//! training must complete on the survivors, record the degradation, and
//! replay bit-identically from the same plan. Plus: recoverable faults
//! (drops/corruptions) must leave training bit-identical to a
//! fault-free run. `CHAOS_SEED` varies the sampled plans in CI.

use collectives::{Algorithm, CodecKind};
use faults::{FaultKind, FaultPlan, FaultSpec, Injection};
use trainer::real::{train, DataConfig, FaultToleranceConfig, NetConfig, TrainConfig};

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC4405)
}

fn tiny(workers: usize, steps: usize) -> TrainConfig {
    let data = DataConfig { height: 10, width: 10, ..DataConfig::default() };
    let net =
        NetConfig { height: 10, width: 10, cin: 3, hidden1: 4, hidden2: 6, n_classes: 4, k: 3 };
    TrainConfig {
        data,
        net,
        workers,
        batch_per_worker: 2,
        steps,
        base_lr: 0.4,
        lr_scale: 1.0,
        warmup_steps: 5,
        momentum: 0.9,
        weight_decay: 0.0,
        accumulation_steps: 1,
        algo: Algorithm::Ring,
        pipeline: false,
        fp16_gradients: false,
        codec: CodecKind::None,
        error_feedback: false,
        augment: false,
        eval_every: 0,
        eval_samples: 16,
        seed: 42,
        faults: None,
        checkpoint: None,
        trace: None,
    }
}

#[test]
fn training_survives_a_crash_and_two_straggler_rounds() {
    let seed = chaos_seed();
    // One crashed rank + two straggler rounds at n = 4: the acceptance
    // scenario. The victim is seed-dependent so CI's seed sweep rotates
    // it around the ring.
    let victim = 1 + (seed % 3) as usize; // keep worker 0 alive for eval
    let survivors: Vec<usize> = (0..4).filter(|&w| w != victim).collect();
    let plan = FaultPlan::explicit(
        seed,
        vec![
            Injection { step: 2, rank: victim, round: 1, kind: FaultKind::Crash },
            Injection {
                step: 4,
                rank: survivors[1],
                round: 0,
                kind: FaultKind::Straggle { millis: 30 },
            },
            Injection {
                step: 6,
                rank: survivors[2],
                round: 2,
                kind: FaultKind::Straggle { millis: 30 },
            },
        ],
    );
    let mut cfg = tiny(4, 10);
    cfg.faults = Some(FaultToleranceConfig::with_plan(plan));

    let r = train(&cfg);
    // Training completed every step on the survivor topology.
    assert_eq!(r.step_losses.len(), 10);
    assert_eq!(r.survivors, survivors);
    assert!(r.final_miou.is_finite() && r.final_miou > 0.0);
    let c = r.fault_counters;
    assert_eq!(c.injected_crashes, 1, "{c}");
    assert_eq!(c.injected_straggles, 2, "{c}");
    assert_eq!(c.degradations, 1, "{c}");
    assert!(
        r.fault_events
            .iter()
            .any(|e| matches!(e, faults::FaultEvent::Degraded { step: 2, new_world: 3, .. })),
        "{:?}",
        r.fault_events
    );
    // Stragglers were absorbed on the virtual clock: they delayed
    // nothing real and cost no correctness.
    assert!(r.step_losses.iter().all(|l| l.is_finite()));

    // Replay: the same plan reproduces the identical run.
    let r2 = train(&cfg);
    assert_eq!(r.final_params, r2.final_params, "replay must be bit-identical");
    assert_eq!(r.step_losses, r2.step_losses);
    assert_eq!(r.fault_events, r2.fault_events);
    assert_eq!(r.fault_counters.deterministic_part(), r2.fault_counters.deterministic_part());
}

#[test]
fn recoverable_faults_do_not_change_training_at_all() {
    let seed = chaos_seed();
    // Drops + corruptions + stragglers, no crashes: the resend/CRC
    // protocol must make training bit-identical to the fault-free run.
    let rounds = Algorithm::Ring.build(4, 1).rounds.len();
    let plan = FaultPlan::seeded(
        seed,
        &FaultSpec {
            stragglers: 1,
            straggle_ms: 3,
            drops: 2,
            corruptions: 1,
            ..FaultSpec::none(4, 6, rounds)
        },
    );
    assert!(!plan.is_empty());
    let mut faulty_cfg = tiny(4, 6);
    faulty_cfg.faults = Some(FaultToleranceConfig::with_plan(plan));
    let faulty = train(&faulty_cfg);
    let clean = train(&tiny(4, 6));
    assert_eq!(
        faulty.final_params, clean.final_params,
        "recovered faults must leave training bit-identical"
    );
    assert_eq!(faulty.step_losses, clean.step_losses);
    assert_eq!(faulty.survivors, vec![0, 1, 2, 3]);
    assert!(faulty.fault_counters.injected_total() > 0);
    assert_eq!(faulty.fault_counters.degradations, 0);
}

#[test]
fn degraded_run_still_learns() {
    // Losing a worker early must not stop convergence — the survivors
    // keep averaging over their own shards.
    let plan = FaultPlan::explicit(
        7,
        vec![Injection { step: 1, rank: 3, round: 0, kind: FaultKind::Crash }],
    );
    let mut cfg = tiny(4, 40);
    cfg.faults = Some(FaultToleranceConfig::with_plan(plan));
    let r = train(&cfg);
    assert_eq!(r.survivors, vec![0, 1, 2]);
    assert!(r.final_miou > 0.5, "degraded run should still learn, got {:.3}", r.final_miou);
}
