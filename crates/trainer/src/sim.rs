//! Simulated scaling sweeps: drive the Horovod runtime across GPU counts
//! and collect the throughput/efficiency curves the paper's figures plot.

use dlmodels::{GpuModel, ModelGraph};
use horovod::{HorovodConfig, StepSim, TrainReport};
use mpi_profiles::MpiProfile;
use summit_metrics::ScalingSeries;
use summit_sim::Machine;

/// Everything that defines one scaling experiment except the GPU count.
#[derive(Clone)]
pub struct SweepSpec<'a> {
    pub machine: &'a Machine,
    pub profile: MpiProfile,
    pub config: HorovodConfig,
    pub model: &'a ModelGraph,
    pub gpu: &'a GpuModel,
    pub batch_per_gpu: usize,
    /// Steps to simulate per point (jitter averaging).
    pub steps: usize,
    pub seed: u64,
}

impl<'a> SweepSpec<'a> {
    /// Simulate one point at `n_ranks`.
    pub fn run_at(&self, n_ranks: usize) -> TrainReport {
        StepSim::new(
            self.machine,
            self.profile.clone(),
            self.config.clone(),
            self.model,
            self.gpu,
            self.batch_per_gpu,
            n_ranks,
            self.seed,
        )
        .simulate_training(self.steps)
    }

    /// Sweep `counts` and return the scaling series labelled `label`.
    pub fn sweep(&self, label: &str, counts: &[usize]) -> ScalingSeries {
        assert!(!counts.is_empty());
        let single = self.run_at(1).single_gpu_throughput;
        let mut series = ScalingSeries::new(label, single);
        for &n in counts {
            series.push(n, self.run_at(n).throughput);
        }
        series
    }
}

/// The paper's GPU-count ladder on Summit: whole nodes of 6 up to 132.
pub fn paper_gpu_counts() -> Vec<usize> {
    vec![6, 12, 24, 48, 96, 132]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmodels::deeplab_paper;
    use summit_sim::MachineConfig;

    #[test]
    fn sweep_produces_monotone_throughput() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(48));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let spec = SweepSpec {
            machine: &machine,
            profile: MpiProfile::mvapich2_gdr(),
            config: HorovodConfig::default(),
            model: &model,
            gpu: &gpu,
            batch_per_gpu: 1,
            steps: 2,
            seed: 7,
        };
        let s = spec.sweep("tuned", &[6, 12, 24, 48]);
        let t: Vec<f64> = s.points.iter().map(|p| p.throughput).collect();
        for w in t.windows(2) {
            assert!(w[1] > w[0], "throughput must grow with GPUs: {t:?}");
        }
        let (_, eff) = s.efficiency_at_max().unwrap();
        assert!(eff > 0.7 && eff <= 1.0);
    }

    #[test]
    fn paper_ladder_tops_at_132() {
        let c = paper_gpu_counts();
        assert_eq!(*c.last().unwrap(), 132);
        assert_eq!(c[0], 6);
    }
}
