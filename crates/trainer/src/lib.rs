//! Synchronous data-parallel training, in two registers:
//!
//! * [`sim`] — *timing*: scaling sweeps of DLv3+/ResNet-50 training over
//!   the simulated Summit + MPI + Horovod stack (the paper's throughput
//!   and efficiency figures);
//! * [`real`] — *numerics*: a from-scratch segmentation network trained
//!   across OS threads with real gradient allreduce on a synthetic
//!   shapes dataset (the paper's mIoU claim, per the substitution in
//!   DESIGN.md §2).
//!
//! # Example: real distributed training
//!
//! ```
//! use trainer::real::{train, TrainConfig};
//!
//! let mut cfg = TrainConfig::quick(2);
//! cfg.steps = 30; // keep the doctest fast
//! let result = train(&cfg);
//! assert!(result.final_miou > 0.4);
//! ```

pub mod input;
pub mod real;
pub mod sim;

pub use input::InputPipeline;
pub use sim::{paper_gpu_counts, SweepSpec};
