//! Input-pipeline model: GPFS reads + CPU decode/augment feeding the
//! GPUs, per Summit node.
//!
//! Distributed segmentation training reads large images; whether the
//! data pipeline keeps up depends on the per-node filesystem bandwidth,
//! how many CPU loader workers decode/augment, and whether the framework
//! prefetches (`tf.data` double-buffering). The model is a steady-state
//! two-stage pipeline: read and decode overlap internally, and with
//! prefetch the whole pipeline overlaps the training step, so
//! `step = max(train_step, input_step)`; without prefetch they serialize.

/// Per-node input pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputPipeline {
    /// On-disk bytes per training example (encoded image + label).
    pub bytes_per_image: u64,
    /// Single-core decode + augment time per image, seconds.
    pub decode_cpu_s: f64,
    /// Per-node sustained filesystem read bandwidth, bytes/s.
    pub node_read_bw: f64,
    /// CPU loader workers per node.
    pub cpu_workers: usize,
    /// Whether the pipeline prefetches (overlaps the training step).
    pub prefetch: bool,
}

impl InputPipeline {
    /// Pascal-VOC-like 513² crops on Summit's Alpine GPFS with a
    /// tf.data-style loader: ~200 KB JPEGs, ~40 ms/image for decode +
    /// random-scale/crop/flip augmentation at 513², ~3 GB/s per-node
    /// reads, prefetch on.
    pub fn summit_voc() -> Self {
        InputPipeline {
            bytes_per_image: 200 << 10,
            decode_cpu_s: 40e-3,
            node_read_bw: 3e9,
            cpu_workers: 8,
            prefetch: true,
        }
    }

    fn check(&self) {
        assert!(self.node_read_bw > 0.0 && self.decode_cpu_s >= 0.0);
        assert!(self.cpu_workers >= 1, "need at least one loader worker");
    }

    /// Time for one node to produce `images_per_node` examples
    /// (steady-state: read and decode stages overlap).
    pub fn input_step_time(&self, images_per_node: usize) -> f64 {
        self.check();
        let n = images_per_node as f64;
        let read = n * self.bytes_per_image as f64 / self.node_read_bw;
        let decode = n * self.decode_cpu_s / self.cpu_workers as f64;
        read.max(decode)
    }

    /// Effective step time given the compute+comm step time.
    pub fn effective_step_time(&self, train_step: f64, images_per_node: usize) -> f64 {
        let input = self.input_step_time(images_per_node);
        if self.prefetch {
            train_step.max(input)
        } else {
            train_step + input
        }
    }

    /// Is the pipeline the bottleneck at this rate?
    pub fn input_bound(&self, train_step: f64, images_per_node: usize) -> bool {
        self.input_step_time(images_per_node) > train_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_binds_with_few_workers() {
        let mut p = InputPipeline::summit_voc();
        p.cpu_workers = 1;
        // 12 images: decode = 480 ms >> read = 0.8 ms.
        let t = p.input_step_time(12);
        assert!((t - 0.48).abs() < 1e-9);
        p.cpu_workers = 16;
        assert!(p.input_step_time(12) < 0.04);
    }

    #[test]
    fn read_binds_for_huge_uncompressed_images() {
        let p = InputPipeline {
            bytes_per_image: 3 * 513 * 513 * 4, // raw fp32 tensors
            decode_cpu_s: 0.0,
            node_read_bw: 3e9,
            cpu_workers: 8,
            prefetch: true,
        };
        let t = p.input_step_time(12);
        assert!((t - 12.0 * (3.0 * 513.0 * 513.0 * 4.0) / 3e9).abs() < 1e-9);
    }

    #[test]
    fn prefetch_hides_input_under_compute() {
        let p = InputPipeline::summit_voc();
        let train = 0.3; // 300 ms step
        assert_eq!(p.effective_step_time(train, 12), train, "input hidden");
        let mut serial = p;
        serial.prefetch = false;
        assert!(serial.effective_step_time(train, 12) > train);
    }

    #[test]
    fn input_bound_detection() {
        let mut p = InputPipeline::summit_voc();
        p.cpu_workers = 1;
        assert!(p.input_bound(0.05, 12)); // 480 ms input vs 50 ms step
        assert!(!p.input_bound(0.5, 12));
    }

    #[test]
    fn zero_images_is_free() {
        assert_eq!(InputPipeline::summit_voc().input_step_time(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "loader worker")]
    fn zero_workers_rejected() {
        let mut p = InputPipeline::summit_voc();
        p.cpu_workers = 0;
        p.input_step_time(1);
    }
}
