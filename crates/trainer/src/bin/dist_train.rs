//! Multi-process data-parallel training over Unix-domain sockets.
//!
//! Two personalities in one binary:
//!
//! * `dist_train launch --dir D --workers N ...` — binds the
//!   rendezvous socket, spawns N copies of itself as `worker`
//!   subprocesses, assigns ranks, runs the Ready→Start barrier, and
//!   then arbitrates the commit protocol (see
//!   `trainer::real::worker`): collect `StepDone` votes, broadcast
//!   `Commit`, and on a worker death broadcast `Degrade` with a bumped
//!   era. With `--kill-rank R --kill-step S` it SIGKILLs rank R's
//!   process when the first vote for step S arrives — the chaos hook
//!   the kill-a-worker suite drives.
//! * `dist_train worker --dir D --tag T ...` — joins the rendezvous,
//!   builds the socket mesh, trains its rank, writes
//!   `result_r<rank>.json` + `params_r<rank>.bin` into the dir, and
//!   reports `Finished`.
//!
//! Every file this binary writes lands inside `--dir`; the launcher
//! writes a final `summary.json` naming the dead and the degrade
//! steps so tests can replay the exact fault threaded.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use faults::{FaultClock, RetryPolicy};
use trace::chrome::{parse_trace, write_trace, ChromeEvent};
use trace::cluster::{ClusterView, StragglerPolicy};
use trace::telemetry::{decode as decode_telemetry, WorkerTelemetry};
use trace::TraceSession;
use trainer::real::worker::{preset, run_worker, WorkerOutcome};
use transport::{join, Frame, FrameKind, PeerConn, Rendezvous, TelemetrySource, WireError};

/// The coordinator's pseudo-rank in frame `from` fields (workers are
/// `0..N`, so `N` can never collide — but any value would do; nothing
/// routes on it).
fn coord_id(workers: usize) -> u16 {
    workers as u16
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let code = match mode {
        Some("launch") => launch(&args[1..]),
        Some("worker") => worker(&args[1..]),
        _ => {
            eprintln!(
                "usage: dist_train launch --dir D [--workers N] [--steps S] [--seed X] \
                 [--preset tiny|quick] [--kill-rank R --kill-step S] \
                 [--telemetry] [--metrics-addr HOST:PORT] [--summary-every K]\n\
                 \x20      dist_train worker --dir D --tag T --workers N --steps S --seed X --preset P"
            );
            2
        }
    };
    std::process::exit(code);
}

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_or<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    arg(args, key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Commit-protocol pacing. `base` also derives the heartbeat interval
/// and the death threshold (see `RetryPolicy`), so one knob scales the
/// whole failure-detection stack.
fn policy(args: &[String]) -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(arg_or(args, "--base-ms", 25)),
        factor: 2,
        max_attempts: 6,
        tick: Duration::from_millis(2),
    }
}

// ---------------------------------------------------------------- launch

struct WorkerSlot {
    conn: PeerConn,
    pid: u32,
    dead: bool,
    finished: bool,
    vote: Option<u32>,
}

fn launch(args: &[String]) -> i32 {
    let Some(dir) = arg(args, "--dir").map(PathBuf::from) else {
        eprintln!("launch: --dir is required");
        return 2;
    };
    let workers: usize = arg_or(args, "--workers", 4);
    let steps: usize = arg_or(args, "--steps", 8);
    let seed: u64 = arg_or(args, "--seed", 42);
    let preset_name = arg(args, "--preset").unwrap_or_else(|| "tiny".into());
    let traced = args.iter().any(|a| a == "--trace");
    let metrics_addr = arg(args, "--metrics-addr");
    // A scrape endpoint is useless without the plane feeding it, so
    // --metrics-addr implies --telemetry.
    let telemetry_on = args.iter().any(|a| a == "--telemetry") || metrics_addr.is_some();
    let summary_every: u64 = arg_or(args, "--summary-every", 1);
    let kill: Option<(usize, usize)> = match (arg(args, "--kill-rank"), arg(args, "--kill-step")) {
        (Some(r), Some(s)) => match (r.parse(), s.parse()) {
            (Ok(r), Ok(s)) => Some((r, s)),
            _ => {
                eprintln!("launch: --kill-rank/--kill-step must be integers");
                return 2;
            }
        },
        (None, None) => None,
        _ => {
            eprintln!("launch: --kill-rank and --kill-step go together");
            return 2;
        }
    };
    if let Some((r, s)) = kill {
        if r >= workers || s >= steps {
            eprintln!("launch: kill target rank {r} step {s} outside the run");
            return 2;
        }
    }
    let pol = policy(args);

    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("launch: cannot create {}: {e}", dir.display());
        return 1;
    }
    let rdzv = match Rendezvous::bind(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("launch: cannot bind rendezvous socket: {e}");
            return 1;
        }
    };

    // Spawn the workers as copies of this binary.
    let exe = std::env::current_exe().expect("own executable path"); // lint: allow(unwrap): no portable fallback exists for self-spawning
    let mut children: Vec<Child> = Vec::with_capacity(workers);
    for i in 0..workers {
        let mut cmd = Command::new(&exe);
        cmd.arg("worker")
            .args(["--dir", &dir.to_string_lossy()])
            .args(["--tag", &i.to_string()])
            .args(["--workers", &workers.to_string()])
            .args(["--steps", &steps.to_string()])
            .args(["--seed", &seed.to_string()])
            .args(["--preset", &preset_name])
            .args(["--base-ms", &pol.base.as_millis().to_string()])
            .stdin(Stdio::null());
        if traced {
            cmd.arg("--trace");
        }
        if telemetry_on {
            cmd.arg("--telemetry");
        }
        let child = cmd.spawn();
        match child {
            Ok(c) => children.push(c),
            Err(e) => {
                eprintln!("launch: spawning worker {i} failed: {e}");
                for mut c in children {
                    let _ = c.kill();
                }
                return 1;
            }
        }
    }

    let telem = telemetry_on.then(|| TelemetryPlane::new(summary_every));
    let server = match (&metrics_addr, &telem) {
        (Some(addr), Some(t)) => match serve_metrics(addr, &dir, Arc::clone(&t.view)) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("launch: metrics endpoint: {e}");
                for mut c in children {
                    let _ = c.kill();
                }
                return 1;
            }
        },
        _ => None,
    };

    let result = coordinate(&rdzv, &dir, workers, kill, &pol, &mut children, telem.as_ref());

    // One last window flush so post-mortems see the final cluster
    // state even when the run (or its summary cadence) ended badly.
    if let Some(t) = &telem {
        t.write_summary(&dir);
    }
    if let Some(s) = server {
        s.shutdown();
    }

    if traced && result.is_ok() {
        match merge_traces(&dir, workers) {
            Ok(n) => println!("launch: merged {n} worker trace lanes into trace_merged.json"),
            Err(e) => eprintln!("launch: trace merge failed: {e}"),
        }
    }

    // Reap everything; a SIGKILLed child's status is expected to be
    // signal-terminated, anyone else must have exited cleanly.
    let mut exit = match &result {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("launch: {e}");
            for c in children.iter_mut() {
                let _ = c.kill();
            }
            1
        }
    };
    let dead_pids = result.unwrap_or_default();
    for (i, c) in children.iter_mut().enumerate() {
        let was_killed = dead_pids.contains(&c.id());
        match c.wait() {
            Ok(status) if !status.success() => {
                if !was_killed && exit == 0 {
                    eprintln!("launch: worker process {i} exited with {status}");
                    exit = 1;
                }
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("launch: waiting on worker {i}: {e}");
                exit = 1;
            }
        }
    }
    exit
}

/// Rendezvous, barrier, and the commit/degrade event loop. Returns the
/// pids of the ranks that died (their signal exits are expected when
/// reaping). `children[i]` is the worker spawned with tag `i`; ranks
/// are assigned by arrival, so kill targets resolve through the hello
/// pids.
fn coordinate(
    rdzv: &Rendezvous,
    dir: &Path,
    workers: usize,
    kill: Option<(usize, usize)>,
    pol: &RetryPolicy,
    children: &mut [Child],
    telem: Option<&TelemetryPlane>,
) -> Result<Vec<u32>, String> {
    let me = coord_id(workers);
    let joined = rdzv.assemble(workers).map_err(|e| format!("rendezvous failed: {e}"))?;
    let mut slots: Vec<WorkerSlot> = Vec::with_capacity(workers);
    for (rank, (hello, stream)) in joined.into_iter().enumerate() {
        let conn = PeerConn::solo(rank, me as usize, stream, Some(*pol))
            .map_err(|e| format!("control conn for rank {rank}: {e}"))?;
        if !children.iter().any(|c| c.id() == hello.pid) {
            return Err(format!("rank {rank} announced unknown pid {}", hello.pid));
        }
        slots.push(WorkerSlot { conn, pid: hello.pid, dead: false, finished: false, vote: None });
    }

    // Ready → Start barrier: every worker has a full mesh before any
    // schedule traffic flows. Telemetry piggybacks the heartbeat pump,
    // which starts at conn creation — so telemetry frames can race the
    // Ready and must be absorbed here, not treated as protocol errors.
    // The wait is bounded by one overall deadline per rank: telemetry
    // keeps arriving at beacon cadence even from a worker wedged before
    // its Ready, so per-receive timeouts alone would never expire.
    for (rank, slot) in slots.iter().enumerate() {
        let deadline = Instant::now() + pol.death_threshold();
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(format!("rank {rank} never became ready: {}", WireError::Timeout));
            }
            match slot.conn.recv_timeout(deadline - now) {
                Ok(f) if f.kind == FrameKind::Ready => break,
                Ok(f) if f.kind == FrameKind::Telemetry => {
                    if let Some(t) = telem {
                        t.ingest(&f);
                    }
                }
                Ok(f) => return Err(format!("rank {rank} sent {:?} before Ready", f.kind)),
                Err(e) => return Err(format!("rank {rank} never became ready: {e}")),
            }
        }
    }
    for slot in slots.iter() {
        slot.conn
            .send(&Frame::control(FrameKind::Start, me, 0, 0))
            .map_err(|e| format!("start broadcast: {e}"))?;
    }

    let mut era: u32 = 0;
    let mut current_step: u32 = 0;
    let mut killed = false;
    let mut degrades: Vec<(u32, Vec<usize>)> = Vec::new();

    let all_done = |slots: &[WorkerSlot]| slots.iter().all(|s| s.finished || s.dead);
    while !all_done(&slots) {
        for r in 0..workers {
            if slots[r].dead || slots[r].finished {
                continue;
            }
            match slots[r].conn.recv_timeout(pol.tick) {
                Ok(f) => match f.kind {
                    FrameKind::StepDone => {
                        if f.era != era {
                            continue; // stale vote from before a degrade
                        }
                        slots[r].vote = Some(f.step);
                        // Chaos hook: the first current-era vote for the
                        // kill step pulls the trigger — the target may be
                        // computing, mid-exchange, or already voted.
                        if let Some((kr, ks)) = kill {
                            if !killed && f.step as usize == ks && !slots[kr].dead {
                                killed = true;
                                // Any vote for step ks means every rank —
                                // the victim included — already entered the
                                // step-ks exchange, and the victim's
                                // begin-of-step snapshot was sent before its
                                // first mesh send. Drain the victim's ring
                                // so the flight recorder pins the kill step
                                // before the process goes away.
                                if let Some(t) = telem {
                                    drain_victim(&slots[kr], t, kr, ks, pol);
                                }
                                sigkill(children, slots[kr].pid);
                                degrade(
                                    &mut slots,
                                    kr,
                                    &mut era,
                                    current_step,
                                    &mut degrades,
                                    me,
                                    telem,
                                    dir,
                                )?;
                                continue;
                            }
                        }
                        try_commit(&mut slots, era, &mut current_step, me, telem, dir)?;
                    }
                    FrameKind::Finished => slots[r].finished = true,
                    FrameKind::Telemetry => {
                        if let Some(t) = telem {
                            t.ingest(&f);
                        }
                    }
                    _ => {}
                },
                Err(WireError::Timeout) => {
                    // Heartbeats flow even while a worker computes, so
                    // sustained silence means a wedged process.
                    if slots[r].conn.silence() > pol.death_threshold() {
                        degrade(
                            &mut slots,
                            r,
                            &mut era,
                            current_step,
                            &mut degrades,
                            me,
                            telem,
                            dir,
                        )?;
                    }
                }
                Err(WireError::PeerGone) => {
                    degrade(&mut slots, r, &mut era, current_step, &mut degrades, me, telem, dir)?;
                }
                Err(WireError::NoSuchPeer(_)) => unreachable!("control conns are per-slot"),
            }
        }
    }

    let survivors: Vec<usize> = (0..workers).filter(|&r| !slots[r].dead).collect();
    if survivors.is_empty() {
        return Err("every worker died".into());
    }
    write_summary(dir, workers, &survivors, &degrades)
        .map_err(|e| format!("writing summary: {e}"))?;
    Ok((0..workers).filter(|&r| slots[r].dead).map(|r| slots[r].pid).collect())
}

fn sigkill(children: &mut [Child], pid: u32) {
    if let Some(c) = children.iter_mut().find(|c| c.id() == pid) {
        let _ = c.kill();
    }
}

/// Pull whatever the doomed rank already shipped out of its control
/// ring before SIGKILL lands. The victim's begin-of-step snapshot for
/// `ks` was written into our socket buffer before any step-`ks` mesh
/// traffic (see `run_worker`), so this loop terminates as soon as the
/// reader thread has moved those bytes — the deadline only guards
/// against a pathological scheduler stall.
fn drain_victim(
    slot: &WorkerSlot,
    telem: &TelemetryPlane,
    kr: usize,
    ks: usize,
    pol: &RetryPolicy,
) {
    let deadline = Instant::now() + pol.death_threshold();
    // Exit conditions head the loop: a steady stream of Ok frames
    // (beacon-cadence telemetry below step ks, votes) must not be able
    // to hold the SIGKILL past the deadline.
    loop {
        let seen = telem.last_step_of(kr as u16);
        if seen.is_some_and(|s| s as usize >= ks) || Instant::now() >= deadline {
            break;
        }
        match slot.conn.recv_timeout(pol.tick) {
            Ok(f) if f.kind == FrameKind::Telemetry => telem.ingest(&f),
            Ok(_) => {} // in-flight votes for this round get voided by the degrade anyway
            Err(WireError::PeerGone) => break, // nothing more will ever arrive
            Err(_) => {}
        }
    }
}

/// Declare `r` dead: bump the era, void the round's votes, record the
/// degrade, and announce it to every survivor.
#[allow(clippy::too_many_arguments)]
fn degrade(
    slots: &mut [WorkerSlot],
    r: usize,
    era: &mut u32,
    current_step: u32,
    degrades: &mut Vec<(u32, Vec<usize>)>,
    me: u16,
    telem: Option<&TelemetryPlane>,
    dir: &Path,
) -> Result<(), String> {
    if let Some(t) = telem {
        t.flight_dump(dir, r);
    }
    slots[r].dead = true;
    *era += 1;
    for s in slots.iter_mut() {
        s.vote = None;
    }
    degrades.push((current_step, vec![r]));
    let mut f = Frame::control(FrameKind::Degrade, me, *era, current_step);
    f.payload = r.to_string().into_bytes();
    for (other, slot) in slots.iter().enumerate() {
        if slot.dead || slot.finished || other == r {
            continue;
        }
        // A send failing here means that worker is dying too; its own
        // EOF will degrade it on a later sweep.
        let _ = slot.conn.send(&f);
    }
    Ok(())
}

/// Broadcast `Commit` once every live worker has voted this era.
fn try_commit(
    slots: &mut [WorkerSlot],
    era: u32,
    current_step: &mut u32,
    me: u16,
    telem: Option<&TelemetryPlane>,
    dir: &Path,
) -> Result<(), String> {
    let live: Vec<usize> =
        (0..slots.len()).filter(|&r| !slots[r].dead && !slots[r].finished).collect();
    if live.is_empty() || live.iter().any(|&r| slots[r].vote.is_none()) {
        return Ok(());
    }
    let step = slots[live[0]].vote.expect("checked above"); // lint: allow(unwrap): vote presence checked for every live slot above
    for &r in &live {
        if slots[r].vote != Some(step) {
            return Err(format!(
                "split vote: rank {r} at step {:?}, rank {} at step {step}",
                slots[r].vote, live[0]
            ));
        }
    }
    let f = Frame::control(FrameKind::Commit, me, era, step);
    for &r in &live {
        slots[r].conn.send(&f).map_err(|e| format!("commit broadcast to rank {r}: {e}"))?;
    }
    *current_step = step + 1;
    for s in slots.iter_mut() {
        s.vote = None;
    }
    if let Some(t) = telem {
        t.on_commit(dir);
    }
    Ok(())
}

// ------------------------------------------------------------- telemetry

/// Coordinator-side half of the telemetry plane: the shared
/// [`ClusterView`] every scrape reads, plus the step-window summary
/// cadence. Ingest happens on the coordinator thread; the HTTP thread
/// only ever takes the lock to render.
struct TelemetryPlane {
    view: Arc<Mutex<ClusterView>>,
    summary_every: u64,
    commits: std::cell::Cell<u64>,
}

impl TelemetryPlane {
    fn new(summary_every: u64) -> Self {
        TelemetryPlane {
            view: Arc::new(Mutex::new(ClusterView::new(StragglerPolicy::default()))),
            summary_every,
            commits: std::cell::Cell::new(0),
        }
    }

    /// Lock the view, riding out poison: a panicked scrape thread must
    /// not take the training run down with it.
    fn lock(&self) -> MutexGuard<'_, ClusterView> {
        self.view.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Decode and fold one wire snapshot; a straggler edge-crossing
    /// gets one log line, not one per scrape.
    fn ingest(&self, f: &Frame) {
        match decode_telemetry(&f.payload) {
            Ok(snap) => {
                if let Some(a) = self.lock().ingest(snap) {
                    eprintln!(
                        "launch: straggler: rank {} is {:.0}us late (ewma {:.0}us vs best {:.0}us) at step {}",
                        a.rank, a.lateness_us, a.ewma_us, a.best_us, a.step
                    );
                }
            }
            Err(e) => eprintln!("launch: undecodable telemetry from rank {}: {e}", f.from),
        }
    }

    fn last_step_of(&self, rank: u16) -> Option<u32> {
        self.lock().latest(rank).map(|s| s.current_step)
    }

    /// Mark `rank` dead and emit its crash flight record — the
    /// last-known spans, step, and counters that rode telemetry frames
    /// before the process vanished.
    fn flight_dump(&self, dir: &Path, rank: usize) {
        let mut view = self.lock();
        view.mark_dead(rank as u16);
        if let Some(doc) = view.flight_json(rank as u16) {
            if let Err(e) = write_atomic(dir, &format!("flight_{rank}.json"), &doc) {
                eprintln!("launch: writing flight_{rank}.json: {e}");
            }
        }
    }

    fn on_commit(&self, dir: &Path) {
        let n = self.commits.get() + 1;
        self.commits.set(n);
        if self.summary_every > 0 && n.is_multiple_of(self.summary_every) {
            self.write_summary(dir);
        }
    }

    fn write_summary(&self, dir: &Path) {
        let doc = self.lock().summary_json();
        if let Err(e) = write_atomic(dir, "cluster_summary.json", &doc) {
            eprintln!("launch: writing cluster_summary.json: {e}");
        }
    }
}

/// tmp + rename so scrapers polling the dir never see a torn file.
fn write_atomic(dir: &Path, name: &str, body: &str) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, body)?;
    std::fs::rename(tmp, dir.join(name))
}

/// Hand-rolled HTTP/1.1 scrape endpoint. One accept loop, one request
/// per connection, `Connection: close` — everything a Prometheus
/// scraper or a curl needs and nothing more.
struct MetricsServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl MetricsServer {
    fn shutdown(self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.handle.join();
    }
}

fn serve_metrics(
    addr: &str,
    dir: &Path,
    view: Arc<Mutex<ClusterView>>,
) -> Result<MetricsServer, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    // Publish the bound address — port 0 resolves here, and tests/CI
    // read this file instead of guessing.
    write_atomic(dir, "metrics_addr.txt", &bound.to_string())
        .map_err(|e| format!("writing metrics_addr.txt: {e}"))?;
    println!("launch: serving metrics on http://{bound}/metrics");
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("metrics-http".into())
        .spawn(move || scrape_loop(listener, view, thread_stop))
        .map_err(|e| format!("spawning scrape thread: {e}"))?;
    Ok(MetricsServer { addr: bound, stop, handle })
}

fn scrape_loop(listener: TcpListener, view: Arc<Mutex<ClusterView>>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = serve_one(&mut stream, &view);
    }
}

fn serve_one(stream: &mut TcpStream, view: &Arc<Mutex<ClusterView>>) -> std::io::Result<()> {
    // A stuck client must not wedge the accept loop.
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // A request can arrive split across TCP segments; keep reading
    // until the request line is complete (bounded by the read timeout
    // and a size cap) so a slow-trickling scraper isn't 404'd on a
    // truncated path.
    let mut head: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    while !head.windows(2).any(|w| w == b"\r\n") && head.len() < 8192 {
        match stream.read(&mut chunk)? {
            0 => break,
            n => head.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let line = head.split("\r\n").next().unwrap_or("");
    let path = line.split_whitespace().nth(1).unwrap_or("/");
    let locked = view.lock().unwrap_or_else(|e| e.into_inner());
    let (status, ctype, body) = match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", locked.to_prometheus_text()),
        "/metrics.json" | "/json" => ("200 OK", "application/json", locked.to_json()),
        _ => ("404 Not Found", "text/plain", "not found; try /metrics or /metrics.json\n".into()),
    };
    drop(locked);
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())
}

/// Fold every worker's per-process Chrome trace into one timeline.
/// Each worker recorded under pid = its rank, so the merged file
/// renders one row group per worker. A killed rank has no file and a
/// rank that died mid-write leaves a truncated one; both get a
/// zero-width `trace_gap` marker in their lane instead of sinking the
/// whole merge.
fn merge_traces(dir: &Path, workers: usize) -> std::io::Result<usize> {
    let mut events = Vec::new();
    let mut lanes = 0usize;
    for r in 0..workers {
        let path = dir.join(format!("trace_r{r}.json"));
        let json = match std::fs::read_to_string(&path) {
            Ok(j) => j,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                events.push(gap_event("trace_gap: no trace file (rank killed?)", r));
                continue;
            }
            Err(e) => return Err(e),
        };
        match parse_trace(&json) {
            Ok(parsed) => {
                events.extend(parsed);
                lanes += 1;
            }
            Err(e) => {
                eprintln!("launch: trace for rank {r} unreadable ({e}); noting the gap");
                events.push(gap_event(&format!("trace_gap: unreadable ({e})"), r));
            }
        }
    }
    std::fs::write(dir.join("trace_merged.json"), write_trace(&events))?;
    Ok(lanes)
}

fn gap_event(name: &str, rank: usize) -> ChromeEvent {
    ChromeEvent::complete(name, "FAULT", 0.0, 0.0, rank as u32, 0)
}

fn write_summary(
    dir: &Path,
    workers: usize,
    survivors: &[usize],
    degrades: &[(u32, Vec<usize>)],
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!(
        "  \"survivors\": [{}],\n",
        survivors.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    ));
    out.push_str("  \"degrades\": [");
    let items: Vec<String> = degrades
        .iter()
        .map(|(step, dead)| {
            format!(
                "{{\"step\": {step}, \"dead\": [{}]}}",
                dead.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
            )
        })
        .collect();
    out.push_str(&items.join(", "));
    out.push_str("]\n}\n");
    let tmp = dir.join("summary.json.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(tmp, dir.join("summary.json"))
}

// ---------------------------------------------------------------- worker

/// Adapter hanging the worker's [`WorkerTelemetry`] off the control
/// conn's heartbeat thread: every beacon interval becomes a fresh
/// snapshot frame instead of an empty beacon.
struct TelemetryFeed(Arc<WorkerTelemetry>);

impl TelemetrySource for TelemetryFeed {
    fn fill(&self, out: &mut Vec<u8>) -> bool {
        self.0.encode_into(out);
        true
    }
}

fn worker(args: &[String]) -> i32 {
    match worker_inner(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("worker: {e}");
            1
        }
    }
}

fn worker_inner(args: &[String]) -> Result<(), String> {
    let dir = arg(args, "--dir").map(PathBuf::from).ok_or("--dir is required")?;
    let tag = arg(args, "--tag").ok_or("--tag is required")?;
    let workers: usize = arg_or(args, "--workers", 4);
    let steps: usize = arg_or(args, "--steps", 8);
    let seed: u64 = arg_or(args, "--seed", 42);
    let preset_name = arg(args, "--preset").unwrap_or_else(|| "tiny".into());
    let pol = policy(args);
    let clock = FaultClock::real();

    let joined = join(&dir, &tag, &pol, &clock).map_err(|e| format!("rendezvous join: {e}"))?;
    let rank = joined.rank;
    let (mesh, ctl_stream) =
        joined.build_mesh(pol, &clock).map_err(|e| format!("mesh build: {e}"))?;
    // Telemetry rides the control conn only — data wires stay
    // byte-identical with or without the plane.
    let tel: Option<Arc<WorkerTelemetry>> = args
        .iter()
        .any(|a| a == "--telemetry")
        .then(|| Arc::new(WorkerTelemetry::new(rank as u16)));
    let ctl = match &tel {
        Some(t) => PeerConn::solo_with_telemetry(
            workers,
            rank,
            ctl_stream,
            pol,
            Arc::new(TelemetryFeed(Arc::clone(t))),
        ),
        None => PeerConn::solo(workers, rank, ctl_stream, Some(pol)),
    }
    .map_err(|e| format!("control conn: {e}"))?;

    ctl.send(&Frame::control(FrameKind::Ready, rank as u16, 0, 0))
        .map_err(|e| format!("ready: {e}"))?;
    loop {
        match ctl.recv_timeout(pol.death_threshold()) {
            Ok(f) if f.kind == FrameKind::Start => break,
            Ok(_) => {}
            Err(e) => return Err(format!("waiting for start: {e}")),
        }
    }

    let mut cfg = preset(&preset_name, workers, steps, seed);
    let session = if args.iter().any(|a| a == "--trace") {
        Some(std::sync::Arc::new(TraceSession::new()))
    } else {
        None
    };
    cfg.trace = session.clone();
    let outcome = run_worker(&cfg, &mesh, &ctl, pol, tel.as_deref()).map_err(|e| e.to_string())?;
    write_results(&dir, &outcome).map_err(|e| format!("writing results: {e}"))?;
    if let Some(s) = &session {
        std::fs::write(dir.join(format!("trace_r{rank}.json")), s.recorder.to_chrome_json())
            .map_err(|e| format!("writing trace: {e}"))?;
    }
    ctl.send(&Frame::control(FrameKind::Finished, rank as u16, 0, steps as u32))
        .map_err(|e| format!("finished: {e}"))?;
    Ok(())
}

fn write_results(dir: &Path, out: &WorkerOutcome) -> std::io::Result<()> {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"rank\": {},\n", out.rank));
    json.push_str(&format!(
        "  \"survivors\": [{}],\n",
        out.survivors.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"degrades\": [");
    let items: Vec<String> = out
        .degradations
        .iter()
        .map(|d| {
            format!(
                "{{\"step\": {}, \"dead\": [{}], \"era\": {}}}",
                d.step,
                d.dead.iter().map(ToString::to_string).collect::<Vec<_>>().join(", "),
                d.era
            )
        })
        .collect();
    json.push_str(&items.join(", "));
    json.push_str("],\n");
    json.push_str(&format!(
        "  \"losses\": [{}]\n",
        out.step_losses.iter().map(|l| format!("{l:.17e}")).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("}\n");
    std::fs::write(dir.join(format!("result_r{}.json", out.rank)), json)?;

    let mut bytes = Vec::with_capacity(out.final_params.len() * 4);
    for &p in &out.final_params {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    let mut f = std::fs::File::create(dir.join(format!("params_r{}.bin", out.rank)))?;
    f.write_all(&bytes)
}
