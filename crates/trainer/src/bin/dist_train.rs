//! Multi-process data-parallel training over Unix-domain sockets.
//!
//! Two personalities in one binary:
//!
//! * `dist_train launch --dir D --workers N ...` — binds the
//!   rendezvous socket, spawns N copies of itself as `worker`
//!   subprocesses, assigns ranks, runs the Ready→Start barrier, and
//!   then arbitrates the commit protocol (see
//!   `trainer::real::worker`): collect `StepDone` votes, broadcast
//!   `Commit`, and on a worker death broadcast `Degrade` with a bumped
//!   era. With `--kill-rank R --kill-step S` it SIGKILLs rank R's
//!   process when the first vote for step S arrives — the chaos hook
//!   the kill-a-worker suite drives.
//! * `dist_train worker --dir D --tag T ...` — joins the rendezvous,
//!   builds the socket mesh, trains its rank, writes
//!   `result_r<rank>.json` + `params_r<rank>.bin` into the dir, and
//!   reports `Finished`.
//!
//! Every file this binary writes lands inside `--dir`; the launcher
//! writes a final `summary.json` naming the dead and the degrade
//! steps so tests can replay the exact fault threaded.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use faults::{FaultClock, RetryPolicy};
use trace::chrome::{parse_trace, write_trace};
use trace::TraceSession;
use trainer::real::worker::{preset, run_worker, WorkerOutcome};
use transport::{join, Frame, FrameKind, PeerConn, Rendezvous, WireError};

/// The coordinator's pseudo-rank in frame `from` fields (workers are
/// `0..N`, so `N` can never collide — but any value would do; nothing
/// routes on it).
fn coord_id(workers: usize) -> u16 {
    workers as u16
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let code = match mode {
        Some("launch") => launch(&args[1..]),
        Some("worker") => worker(&args[1..]),
        _ => {
            eprintln!(
                "usage: dist_train launch --dir D [--workers N] [--steps S] [--seed X] \
                 [--preset tiny|quick] [--kill-rank R --kill-step S]\n\
                 \x20      dist_train worker --dir D --tag T --workers N --steps S --seed X --preset P"
            );
            2
        }
    };
    std::process::exit(code);
}

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_or<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    arg(args, key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Commit-protocol pacing. `base` also derives the heartbeat interval
/// and the death threshold (see `RetryPolicy`), so one knob scales the
/// whole failure-detection stack.
fn policy(args: &[String]) -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(arg_or(args, "--base-ms", 25)),
        factor: 2,
        max_attempts: 6,
        tick: Duration::from_millis(2),
    }
}

// ---------------------------------------------------------------- launch

struct WorkerSlot {
    conn: PeerConn,
    pid: u32,
    dead: bool,
    finished: bool,
    vote: Option<u32>,
}

fn launch(args: &[String]) -> i32 {
    let Some(dir) = arg(args, "--dir").map(PathBuf::from) else {
        eprintln!("launch: --dir is required");
        return 2;
    };
    let workers: usize = arg_or(args, "--workers", 4);
    let steps: usize = arg_or(args, "--steps", 8);
    let seed: u64 = arg_or(args, "--seed", 42);
    let preset_name = arg(args, "--preset").unwrap_or_else(|| "tiny".into());
    let traced = args.iter().any(|a| a == "--trace");
    let kill: Option<(usize, usize)> = match (arg(args, "--kill-rank"), arg(args, "--kill-step")) {
        (Some(r), Some(s)) => match (r.parse(), s.parse()) {
            (Ok(r), Ok(s)) => Some((r, s)),
            _ => {
                eprintln!("launch: --kill-rank/--kill-step must be integers");
                return 2;
            }
        },
        (None, None) => None,
        _ => {
            eprintln!("launch: --kill-rank and --kill-step go together");
            return 2;
        }
    };
    if let Some((r, s)) = kill {
        if r >= workers || s >= steps {
            eprintln!("launch: kill target rank {r} step {s} outside the run");
            return 2;
        }
    }
    let pol = policy(args);

    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("launch: cannot create {}: {e}", dir.display());
        return 1;
    }
    let rdzv = match Rendezvous::bind(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("launch: cannot bind rendezvous socket: {e}");
            return 1;
        }
    };

    // Spawn the workers as copies of this binary.
    let exe = std::env::current_exe().expect("own executable path"); // lint: allow(unwrap): no portable fallback exists for self-spawning
    let mut children: Vec<Child> = Vec::with_capacity(workers);
    for i in 0..workers {
        let mut cmd = Command::new(&exe);
        cmd.arg("worker")
            .args(["--dir", &dir.to_string_lossy()])
            .args(["--tag", &i.to_string()])
            .args(["--workers", &workers.to_string()])
            .args(["--steps", &steps.to_string()])
            .args(["--seed", &seed.to_string()])
            .args(["--preset", &preset_name])
            .args(["--base-ms", &pol.base.as_millis().to_string()])
            .stdin(Stdio::null());
        if traced {
            cmd.arg("--trace");
        }
        let child = cmd.spawn();
        match child {
            Ok(c) => children.push(c),
            Err(e) => {
                eprintln!("launch: spawning worker {i} failed: {e}");
                for mut c in children {
                    let _ = c.kill();
                }
                return 1;
            }
        }
    }

    let result = coordinate(&rdzv, &dir, workers, kill, &pol, &mut children);

    if traced && result.is_ok() {
        match merge_traces(&dir, workers) {
            Ok(n) => println!("launch: merged {n} worker trace lanes into trace_merged.json"),
            Err(e) => eprintln!("launch: trace merge failed: {e}"),
        }
    }

    // Reap everything; a SIGKILLed child's status is expected to be
    // signal-terminated, anyone else must have exited cleanly.
    let mut exit = match &result {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("launch: {e}");
            for c in children.iter_mut() {
                let _ = c.kill();
            }
            1
        }
    };
    let dead_pids = result.unwrap_or_default();
    for (i, c) in children.iter_mut().enumerate() {
        let was_killed = dead_pids.contains(&c.id());
        match c.wait() {
            Ok(status) if !status.success() => {
                if !was_killed && exit == 0 {
                    eprintln!("launch: worker process {i} exited with {status}");
                    exit = 1;
                }
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("launch: waiting on worker {i}: {e}");
                exit = 1;
            }
        }
    }
    exit
}

/// Rendezvous, barrier, and the commit/degrade event loop. Returns the
/// pids of the ranks that died (their signal exits are expected when
/// reaping). `children[i]` is the worker spawned with tag `i`; ranks
/// are assigned by arrival, so kill targets resolve through the hello
/// pids.
fn coordinate(
    rdzv: &Rendezvous,
    dir: &Path,
    workers: usize,
    kill: Option<(usize, usize)>,
    pol: &RetryPolicy,
    children: &mut [Child],
) -> Result<Vec<u32>, String> {
    let me = coord_id(workers);
    let joined = rdzv.assemble(workers).map_err(|e| format!("rendezvous failed: {e}"))?;
    let mut slots: Vec<WorkerSlot> = Vec::with_capacity(workers);
    for (rank, (hello, stream)) in joined.into_iter().enumerate() {
        let conn = PeerConn::solo(rank, me as usize, stream, Some(*pol))
            .map_err(|e| format!("control conn for rank {rank}: {e}"))?;
        if !children.iter().any(|c| c.id() == hello.pid) {
            return Err(format!("rank {rank} announced unknown pid {}", hello.pid));
        }
        slots.push(WorkerSlot { conn, pid: hello.pid, dead: false, finished: false, vote: None });
    }

    // Ready → Start barrier: every worker has a full mesh before any
    // schedule traffic flows.
    for (rank, slot) in slots.iter().enumerate() {
        match slot.conn.recv_timeout(pol.death_threshold()) {
            Ok(f) if f.kind == FrameKind::Ready => {}
            Ok(f) => return Err(format!("rank {rank} sent {:?} before Ready", f.kind)),
            Err(e) => return Err(format!("rank {rank} never became ready: {e}")),
        }
    }
    for slot in slots.iter() {
        slot.conn
            .send(&Frame::control(FrameKind::Start, me, 0, 0))
            .map_err(|e| format!("start broadcast: {e}"))?;
    }

    let mut era: u32 = 0;
    let mut current_step: u32 = 0;
    let mut killed = false;
    let mut degrades: Vec<(u32, Vec<usize>)> = Vec::new();

    let all_done = |slots: &[WorkerSlot]| slots.iter().all(|s| s.finished || s.dead);
    while !all_done(&slots) {
        for r in 0..workers {
            if slots[r].dead || slots[r].finished {
                continue;
            }
            match slots[r].conn.recv_timeout(pol.tick) {
                Ok(f) => match f.kind {
                    FrameKind::StepDone => {
                        if f.era != era {
                            continue; // stale vote from before a degrade
                        }
                        slots[r].vote = Some(f.step);
                        // Chaos hook: the first current-era vote for the
                        // kill step pulls the trigger — the target may be
                        // computing, mid-exchange, or already voted.
                        if let Some((kr, ks)) = kill {
                            if !killed && f.step as usize == ks && !slots[kr].dead {
                                killed = true;
                                sigkill(children, slots[kr].pid);
                                degrade(&mut slots, kr, &mut era, current_step, &mut degrades, me)?;
                                continue;
                            }
                        }
                        try_commit(&mut slots, era, &mut current_step, me)?;
                    }
                    FrameKind::Finished => slots[r].finished = true,
                    _ => {}
                },
                Err(WireError::Timeout) => {
                    // Heartbeats flow even while a worker computes, so
                    // sustained silence means a wedged process.
                    if slots[r].conn.silence() > pol.death_threshold() {
                        degrade(&mut slots, r, &mut era, current_step, &mut degrades, me)?;
                    }
                }
                Err(WireError::PeerGone) => {
                    degrade(&mut slots, r, &mut era, current_step, &mut degrades, me)?;
                }
                Err(WireError::NoSuchPeer(_)) => unreachable!("control conns are per-slot"),
            }
        }
    }

    let survivors: Vec<usize> = (0..workers).filter(|&r| !slots[r].dead).collect();
    if survivors.is_empty() {
        return Err("every worker died".into());
    }
    write_summary(dir, workers, &survivors, &degrades)
        .map_err(|e| format!("writing summary: {e}"))?;
    Ok((0..workers).filter(|&r| slots[r].dead).map(|r| slots[r].pid).collect())
}

fn sigkill(children: &mut [Child], pid: u32) {
    if let Some(c) = children.iter_mut().find(|c| c.id() == pid) {
        let _ = c.kill();
    }
}

/// Declare `r` dead: bump the era, void the round's votes, record the
/// degrade, and announce it to every survivor.
fn degrade(
    slots: &mut [WorkerSlot],
    r: usize,
    era: &mut u32,
    current_step: u32,
    degrades: &mut Vec<(u32, Vec<usize>)>,
    me: u16,
) -> Result<(), String> {
    slots[r].dead = true;
    *era += 1;
    for s in slots.iter_mut() {
        s.vote = None;
    }
    degrades.push((current_step, vec![r]));
    let mut f = Frame::control(FrameKind::Degrade, me, *era, current_step);
    f.payload = r.to_string().into_bytes();
    for (other, slot) in slots.iter().enumerate() {
        if slot.dead || slot.finished || other == r {
            continue;
        }
        // A send failing here means that worker is dying too; its own
        // EOF will degrade it on a later sweep.
        let _ = slot.conn.send(&f);
    }
    Ok(())
}

/// Broadcast `Commit` once every live worker has voted this era.
fn try_commit(
    slots: &mut [WorkerSlot],
    era: u32,
    current_step: &mut u32,
    me: u16,
) -> Result<(), String> {
    let live: Vec<usize> =
        (0..slots.len()).filter(|&r| !slots[r].dead && !slots[r].finished).collect();
    if live.is_empty() || live.iter().any(|&r| slots[r].vote.is_none()) {
        return Ok(());
    }
    let step = slots[live[0]].vote.expect("checked above"); // lint: allow(unwrap): vote presence checked for every live slot above
    for &r in &live {
        if slots[r].vote != Some(step) {
            return Err(format!(
                "split vote: rank {r} at step {:?}, rank {} at step {step}",
                slots[r].vote, live[0]
            ));
        }
    }
    let f = Frame::control(FrameKind::Commit, me, era, step);
    for &r in &live {
        slots[r].conn.send(&f).map_err(|e| format!("commit broadcast to rank {r}: {e}"))?;
    }
    *current_step = step + 1;
    for s in slots.iter_mut() {
        s.vote = None;
    }
    Ok(())
}

/// Fold every worker's per-process Chrome trace into one timeline.
/// Each worker recorded under pid = its rank, so the merged file
/// renders one row group per worker; a killed rank simply has no file.
fn merge_traces(dir: &Path, workers: usize) -> std::io::Result<usize> {
    let mut events = Vec::new();
    let mut lanes = 0usize;
    for r in 0..workers {
        let path = dir.join(format!("trace_r{r}.json"));
        let json = match std::fs::read_to_string(&path) {
            Ok(j) => j,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let parsed = parse_trace(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        events.extend(parsed);
        lanes += 1;
    }
    std::fs::write(dir.join("trace_merged.json"), write_trace(&events))?;
    Ok(lanes)
}

fn write_summary(
    dir: &Path,
    workers: usize,
    survivors: &[usize],
    degrades: &[(u32, Vec<usize>)],
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!(
        "  \"survivors\": [{}],\n",
        survivors.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    ));
    out.push_str("  \"degrades\": [");
    let items: Vec<String> = degrades
        .iter()
        .map(|(step, dead)| {
            format!(
                "{{\"step\": {step}, \"dead\": [{}]}}",
                dead.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
            )
        })
        .collect();
    out.push_str(&items.join(", "));
    out.push_str("]\n}\n");
    let tmp = dir.join("summary.json.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(tmp, dir.join("summary.json"))
}

// ---------------------------------------------------------------- worker

fn worker(args: &[String]) -> i32 {
    match worker_inner(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("worker: {e}");
            1
        }
    }
}

fn worker_inner(args: &[String]) -> Result<(), String> {
    let dir = arg(args, "--dir").map(PathBuf::from).ok_or("--dir is required")?;
    let tag = arg(args, "--tag").ok_or("--tag is required")?;
    let workers: usize = arg_or(args, "--workers", 4);
    let steps: usize = arg_or(args, "--steps", 8);
    let seed: u64 = arg_or(args, "--seed", 42);
    let preset_name = arg(args, "--preset").unwrap_or_else(|| "tiny".into());
    let pol = policy(args);
    let clock = FaultClock::real();

    let joined = join(&dir, &tag, &pol, &clock).map_err(|e| format!("rendezvous join: {e}"))?;
    let rank = joined.rank;
    let (mesh, ctl_stream) =
        joined.build_mesh(pol, &clock).map_err(|e| format!("mesh build: {e}"))?;
    let ctl = PeerConn::solo(workers, rank, ctl_stream, Some(pol))
        .map_err(|e| format!("control conn: {e}"))?;

    ctl.send(&Frame::control(FrameKind::Ready, rank as u16, 0, 0))
        .map_err(|e| format!("ready: {e}"))?;
    loop {
        match ctl.recv_timeout(pol.death_threshold()) {
            Ok(f) if f.kind == FrameKind::Start => break,
            Ok(_) => {}
            Err(e) => return Err(format!("waiting for start: {e}")),
        }
    }

    let mut cfg = preset(&preset_name, workers, steps, seed);
    let session = if args.iter().any(|a| a == "--trace") {
        Some(std::sync::Arc::new(TraceSession::new()))
    } else {
        None
    };
    cfg.trace = session.clone();
    let outcome = run_worker(&cfg, &mesh, &ctl, pol).map_err(|e| e.to_string())?;
    write_results(&dir, &outcome).map_err(|e| format!("writing results: {e}"))?;
    if let Some(s) = &session {
        std::fs::write(dir.join(format!("trace_r{rank}.json")), s.recorder.to_chrome_json())
            .map_err(|e| format!("writing trace: {e}"))?;
    }
    ctl.send(&Frame::control(FrameKind::Finished, rank as u16, 0, steps as u32))
        .map_err(|e| format!("finished: {e}"))?;
    Ok(())
}

fn write_results(dir: &Path, out: &WorkerOutcome) -> std::io::Result<()> {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"rank\": {},\n", out.rank));
    json.push_str(&format!(
        "  \"survivors\": [{}],\n",
        out.survivors.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"degrades\": [");
    let items: Vec<String> = out
        .degradations
        .iter()
        .map(|d| {
            format!(
                "{{\"step\": {}, \"dead\": [{}], \"era\": {}}}",
                d.step,
                d.dead.iter().map(ToString::to_string).collect::<Vec<_>>().join(", "),
                d.era
            )
        })
        .collect();
    json.push_str(&items.join(", "));
    json.push_str("],\n");
    json.push_str(&format!(
        "  \"losses\": [{}]\n",
        out.step_losses.iter().map(|l| format!("{l:.17e}")).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("}\n");
    std::fs::write(dir.join(format!("result_r{}.json", out.rank)), json)?;

    let mut bytes = Vec::with_capacity(out.final_params.len() * 4);
    for &p in &out.final_params {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    let mut f = std::fs::File::create(dir.join(format!("params_r{}.bin", out.rank)))?;
    f.write_all(&bytes)
}
