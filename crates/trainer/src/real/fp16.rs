//! fp16 gradient compression — thin shim over [`simd::fp16`].
//!
//! The IEEE binary16 conversion and the fused F16C slice kernels moved
//! to `crates/simd` so the `collectives` compression codecs can share
//! the exact same bits; this module re-exports them unchanged and keeps
//! only the rayon-parallel whole-gradient sweep (the `simd` crate is
//! dependency-free by design).

use rayon::prelude::*;

pub use simd::fp16::{
    combine_sum_roundtrip, f16_bits_to_f32, f32_to_f16_bits, pack_slice, roundtrip,
    roundtrip_slice, scale_roundtrip, unpack_slice,
};

/// Chunk width of the parallel compression path.
const PAR_CHUNK: usize = 1 << 13;

/// Round-trip a gradient buffer in place (rayon above 16 Ki elements).
// lint: hot-path
// lint: no-f64
pub fn compress_gradients(xs: &mut [f32]) {
    if xs.len() >= 1 << 14 {
        xs.par_chunks_mut(PAR_CHUNK).for_each(roundtrip_slice);
    } else {
        roundtrip_slice(xs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_slice_large_and_small() {
        let mut small: Vec<f32> = (0..100).map(|i| i as f32 * 0.123).collect();
        let expect: Vec<f32> = small.iter().map(|&x| roundtrip(x)).collect();
        compress_gradients(&mut small);
        assert_eq!(small, expect);
        let mut big: Vec<f32> = (0..1 << 15).map(|i| (i as f32).sin()).collect();
        let expect_big: Vec<f32> = big.iter().map(|&x| roundtrip(x)).collect();
        compress_gradients(&mut big);
        assert_eq!(big, expect_big);
    }
}
