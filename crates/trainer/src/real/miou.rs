//! Mean intersection-over-union — the paper's accuracy metric
//! ("We achieved a mIOU accuracy of 80.8%").

/// A `k × k` confusion matrix accumulated over predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct Confusion {
    k: usize,
    /// `counts[truth * k + pred]`.
    counts: Vec<u64>,
}

impl Confusion {
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes >= 1);
        Confusion { k: n_classes, counts: vec![0; n_classes * n_classes] }
    }

    pub fn n_classes(&self) -> usize {
        self.k
    }

    /// Accumulate one prediction/label pair-map.
    pub fn add(&mut self, truth: &[u8], pred: &[u8]) {
        assert_eq!(truth.len(), pred.len(), "label/prediction length");
        for (&t, &p) in truth.iter().zip(pred) {
            let (t, p) = (t as usize, p as usize);
            assert!(t < self.k && p < self.k, "class out of range");
            self.counts[t * self.k + p] += 1;
        }
    }

    /// Merge another confusion matrix (for parallel evaluation).
    pub fn merge(&mut self, other: &Confusion) {
        assert_eq!(self.k, other.k);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
    }

    /// IoU per class: `tp / (tp + fp + fn)`. Classes never seen (neither
    /// in truth nor prediction) yield `None`.
    pub fn iou_per_class(&self) -> Vec<Option<f64>> {
        (0..self.k)
            .map(|c| {
                let tp = self.counts[c * self.k + c];
                let fp: u64 =
                    (0..self.k).filter(|&t| t != c).map(|t| self.counts[t * self.k + c]).sum();
                let fn_: u64 =
                    (0..self.k).filter(|&p| p != c).map(|p| self.counts[c * self.k + p]).sum();
                let denom = tp + fp + fn_;
                if denom == 0 {
                    None
                } else {
                    Some(tp as f64 / denom as f64)
                }
            })
            .collect()
    }

    /// Mean IoU over classes that appear.
    pub fn miou(&self) -> f64 {
        let ious: Vec<f64> = self.iou_per_class().into_iter().flatten().collect();
        if ious.is_empty() {
            0.0
        } else {
            ious.iter().sum::<f64>() / ious.len() as f64
        }
    }

    /// Per-pixel accuracy.
    pub fn pixel_accuracy(&self) -> f64 {
        let correct: u64 = (0..self.k).map(|c| self.counts[c * self.k + c]).sum();
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_miou_one() {
        let mut c = Confusion::new(3);
        c.add(&[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(c.miou(), 1.0);
        assert_eq!(c.pixel_accuracy(), 1.0);
    }

    #[test]
    fn known_half_overlap() {
        // Truth: [0,0,1,1]; pred: [0,1,1,0].
        // Class 0: tp=1, fp=1, fn=1 -> 1/3. Class 1: same -> 1/3.
        let mut c = Confusion::new(2);
        c.add(&[0, 0, 1, 1], &[0, 1, 1, 0]);
        let ious = c.iou_per_class();
        assert!((ious[0].unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((ious[1].unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.miou() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.pixel_accuracy(), 0.5);
    }

    #[test]
    fn absent_class_is_excluded_from_mean() {
        let mut c = Confusion::new(3);
        c.add(&[0, 0], &[0, 0]); // classes 1, 2 never appear
        assert_eq!(c.iou_per_class()[1], None);
        assert_eq!(c.miou(), 1.0);
    }

    #[test]
    fn merge_equals_combined_add() {
        let mut a = Confusion::new(2);
        a.add(&[0, 1], &[0, 0]);
        let mut b = Confusion::new(2);
        b.add(&[1, 1], &[1, 0]);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = Confusion::new(2);
        direct.add(&[0, 1, 1, 1], &[0, 0, 1, 0]);
        assert_eq!(merged, direct);
    }

    #[test]
    fn empty_matrix_is_zero() {
        let c = Confusion::new(4);
        assert_eq!(c.miou(), 0.0);
        assert_eq!(c.pixel_accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn out_of_range_class_panics() {
        Confusion::new(2).add(&[5], &[0]);
    }

    #[test]
    fn miou_punishes_majority_class_bias() {
        // Predicting everything as background: accuracy high, mIoU low.
        let mut c = Confusion::new(2);
        let truth: Vec<u8> = (0..100).map(|i| u8::from(i >= 90)).collect();
        let pred = vec![0u8; 100];
        c.add(&truth, &pred);
        assert!(c.pixel_accuracy() >= 0.9);
        assert!(c.miou() < 0.5);
    }
}
