//! Data-parallel training with *real* gradients over *real* allreduce.
//!
//! Each worker thread owns a model replica and an optimizer; every step
//! the workers compute gradients on disjoint shards of the global batch,
//! average them with a genuine multi-threaded allreduce (the same
//! algorithm schedules the simulator times — see
//! [`collectives::exec_thread`]), and apply identical updates. This is
//! the accuracy half of the reproduction: claim C6's substance is that
//! synchronous gradient averaging matches serial training's mIoU.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use collectives::compression::{self, CodecKind, EncodeScratch, ErrorFeedback};
use collectives::{
    Algorithm, ElasticAllreduce, ElasticError, ExecTrace, FaultSession, ReduceOp, Violation,
};
use faults::{FaultEvent, FaultPlan, RetryPolicy};
use rayon::prelude::*;
use summit_metrics::rng::derive_seed;
use summit_metrics::{FaultCounterSnapshot, FaultCounters};
use trace::{Lane, TraceSession};

use super::checkpoint::{Checkpoint, CheckpointError};
use super::miou::Confusion;
use super::net::{BatchWorkspace, NetConfig, SegNet};
use super::segdata::{generate, generate_batch, DataConfig};
use super::sgd::{LrSchedule, MomentumSgd};

/// Fault-injection knobs for a chaos run. Absent (`TrainConfig::faults
/// = None`) the trainer goes through the plain zero-overhead executor.
#[derive(Debug, Clone)]
pub struct FaultToleranceConfig {
    /// The seeded, replayable injection plan.
    pub plan: FaultPlan,
    /// Receive deadlines / backoff / death threshold.
    pub policy: RetryPolicy,
    /// Injected straggler delays really sleep (wall-clock chaos) rather
    /// than being accounted on the virtual clock.
    pub real_delays: bool,
}

impl FaultToleranceConfig {
    pub fn with_plan(plan: FaultPlan) -> Self {
        FaultToleranceConfig { plan, policy: RetryPolicy::default(), real_delays: false }
    }
}

/// Checkpoint/restart knobs.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Where the checkpoint file lives (written atomically).
    pub path: PathBuf,
    /// Save after every `every` steps; 0 disables saving.
    pub every: usize,
    /// If `path` exists at startup, resume from it instead of step 0.
    pub resume: bool,
    /// Simulate a crash: stop the run right after this step completes
    /// (checkpoint saves for the step happen first, so a matching
    /// `every` makes the stop recoverable). The LR schedule still spans
    /// the full configured `steps`, exactly as a really-interrupted run.
    pub halt_after: Option<usize>,
}

/// Why a training run failed (as a value — the trainer no longer
/// panics on infrastructure faults).
#[derive(Debug)]
pub enum TrainError {
    /// The gradient allreduce schedule failed static verification.
    Verification(Vec<Violation>),
    /// The collective layer gave up (all ranks dead, rebuilt schedule
    /// rejected, or a non-recoverable executor error).
    Elastic(ElasticError),
    /// Checkpoint I/O or integrity failure.
    Checkpoint(CheckpointError),
    /// A checkpoint loaded fine but does not fit this config.
    CheckpointMismatch(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Verification(v) => {
                write!(f, "gradient allreduce schedule failed verification: {v:?}")
            }
            TrainError::Elastic(e) => write!(f, "collective layer failed: {e}"),
            TrainError::Checkpoint(e) => write!(f, "{e}"),
            TrainError::CheckpointMismatch(why) => write!(f, "checkpoint mismatch: {why}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Full training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub data: DataConfig,
    pub net: NetConfig,
    /// Data-parallel worker (replica) count.
    pub workers: usize,
    pub batch_per_worker: usize,
    pub steps: usize,
    pub base_lr: f32,
    /// LR linear-scaling factor (global batch / reference batch).
    pub lr_scale: f32,
    pub warmup_steps: usize,
    pub momentum: f32,
    /// Classic L2 weight decay (DeepLab uses 4e-5; 0 disables).
    pub weight_decay: f32,
    /// Micro-batches accumulated locally before each allreduce+update
    /// (1 = standard synchronous SGD).
    pub accumulation_steps: usize,
    /// Allreduce algorithm for gradient averaging.
    pub algo: Algorithm,
    /// Run steps on the layer-pipelined work-stealing executor: per-layer
    /// gradient tiles are reduced across replicas as soon as the last
    /// backward task for that layer finishes, overlapping communication
    /// with the remaining backprop (Horovod's tensor-ready overlap).
    /// Mutually exclusive with `faults` — chaos runs need the elastic
    /// bulk-synchronous path.
    pub pipeline: bool,
    /// Round-trip gradients through fp16 before averaging (Horovod's
    /// `HOROVOD_COMPRESSION=fp16`), to measure the accuracy cost.
    /// Legacy alias for `codec = CodecKind::Fp16` — see
    /// [`TrainConfig::effective_codec`].
    pub fp16_gradients: bool,
    /// Wire codec applied to each worker's local-mean gradient before
    /// averaging (`None` ⇒ full fp32). Lossier codecs (`Int4`, `TopK`)
    /// should be paired with `error_feedback`.
    pub codec: CodecKind,
    /// Keep a persistent per-worker fp32 residual of what the codec
    /// dropped and re-inject it next step (error feedback) — the
    /// mechanism that lets int4/top-k training converge to the fp32
    /// baseline.
    pub error_feedback: bool,
    /// Apply random flip augmentation to training samples.
    pub augment: bool,
    /// Evaluate every this many steps (0 = only at the end).
    pub eval_every: usize,
    pub eval_samples: usize,
    pub seed: u64,
    /// Fault-injection session for chaos runs (`None` ⇒ the plain
    /// zero-overhead executor path, byte-for-byte the old behavior).
    pub faults: Option<FaultToleranceConfig>,
    /// Checkpoint/restart (`None` ⇒ never saved, never resumed).
    pub checkpoint: Option<CheckpointConfig>,
    /// Observability session (`None` ⇒ nothing is recorded anywhere).
    /// Shared by `Arc`: the caller keeps the same recorder/registry the
    /// workers write, and reads traces/metrics out after (or during)
    /// the run. Recording is allocation-free in the steady state — the
    /// counting-allocator proof in `tests/zero_alloc.rs` covers the
    /// recorder enabled.
    pub trace: Option<Arc<TraceSession>>,
}

impl TrainConfig {
    /// A small-but-real default: enough to reach high mIoU in seconds.
    pub fn quick(workers: usize) -> Self {
        let data = DataConfig::default();
        let net = NetConfig {
            height: data.height,
            width: data.width,
            cin: data.channels,
            n_classes: data.n_classes,
            ..NetConfig::default()
        };
        TrainConfig {
            data,
            net,
            workers,
            batch_per_worker: 4,
            steps: 120,
            base_lr: 0.4,
            lr_scale: 1.0,
            warmup_steps: 10,
            momentum: 0.9,
            weight_decay: 0.0,
            accumulation_steps: 1,
            algo: Algorithm::Ring,
            pipeline: false,
            fp16_gradients: false,
            codec: CodecKind::None,
            error_feedback: false,
            augment: false,
            eval_every: 0,
            eval_samples: 32,
            seed: 42,
            faults: None,
            checkpoint: None,
            trace: None,
        }
    }

    /// Examples consumed per optimizer update.
    pub fn global_batch(&self) -> usize {
        self.workers * self.batch_per_worker * self.accumulation_steps
    }

    /// The wire codec actually applied: `codec`, with the legacy
    /// `fp16_gradients` flag mapping to `Fp16` when no explicit codec
    /// is set.
    pub fn effective_codec(&self) -> CodecKind {
        if self.codec == CodecKind::None && self.fp16_gradients {
            CodecKind::Fp16
        } else {
            self.codec
        }
    }

    fn check(&self) {
        assert!(self.workers >= 1 && self.batch_per_worker >= 1 && self.steps >= 1);
        assert!(self.accumulation_steps >= 1, "need at least one micro-batch");
        assert!(
            !(self.pipeline && self.faults.is_some()),
            "the pipelined executor does not support fault injection; use the elastic path"
        );
        assert_eq!(self.data.height, self.net.height, "data/net height");
        assert_eq!(self.data.width, self.net.width, "data/net width");
        assert_eq!(self.data.channels, self.net.cin, "data/net channels");
        assert_eq!(self.data.n_classes, self.net.n_classes, "data/net classes");
    }
}

/// One evaluation point on the training curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPoint {
    pub step: usize,
    pub train_loss: f64,
    pub miou: f64,
    pub pixel_accuracy: f64,
}

/// The result of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    pub curve: Vec<EvalPoint>,
    pub final_miou: f64,
    pub final_pixel_accuracy: f64,
    pub final_params: Vec<f32>,
    /// Mean training loss of every executed step, in order (a resumed
    /// run records only the steps it actually ran).
    pub step_losses: Vec<f64>,
    /// Original worker ids still alive at the end, ascending.
    pub survivors: Vec<usize>,
    /// The deterministic fault-event core (injections, deaths,
    /// degradations, checkpoint lifecycle) — identical on every replay
    /// of the same plan. Empty when `faults` is `None`.
    pub fault_events: Vec<FaultEvent>,
    /// Frozen fault/recovery counters at the end of the run.
    pub fault_counters: FaultCounterSnapshot,
}

/// Evaluate `net` on `n` held-out samples (seed stream disjoint from
/// training data by construction).
pub fn evaluate(net: &SegNet, data: &DataConfig, seed: u64, n: usize) -> Confusion {
    let eval_seed = derive_seed(seed, "eval");

    (0..n as u64)
        .into_par_iter()
        .map(|i| {
            let s = generate(data, eval_seed, i);
            let pred = net.predict(&s.pixels);
            let mut c = Confusion::new(data.n_classes);
            c.add(&s.labels, &pred);
            c
        })
        .reduce(
            || Confusion::new(data.n_classes),
            |mut a, b| {
                a.merge(&b);
                a
            },
        )
}

/// Run data-parallel training per `cfg`, panicking on infrastructure
/// failure — the convenience wrapper around [`try_train`].
pub fn train(cfg: &TrainConfig) -> TrainResult {
    try_train(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Run data-parallel training per `cfg`.
///
/// All replicas start from the same seed-derived initialization, consume
/// disjoint shards of a common data stream, and stay synchronized by
/// construction; the run asserts replica consistency at the end.
///
/// With `cfg.faults` set, the gradient allreduce goes through the
/// fault-aware path: injected drops/corruptions are recovered
/// bit-exactly, and confirmed rank deaths shrink the run onto the
/// survivors (the dead worker's data shard is lost from that step on —
/// the gradient stays an average over the live world). With
/// `cfg.checkpoint` set, bit-exact snapshots are saved periodically and
/// a run can resume from one identically to never having stopped.
pub fn try_train(cfg: &TrainConfig) -> Result<TrainResult, TrainError> {
    cfg.check();
    let n_params = cfg.net.n_params();

    // Comm lanes are keyed by ORIGINAL worker id (one per configured
    // worker, rank → Chrome pid), so the attribution survives elastic
    // renumbering after deaths, exactly like data sharding does.
    let all_ids: Vec<usize> = (0..cfg.workers).collect();
    let comm_trace: Option<ExecTrace> =
        cfg.trace.as_ref().map(|ts| ExecTrace::comm(&ts.recorder, &all_ids));

    let session: Option<FaultSession> = cfg.faults.as_ref().map(|f| {
        let mut s = FaultSession::new(f.plan.clone()).with_policy(f.policy);
        if f.real_delays {
            s = s.with_real_delays();
        }
        if let Some(t) = &comm_trace {
            s = s.with_trace(t.clone());
        }
        s
    });

    // Resume: the checkpoint dictates the starting step and the live
    // set (a checkpoint taken after a degradation has holes in it).
    let mut start_step = 0usize;
    let mut live: Vec<usize> = (0..cfg.workers).collect();
    let mut resume_from: Option<Checkpoint> = None;
    if let Some(ck_cfg) = &cfg.checkpoint {
        if ck_cfg.resume && ck_cfg.path.exists() {
            let ck = Checkpoint::load(&ck_cfg.path).map_err(TrainError::Checkpoint)?;
            if ck.params.len() != n_params {
                return Err(TrainError::CheckpointMismatch(format!(
                    "checkpoint holds {} params, net has {n_params}",
                    ck.params.len()
                )));
            }
            if ck.live.is_empty() || ck.live.iter().any(|&id| id >= cfg.workers) {
                return Err(TrainError::CheckpointMismatch(format!(
                    "live set {:?} does not fit a {}-worker config",
                    ck.live, cfg.workers
                )));
            }
            if ck.step > cfg.steps {
                return Err(TrainError::CheckpointMismatch(format!(
                    "checkpoint at step {} is past the configured {} steps",
                    ck.step, cfg.steps
                )));
            }
            start_step = ck.step;
            live = ck.live.clone();
            resume_from = Some(ck);
        }
    }

    let lr = LrSchedule {
        base_lr: cfg.base_lr,
        scale: cfg.lr_scale,
        warmup_steps: cfg.warmup_steps,
        total_steps: cfg.steps,
        poly_power: 0.9,
    };
    // Per-worker state persists across steps: model replica, optimizer,
    // reusable gradient workspaces, and a per-worker loss cell. `id` is
    // the worker's *original* rank — data sharding keys off it, so the
    // data stream layout survives degradations and resumes. The
    // allreduce payload buffers (`grads`) are allocated once up front,
    // so the steady-state step performs no heap allocation anywhere in
    // the gradient or allreduce path (see `tests/zero_alloc.rs`).
    struct WorkerState {
        id: usize,
        net: SegNet,
        opt: MomentumSgd,
        bw: BatchWorkspace,
        loss: f64,
        /// Compute lane (pid = original id, tid 0); the lane handle is
        /// resolved once here so the per-step recording never touches
        /// the recorder's registry.
        lane: Option<Lane>,
    }
    let mut workers: Vec<WorkerState> = live
        .iter()
        .map(|&id| WorkerState {
            id,
            net: SegNet::new(cfg.net, derive_seed(cfg.seed, "init")),
            opt: MomentumSgd::new(lr, cfg.momentum, n_params).with_weight_decay(cfg.weight_decay),
            bw: BatchWorkspace::new(&cfg.net),
            loss: 0.0,
            lane: cfg
                .trace
                .as_ref()
                .map(|ts| ts.recorder.lane(id as u32, 0, &format!("rank {id}"), "compute")),
        })
        .collect();
    if let Some(ck) = &resume_from {
        // All replicas are identical by the synchronous-SGD invariant,
        // so one saved copy restores every survivor bit-exactly.
        for state in workers.iter_mut() {
            state.net.params_mut().copy_from_slice(&ck.params);
            state.opt.restore(ck.opt_step, &ck.velocity);
        }
        if let Some(s) = &session {
            FaultCounters::bump(&s.counters().checkpoint_restores);
            s.events().push(FaultEvent::CheckpointRestore { step: ck.step });
        }
    }
    let mut grads: Vec<Vec<f32>> = vec![vec![0.0f32; n_params]; workers.len()];
    // Persistent elastic executor: it owns the schedule, the verifier
    // gate, and the pooled payload buffers, and rebuilds all three over
    // the survivors when a rank dies mid-collective.
    let mut ela = ElasticAllreduce::with_live(cfg.algo, live, n_params).map_err(|e| match e {
        ElasticError::Rejected(v) => TrainError::Verification(v),
        other => TrainError::Elastic(other),
    })?;
    if let Some(t) = &comm_trace {
        ela.set_trace(t.clone());
    }
    // Metric handles are resolved once: per-step updates are pure
    // atomics, no registry lookups (and no allocation) on the hot path.
    let metrics = cfg.trace.as_ref().map(|ts| {
        (
            ts.registry.counter("train_steps_total"),
            ts.registry.histogram("train_step_seconds"),
            ts.registry.histogram("train_allreduce_seconds"),
            ts.registry.gauge("train_last_loss"),
        )
    });
    // Wire-byte ledger: what each step's gradient exchange costs on the
    // wire under the configured codec, vs the raw fp32 bytes it stands
    // in for (one payload per live worker per step).
    let codec = cfg.effective_codec();
    let wire_metrics = cfg.trace.as_ref().map(|ts| {
        (
            ts.registry.counter("train_wire_bytes_total"),
            ts.registry.counter("train_raw_bytes_total"),
        )
    });
    // Persistent codec state for the classic path: per-worker fp32
    // error-feedback residuals and one reusable encode scratch
    // (compression is serial there, mirroring the historical fp16
    // sweep). Allocated once, so the step path stays allocation-free.
    let mut ef_states: Vec<ErrorFeedback> = if cfg.error_feedback && codec.is_lossy() {
        (0..workers.len()).map(|_| ErrorFeedback::new(n_params)).collect()
    } else {
        Vec::new()
    };
    let mut codec_scratch = EncodeScratch::new();
    codec_scratch.reserve(codec, n_params);

    // Layer-pipelined executor (opt-in via `cfg.pipeline`): backprop is
    // split into per-layer phases on a work-stealing core pool and each
    // layer's gradient tile is reduced across replicas the moment it is
    // ready, overlapping the "allreduce" with the remaining backward
    // work. Fault injection needs the elastic path, so the two are
    // mutually exclusive (checked in `check()`).
    let mut pipe = if cfg.pipeline {
        let mut ex = super::pipeline::PipelineExecutor::new(
            &cfg.net,
            workers.len(),
            cfg.batch_per_worker,
            cfg.accumulation_steps,
            rayon::current_num_threads(),
        );
        if let Some(ts) = &cfg.trace {
            ex.attach_trace(&ts.recorder);
        }
        Some(ex)
    } else {
        None
    };
    let mut pipe_shards: Vec<Vec<super::segdata::Sample>> = Vec::new();

    let mut curve = Vec::new();
    let mut step_losses = Vec::with_capacity(cfg.steps - start_step);
    let mut last_loss = f64::NAN;
    for step in start_step..cfg.steps {
        let step_t0 = Instant::now();
        if let Some(s) = &session {
            s.begin_step(step);
        }
        let start = (step * cfg.global_batch()) as u64;
        // Gradient computation: one rayon task per worker; per-sample
        // work inside fans out further on the same pool. Each worker
        // accumulates straight into its persistent allreduce buffer.
        // Shard addressing uses the ORIGINAL world layout (`cfg.workers`
        // and `state.id`), so each survivor keeps its own slice of the
        // data stream no matter who else has died.
        let micro = cfg.workers * cfg.batch_per_worker;
        if let Some(exec) = pipe.as_mut() {
            // Pipelined step: generate the same shards the classic path
            // would (identical seed addressing), micro-batch major, then
            // hand compute + reduction + update to the executor.
            pipe_shards.clear();
            for state in workers.iter() {
                let mut shard = Vec::with_capacity(cfg.accumulation_steps * cfg.batch_per_worker);
                for m in 0..cfg.accumulation_steps {
                    let base =
                        start + (m * micro) as u64 + (state.id * cfg.batch_per_worker) as u64;
                    let mut s = generate_batch(&cfg.data, cfg.seed, base, cfg.batch_per_worker);
                    if cfg.augment {
                        for (i, smp) in s.iter_mut().enumerate() {
                            *smp =
                                super::segdata::augment(&cfg.data, smp, cfg.seed, base + i as u64);
                        }
                    }
                    shard.append(&mut s);
                }
                pipe_shards.push(shard);
            }
            last_loss = exec.step(
                workers.iter_mut().map(|w| (&mut w.net, &mut w.opt)),
                &pipe_shards,
                codec,
                cfg.error_feedback,
            );
            for (state, &l) in workers.iter_mut().zip(exec.losses()) {
                state.loss = l;
            }
            if let Some((_, _, ar_hist, _)) = &metrics {
                ar_hist.observe(exec.last_reduce_seconds());
            }
            step_losses.push(last_loss);
        } else {
            workers.par_iter_mut().zip(grads.par_iter_mut()).for_each(|(state, acc)| {
                let t0 = state.lane.as_ref().map(Lane::now_us);
                // Accumulate over micro-batches before communicating.
                let mut loss_sum = 0.0f64;
                acc.fill(0.0);
                for m in 0..cfg.accumulation_steps {
                    let base =
                        start + (m * micro) as u64 + (state.id * cfg.batch_per_worker) as u64;
                    let mut shard = generate_batch(&cfg.data, cfg.seed, base, cfg.batch_per_worker);
                    if cfg.augment {
                        for (i, s) in shard.iter_mut().enumerate() {
                            *s = super::segdata::augment(&cfg.data, s, cfg.seed, base + i as u64);
                        }
                    }
                    loss_sum += state.net.batch_loss_grad_ws(&shard, &mut state.bw);
                    for (a, gi) in acc.iter_mut().zip(&state.bw.grad) {
                        *a += gi;
                    }
                }
                let inv = 1.0 / cfg.accumulation_steps as f32;
                acc.iter_mut().for_each(|a| *a *= inv);
                state.loss = loss_sum / cfg.accumulation_steps as f64;
                if let (Some(l), Some(t0)) = (state.lane.as_ref(), t0) {
                    // Forward and backward are fused in batch_loss_grad_ws,
                    // so one span covers both halves of the compute phase.
                    l.record_args(
                        "BACKWARD",
                        "forward+backward",
                        t0,
                        l.now_us() - t0,
                        step as u64,
                        cfg.accumulation_steps as u64,
                    );
                }
            });
            last_loss = workers.iter().map(|s| s.loss).sum::<f64>() / workers.len() as f64;
            // Apply the wire codec to each worker's local-mean gradient
            // (the averaging itself stays fp32). Plain fp16 keeps the
            // rayon-parallel fused sweep; everything else goes through
            // the shared codec roundtrip, error-feedback compensated
            // when configured.
            if codec == CodecKind::Fp16 && !cfg.error_feedback {
                for g in grads.iter_mut() {
                    super::fp16::compress_gradients(g);
                }
            } else if codec.is_lossy() {
                if cfg.error_feedback {
                    for (g, ef) in grads.iter_mut().zip(ef_states.iter_mut()) {
                        ef.roundtrip(codec, g, &mut codec_scratch);
                    }
                } else {
                    for g in grads.iter_mut() {
                        compression::roundtrip(codec, g, &mut codec_scratch);
                    }
                }
            }

            // The real allreduce: gradients cross threads through the same
            // schedules the timing simulation measures, averaging in place.
            // Without a fault session this is the plain zero-overhead
            // executor; with one, drops/corruptions are recovered and rank
            // deaths degrade the topology onto the survivors.
            let ar_t0 = Instant::now();
            let report = ela
                .allreduce(&mut grads, ReduceOp::Average, session.as_ref())
                .map_err(TrainError::Elastic)?;
            if let Some((_, _, ar_hist, _)) = &metrics {
                ar_hist.observe(ar_t0.elapsed().as_secs_f64());
            }
            if report.degraded() {
                // The elastic layer already removed the dead ranks' gradient
                // buffers; drop the matching worker replicas (and their
                // error-feedback residuals, which are positional).
                if !ef_states.is_empty() {
                    let keep: Vec<bool> =
                        workers.iter().map(|w| !report.dead.contains(&w.id)).collect();
                    let mut it = keep.iter();
                    ef_states.retain(|_| *it.next().unwrap_or(&false)); // lint: allow(unwrap): keep mask built from the same workers vec, one entry per state
                }
                workers.retain(|w| !report.dead.contains(&w.id));
                debug_assert_eq!(workers.len(), grads.len());
            }

            workers.par_iter_mut().zip(grads.par_iter()).for_each(|(state, grad)| {
                let t0 = state.lane.as_ref().map(Lane::now_us);
                state.opt.apply(state.net.params_mut(), grad);
                if let (Some(l), Some(t0)) = (state.lane.as_ref(), t0) {
                    l.record_args("OPTIMIZER", "apply", t0, l.now_us() - t0, step as u64, 0);
                }
            });
            step_losses.push(last_loss);
        }

        let mut halt = false;
        if let Some(ck_cfg) = &cfg.checkpoint {
            if ck_cfg.every > 0 && (step + 1) % ck_cfg.every == 0 {
                let ck_t0 = workers[0].lane.as_ref().map(Lane::now_us);
                let ck = Checkpoint {
                    step: step + 1,
                    live: workers.iter().map(|w| w.id).collect(),
                    opt_step: workers[0].opt.step_index(),
                    params: workers[0].net.params().to_vec(),
                    velocity: workers[0].opt.velocity().to_vec(),
                };
                ck.save(&ck_cfg.path).map_err(TrainError::Checkpoint)?;
                if let (Some(l), Some(t0)) = (workers[0].lane.as_ref(), ck_t0) {
                    l.record_args("CHECKPOINT", "save", t0, l.now_us() - t0, (step + 1) as u64, 0);
                }
                if let Some(s) = &session {
                    FaultCounters::bump(&s.counters().checkpoint_saves);
                    s.events().push(FaultEvent::CheckpointSave { step: step + 1 });
                }
            }
            halt = ck_cfg.halt_after == Some(step + 1);
        }

        if cfg.eval_every > 0 && (step + 1) % cfg.eval_every == 0 {
            let conf = evaluate(&workers[0].net, &cfg.data, cfg.seed, cfg.eval_samples);
            curve.push(EvalPoint {
                step: step + 1,
                train_loss: last_loss,
                miou: conf.miou(),
                pixel_accuracy: conf.pixel_accuracy(),
            });
        }
        if let Some((steps_total, step_hist, _, loss_gauge)) = &metrics {
            steps_total.inc();
            step_hist.observe(step_t0.elapsed().as_secs_f64());
            loss_gauge.set(last_loss);
        }
        if let Some((wire_ctr, raw_ctr)) = &wire_metrics {
            let payloads = workers.len() as u64;
            wire_ctr.add(codec.encoded_len(n_params) as u64 * payloads);
            raw_ctr.add(4 * n_params as u64 * payloads);
        }
        if halt {
            break;
        }
    }

    // Replica-consistency invariant of synchronous data-parallel SGD —
    // it must hold across the survivors even after degradations.
    let reference = workers[0].net.params().to_vec();
    for state in workers.iter().skip(1) {
        let p = state.net.params();
        let max_dev = reference.iter().zip(p).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max_dev == 0.0, "replica {} diverged by {max_dev}", state.id);
    }

    let conf = evaluate(&workers[0].net, &cfg.data, cfg.seed, cfg.eval_samples);
    let final_point = EvalPoint {
        step: cfg.steps,
        train_loss: last_loss,
        miou: conf.miou(),
        pixel_accuracy: conf.pixel_accuracy(),
    };
    if curve.last().map(|p| p.step) != Some(cfg.steps) {
        curve.push(final_point);
    }
    let (fault_events, fault_counters) = match &session {
        Some(s) => (s.events().deterministic_core(), s.counters().snapshot()),
        None => (Vec::new(), FaultCounterSnapshot::default()),
    };
    Ok(TrainResult {
        curve,
        final_miou: final_point.miou,
        final_pixel_accuracy: final_point.pixel_accuracy,
        final_params: reference,
        step_losses,
        survivors: workers.iter().map(|w| w.id).collect(),
        fault_events,
        fault_counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A config small enough for debug-mode tests.
    fn tiny(workers: usize, steps: usize) -> TrainConfig {
        let data = DataConfig { height: 10, width: 10, ..DataConfig::default() };
        let net =
            NetConfig { height: 10, width: 10, cin: 3, hidden1: 4, hidden2: 6, n_classes: 4, k: 3 };
        TrainConfig {
            data,
            net,
            workers,
            batch_per_worker: 2,
            steps,
            base_lr: 0.4,
            lr_scale: 1.0,
            warmup_steps: 5,
            momentum: 0.9,
            weight_decay: 0.0,
            accumulation_steps: 1,
            algo: Algorithm::Ring,
            pipeline: false,
            fp16_gradients: false,
            codec: CodecKind::None,
            error_feedback: false,
            augment: false,
            eval_every: 0,
            eval_samples: 16,
            seed: 42,
            faults: None,
            checkpoint: None,
            trace: None,
        }
    }

    #[test]
    fn training_learns_something() {
        let r = train(&tiny(2, 40));
        assert!(
            r.final_miou > 0.5,
            "after 40 steps mIoU should clear 0.5, got {:.3}",
            r.final_miou
        );
        assert!(r.final_pixel_accuracy > 0.7);
    }

    #[test]
    fn curve_is_recorded() {
        let mut cfg = tiny(2, 20);
        cfg.eval_every = 10;
        let r = train(&cfg);
        assert_eq!(r.curve.len(), 2);
        assert_eq!(r.curve[0].step, 10);
        assert_eq!(r.curve[1].step, 20);
    }

    #[test]
    fn distributed_matches_serial_with_same_global_batch() {
        // 1 × 4 vs 4 × 1: identical data, identical math up to FP order.
        let mut serial = tiny(1, 25);
        serial.batch_per_worker = 4;
        let mut dist = tiny(4, 25);
        dist.batch_per_worker = 1;
        let a = train(&serial);
        let b = train(&dist);
        let max_dev = a
            .final_params
            .iter()
            .zip(&b.final_params)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dev < 2e-2, "parameter deviation {max_dev}");
        assert!(
            (a.final_miou - b.final_miou).abs() < 0.05,
            "serial {:.3} vs distributed {:.3}",
            a.final_miou,
            b.final_miou
        );
    }

    #[test]
    fn different_allreduce_algorithms_agree() {
        let base = tiny(4, 15);
        let ring = train(&base);
        let mut rd = base.clone();
        rd.algo = Algorithm::RecursiveDoubling;
        let rd = train(&rd);
        // Combine orders differ, so allow tiny FP drift.
        let max_dev = ring
            .final_params
            .iter()
            .zip(&rd.final_params)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dev < 2e-2, "ring vs recursive-doubling deviation {max_dev}");
    }

    #[test]
    fn run_is_deterministic() {
        let a = train(&tiny(2, 10));
        let b = train(&tiny(2, 10));
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.final_miou, b.final_miou);
    }

    #[test]
    fn fp16_gradients_barely_move_the_result() {
        let base = train(&tiny(2, 30));
        let mut c = tiny(2, 30);
        c.fp16_gradients = true;
        let fp16 = train(&c);
        assert!(
            (base.final_miou - fp16.final_miou).abs() < 0.08,
            "fp16 compression: mIoU {:.3} vs {:.3}",
            fp16.final_miou,
            base.final_miou
        );
        // But the parameters must actually differ (compression happened).
        assert_ne!(base.final_params, fp16.final_params);
    }

    #[test]
    fn int4_error_feedback_reaches_fp32_baseline_loss() {
        // The error-feedback convergence claim: int4 is far too lossy to
        // train well bare, but with the fp32 residual accumulator the
        // run reaches the fp32 baseline's final loss and mIoU.
        let base = train(&tiny(2, 30));
        let mut c = tiny(2, 30);
        c.codec = CodecKind::Int4;
        c.error_feedback = true;
        let ef = train(&c);
        let tail = |r: &TrainResult| {
            let n = r.step_losses.len();
            r.step_losses[n - 5..].iter().sum::<f64>() / 5.0
        };
        assert!(
            tail(&ef) <= tail(&base) * 1.15 + 0.02,
            "int4+EF tail loss {:.4} must reach fp32 baseline {:.4}",
            tail(&ef),
            tail(&base)
        );
        assert!(
            (base.final_miou - ef.final_miou).abs() < 0.08,
            "int4+EF mIoU {:.3} vs fp32 {:.3}",
            ef.final_miou,
            base.final_miou
        );
        // And the compression really happened.
        assert_ne!(base.final_params, ef.final_params);
    }

    #[test]
    fn codec_runs_are_deterministic_and_lossy() {
        for codec in [CodecKind::Int8, CodecKind::TopK] {
            let mut c = tiny(2, 10);
            c.codec = codec;
            c.error_feedback = true;
            let a = train(&c);
            let b = train(&c);
            assert_eq!(a.final_params, b.final_params, "{codec}: codec run must be deterministic");
            let plain = train(&tiny(2, 10));
            assert_ne!(plain.final_params, a.final_params, "{codec}: codec must change the bits");
        }
    }

    #[test]
    fn pipelined_compressed_run_is_deterministic() {
        // The pipelined executor with a quantizing codec + error
        // feedback: bit-identical across repeated runs (per-tile scratch
        // and fixed fold order keep scheduling out of the numbers).
        let mut cfg = tiny(2, 8);
        cfg.pipeline = true;
        cfg.codec = CodecKind::Int8;
        cfg.error_feedback = true;
        cfg.accumulation_steps = 2;
        let a = train(&cfg);
        let b = train(&cfg);
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.final_miou, b.final_miou);
        // And it matches the classic path's math to reassociation tolerance.
        let mut classic = cfg.clone();
        classic.pipeline = false;
        let c = train(&classic);
        let max_dev = a
            .final_params
            .iter()
            .zip(&c.final_params)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dev < 5e-2, "pipelined vs classic int8+EF deviation {max_dev}");
    }

    #[test]
    fn wire_byte_counters_record_codec_reduction() {
        let mut cfg = tiny(2, 4);
        cfg.codec = CodecKind::Int8;
        let ts = Arc::new(TraceSession::new());
        cfg.trace = Some(ts.clone());
        train(&cfg);
        let m = ts.registry.snapshot();
        let get =
            |name: &str| m.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0);
        let wire = get("train_wire_bytes_total");
        let raw = get("train_raw_bytes_total");
        let n_params = cfg.net.n_params();
        assert_eq!(raw, 4 * n_params as u64 * 2 * 4, "raw = 4B x params x workers x steps");
        assert_eq!(
            wire,
            CodecKind::Int8.encoded_len(n_params) as u64 * 2 * 4,
            "wire = encoded_len x workers x steps"
        );
        assert!(raw as f64 / wire as f64 >= 3.5, "int8 must log >= 3.5x reduction");
    }

    #[test]
    fn augmentation_keeps_parity_and_learning() {
        let mut a = tiny(2, 30);
        a.augment = true;
        let r = train(&a);
        assert!(r.final_miou > 0.4, "augmented run learns: {:.3}", r.final_miou);
        // Parity across worker splits still holds (same augmented stream).
        let mut serial = a.clone();
        serial.workers = 1;
        serial.batch_per_worker = 4;
        let mut dist = a;
        dist.workers = 4;
        dist.batch_per_worker = 1;
        let rs = train(&serial);
        let rd = train(&dist);
        let dev = rs
            .final_params
            .iter()
            .zip(&rd.final_params)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(dev < 2e-2, "augmented parity deviation {dev}");
    }

    #[test]
    fn gradient_accumulation_equals_bigger_batch() {
        // 2 workers x batch 1 x 2 accumulation steps consumes the same
        // examples, in the same grouping, as 2 workers x batch 2... not
        // quite: accumulation interleaves micro-batches across workers.
        // The exact equivalence is: accumulation over k micro-batches of
        // the same shard layout == one update from the mean gradient, so
        // compare against a run whose data stream is constructed to
        // match. Here we check the strong invariants instead: the
        // accumulated run is deterministic, consumes k x the data, and
        // still converges to the same quality.
        let mut acc = tiny(2, 20);
        acc.accumulation_steps = 2;
        let a1 = train(&acc);
        let a2 = train(&acc);
        assert_eq!(a1.final_params, a2.final_params, "deterministic");
        assert_eq!(acc.global_batch(), 8);
        let base = train(&tiny(2, 20));
        assert!(
            (a1.final_miou - base.final_miou).abs() < 0.3,
            "accumulated {:.3} vs base {:.3}",
            a1.final_miou,
            base.final_miou
        );
    }

    #[test]
    fn weight_decay_shrinks_weight_norm() {
        let mut wd = tiny(1, 25);
        wd.weight_decay = 5e-2;
        let with = train(&wd);
        let without = train(&tiny(1, 25));
        let norm = |p: &[f32]| p.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(
            norm(&with.final_params) < norm(&without.final_params),
            "decay must shrink the weights: {} vs {}",
            norm(&with.final_params),
            norm(&without.final_params)
        );
    }

    #[test]
    fn single_worker_works() {
        let r = train(&tiny(1, 10));
        assert!(r.final_miou > 0.0);
    }

    #[test]
    fn evaluation_is_held_out() {
        // Eval stream differs from train stream: mIoU on eval should not
        // be exactly the train confusion (weak check: just ensure the
        // eval seed derivation changes data).
        let cfg = tiny(1, 1);
        let train_sample = generate(&cfg.data, cfg.seed, 0);
        let eval_seed = derive_seed(cfg.seed, "eval");
        let eval_sample = generate(&cfg.data, eval_seed, 0);
        assert_ne!(train_sample.labels, eval_sample.labels);
    }

    #[test]
    fn traced_run_records_spans_and_metrics() {
        let mut cfg = tiny(2, 4);
        let ts = Arc::new(TraceSession::new());
        cfg.trace = Some(ts.clone());
        let traced = train(&cfg);
        // Observability is read-only: the result is bit-identical to an
        // untraced run.
        let plain = train(&tiny(2, 4));
        assert_eq!(traced.final_params, plain.final_params);

        let events = ts.recorder.to_chrome_events();
        let mut pids: Vec<u32> = events.iter().filter(|e| e.ph == 'X').map(|e| e.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids, vec![0, 1], "one pid per worker");
        for cat in ["BACKWARD", "OPTIMIZER", "SEND", "RECV"] {
            assert!(events.iter().any(|e| e.cat == cat), "missing {cat} spans");
        }
        let m = ts.registry.snapshot();
        assert!(m.counters.contains(&("train_steps_total".to_string(), 4)));
        let (_, step_hist) =
            m.histograms.iter().find(|(n, _)| n == "train_step_seconds").expect("hist");
        assert_eq!(step_hist.count, 4);
    }

    #[test]
    #[should_panic(expected = "data/net")]
    fn mismatched_config_rejected() {
        let mut cfg = tiny(1, 1);
        cfg.net.height = 12;
        train(&cfg);
    }

    #[test]
    fn pipelined_run_matches_classic() {
        // Same data stream, same updates — the pipelined executor only
        // reorders the floating-point combination, so the runs agree to
        // the same tolerance the allreduce-algorithm comparison uses.
        let classic = train(&tiny(3, 25));
        let mut p = tiny(3, 25);
        p.pipeline = true;
        let piped = train(&p);
        let max_dev = classic
            .final_params
            .iter()
            .zip(&piped.final_params)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dev < 2e-2, "classic vs pipelined deviation {max_dev}");
        assert!(
            (classic.final_miou - piped.final_miou).abs() < 0.05,
            "classic {:.3} vs pipelined {:.3}",
            classic.final_miou,
            piped.final_miou
        );
        assert!(piped.final_miou > 0.25, "pipelined run learns: {:.3}", piped.final_miou);
    }

    #[test]
    fn pipelined_run_is_deterministic() {
        let mut cfg = tiny(2, 10);
        cfg.pipeline = true;
        cfg.accumulation_steps = 2;
        cfg.fp16_gradients = true;
        let a = train(&cfg);
        let b = train(&cfg);
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.final_miou, b.final_miou);
    }

    #[test]
    fn pipelined_traced_run_records_pipeline_spans() {
        let mut cfg = tiny(2, 3);
        cfg.pipeline = true;
        let ts = Arc::new(TraceSession::new());
        cfg.trace = Some(ts.clone());
        let traced = train(&cfg);
        let plain = train(&{
            let mut c = tiny(2, 3);
            c.pipeline = true;
            c
        });
        assert_eq!(traced.final_params, plain.final_params, "tracing is read-only");

        // The executor records on pid-900 lanes, one tid per pool worker.
        let events = ts.recorder.to_chrome_events();
        let pipe: Vec<_> = events.iter().filter(|e| e.pid == 900 && e.ph == 'X').collect();
        assert!(!pipe.is_empty(), "pipeline lanes recorded nothing");
        for cat in ["FORWARD", "BACKWARD", "MPI_ALLREDUCE", "OPTIMIZER"] {
            assert!(pipe.iter().any(|e| e.cat == cat), "missing {cat} spans on pipeline lanes");
        }
        // Step/metrics plumbing is shared with the classic path.
        let m = ts.registry.snapshot();
        assert!(m.counters.contains(&("train_steps_total".to_string(), 3)));
        let (_, ar_hist) =
            m.histograms.iter().find(|(n, _)| n == "train_allreduce_seconds").expect("hist");
        assert_eq!(ar_hist.count, 3, "one tile-reduce observation per step");
    }
}
