//! A tiny persistent core pool for the pipelined step executor.
//!
//! `CorePool::run(f)` fans a job out to `n` workers: the calling thread
//! participates as worker 0 and `n - 1` persistent helper threads run
//! the rest. Helpers park between jobs (`thread::park`, never a sleep
//! loop) and are woken by a generation-counter handshake, so a steady
//!-state `run` call performs **no heap allocation**: publish the job,
//! unpark, work, park. That is what lets a whole pipelined training
//! step stay inside the zero-allocation envelope the allocation-counter
//! tests prove.
//!
//! The pool deliberately does *not* ship a scheduler: jobs receive only
//! their worker index. Work distribution (the stealing part) lives with
//! the caller — the pipeline executor hands each worker a [`RangeQueue`]
//! of task indices and lets idle workers steal from the tails of the
//! others.

use std::mem;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle, Thread};

/// Raw job entry point: `(context, worker index)`.
type JobFn = unsafe fn(*const (), usize);

struct Shared {
    /// `JobFn` of the current job, stored as a word.
    job_fn: AtomicUsize,
    /// Context pointer of the current job, stored as a word.
    job_ctx: AtomicUsize,
    /// Bumped once per published job; helpers run when it advances.
    generation: AtomicU64,
    /// Helpers still working on the current job.
    remaining: AtomicUsize,
    /// Set when any worker panicked inside a job.
    panicked: AtomicBool,
    shutdown: AtomicBool,
    /// The thread blocked in [`CorePool::run`], to unpark on completion.
    submitter: Mutex<Thread>,
}

fn lock_submitter(shared: &Shared) -> std::sync::MutexGuard<'_, Thread> {
    // A panicking worker poisons nothing here: the guarded value is a
    // plain `Thread` handle, always valid.
    match shared.submitter.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Persistent worker pool; see the module docs.
pub struct CorePool {
    shared: Arc<Shared>,
    /// Handles of the helper threads, for unparking on publish.
    helpers: Vec<Thread>,
    joins: Vec<JoinHandle<()>>,
    workers: usize,
}

impl CorePool {
    /// Pool with `workers` total lanes (1 ⇒ everything runs inline on
    /// the calling thread; `n` ⇒ `n - 1` helper threads are spawned).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            job_fn: AtomicUsize::new(0),
            job_ctx: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            submitter: Mutex::new(thread::current()),
        });
        let mut joins = Vec::with_capacity(workers - 1);
        for idx in 1..workers {
            let sh = Arc::clone(&shared);
            let join = thread::Builder::new()
                .name(format!("pipeline-worker-{idx}"))
                .spawn(move || helper_loop(&sh, idx))
                .expect("spawn pipeline worker"); // lint: allow(unwrap): thread spawn failing at pool construction is unrecoverable
            joins.push(join);
        }
        let helpers = joins.iter().map(|j| j.thread().clone()).collect();
        CorePool { shared, helpers, joins, workers }
    }

    /// Total worker lanes (helpers + the submitting thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(worker_idx)` on every worker lane and wait for all of
    /// them. The borrow checker cannot see across the helper threads,
    /// so the safety contract is enforced by blocking: `f`'s borrows
    /// stay valid because `run` does not return until every helper has
    /// finished the job (the same discipline as scoped threads).
    ///
    /// Steady-state calls allocate nothing.
    // lint: hot-path
    pub fn run<F: Fn(usize) + Sync>(&self, f: &F) {
        unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), idx: usize) {
            (*(ctx as *const F))(idx)
        }
        if self.workers == 1 {
            f(0);
            return;
        }
        *lock_submitter(&self.shared) = thread::current();
        self.shared.job_ctx.store(f as *const F as *const () as usize, Ordering::Release);
        self.shared.job_fn.store(trampoline::<F> as JobFn as usize, Ordering::Release);
        self.shared.remaining.store(self.workers - 1, Ordering::Release);
        self.shared.generation.fetch_add(1, Ordering::Release);
        for h in &self.helpers {
            h.unpark();
        }
        // Participate as worker 0. A panic here must still wait for the
        // helpers (their borrows of `f`'s context die with this frame).
        let mine = panic::catch_unwind(AssertUnwindSafe(|| f(0)));
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            thread::park();
        }
        if let Err(payload) = mine {
            panic::resume_unwind(payload);
        }
        if self.shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("pipeline pool worker panicked");
        }
    }
}

impl Drop for CorePool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for h in &self.helpers {
            h.unpark();
        }
        for j in mem::take(&mut self.joins) {
            let _ = j.join();
        }
    }
}

fn helper_loop(shared: &Shared, idx: usize) {
    let mut seen = 0u64;
    loop {
        let gen = shared.generation.load(Ordering::Acquire);
        if gen == seen {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            thread::park();
            continue;
        }
        seen = gen;
        // SAFETY: `job_fn` was stored from a `JobFn` of the matching
        // monomorphization by `run`, which blocks until `remaining`
        // drains — the context outlives this call.
        let f: JobFn =
            unsafe { mem::transmute::<usize, JobFn>(shared.job_fn.load(Ordering::Acquire)) };
        let ctx = shared.job_ctx.load(Ordering::Acquire) as *const ();
        if panic::catch_unwind(AssertUnwindSafe(|| unsafe { f(ctx, idx) })).is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            lock_submitter(shared).unpark();
        }
    }
}

/// A contiguous block of task indices, packed `head:32 | end:32` into
/// one atomic word so owners and thieves race through plain CAS.
/// Owners take from the head, thieves from the tail; either way a
/// claimed index is claimed exactly once.
#[derive(Debug)]
pub struct RangeQueue(AtomicU64);

fn pack(head: u32, end: u32) -> u64 {
    (u64::from(head) << 32) | u64::from(end)
}

impl RangeQueue {
    pub fn empty() -> Self {
        RangeQueue(AtomicU64::new(0))
    }

    /// Reset to cover `start..end` (called between jobs, single-threaded).
    pub fn reset(&self, start: usize, end: usize) {
        debug_assert!(start <= end && end <= u32::MAX as usize);
        self.0.store(pack(start as u32, end as u32), Ordering::Release);
    }

    /// Claim the next index from the front (the owner's fast path).
    // lint: hot-path
    pub fn pop_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (head, end) = ((cur >> 32) as u32, cur as u32);
            if head >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(head + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Claim the last index from the back (the thief's entry point).
    // lint: hot-path
    pub fn steal_back(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (head, end) = ((cur >> 32) as u32, cur as u32);
            if head >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(head, end - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((end - 1) as usize),
                Err(now) => cur = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn inline_pool_runs_on_the_caller() {
        let pool = CorePool::new(1);
        let hits = AtomicU32::new(0);
        pool.run(&|idx| {
            assert_eq!(idx, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn every_worker_lane_runs_each_job() {
        let pool = CorePool::new(3);
        for _ in 0..50 {
            let mask = AtomicU32::new(0);
            pool.run(&|idx| {
                mask.fetch_or(1 << idx, Ordering::Relaxed);
            });
            assert_eq!(mask.load(Ordering::Relaxed), 0b111);
        }
    }

    #[test]
    fn borrowed_state_is_visible_after_run() {
        let pool = CorePool::new(2);
        let mut data = vec![0u64; 1000];
        let cells: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(&|idx| {
            for (i, c) in cells.iter().enumerate() {
                if i % 2 == idx {
                    c.store(i as u64 + 1, Ordering::Relaxed);
                }
            }
        });
        for (d, c) in data.iter_mut().zip(&cells) {
            *d = c.load(Ordering::Relaxed);
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn worker_panic_propagates_to_the_submitter() {
        let pool = CorePool::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|idx| {
                if idx == 1 {
                    panic!("boom");
                }
            });
        }));
        // Either the helper's flagged panic or (rarely, if worker 0 is
        // re-dispatched...) — the run must not succeed silently.
        assert!(caught.is_err(), "helper panic must surface");
        // The pool stays usable for the next job.
        let ok = AtomicU32::new(0);
        pool.run(&|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn range_queue_hands_out_each_index_once() {
        let q = RangeQueue::empty();
        q.reset(3, 11);
        let mut got = Vec::new();
        got.push(q.steal_back());
        while let Some(i) = q.pop_front() {
            got.push(Some(i));
        }
        assert_eq!(q.steal_back(), None);
        let mut idx: Vec<usize> = got.into_iter().flatten().collect();
        idx.sort_unstable();
        assert_eq!(idx, (3..11).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_owners_and_thieves_never_duplicate() {
        let q = RangeQueue::empty();
        q.reset(0, 4000);
        let claims: Vec<AtomicU32> = (0..4000).map(|_| AtomicU32::new(0)).collect();
        thread::scope(|s| {
            for t in 0..4 {
                let q = &q;
                let claims = &claims;
                s.spawn(move || loop {
                    let got = if t % 2 == 0 { q.pop_front() } else { q.steal_back() };
                    match got {
                        Some(i) => {
                            claims[i].fetch_add(1, Ordering::Relaxed);
                        }
                        None => break,
                    }
                });
            }
        });
        assert!(claims.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
