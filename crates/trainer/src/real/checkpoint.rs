//! Bit-exact checkpoint/restart for the data-parallel trainer.
//!
//! A checkpoint is one flat binary file holding everything a resumed
//! run needs to continue *identically* to the uninterrupted run: the
//! next step index, the surviving original rank ids, the optimizer step
//! counter, the flat parameter vector, and the momentum buffer. All
//! replicas are identical by the synchronous-SGD invariant, so one copy
//! of each suffices regardless of worker count.
//!
//! The file is written to `<path>.tmp` and atomically renamed into
//! place, so a crash mid-write can never leave a half-written file at
//! the checkpoint path. Integrity is a trailing CRC32 over the entire
//! payload ([`faults::crc32_bytes`] — the same checksum the wire
//! protocol uses); load refuses anything with a bad magic, version,
//! length, or checksum.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use faults::crc32_bytes;

const MAGIC: &[u8; 8] = b"SUMMITCK";
const VERSION: u32 = 1;

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum CheckpointError {
    Io(io::Error),
    /// The file exists but is not a valid checkpoint (bad magic,
    /// version, structure, or CRC).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "checkpoint corrupt: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Trainer state at a step boundary. `step` is the next step to run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    pub step: usize,
    /// Original ids of the ranks alive at save time, ascending.
    pub live: Vec<usize>,
    /// Optimizer step counter (equals `step` in the current trainer,
    /// persisted separately so the format doesn't bake that in).
    pub opt_step: usize,
    pub params: Vec<f32>,
    pub velocity: Vec<f32>,
}

impl Checkpoint {
    /// Serialize to the flat format described in the module docs.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + 4
                + 8
                + 4
                + 4 * self.live.len()
                + 8
                + 8
                + 4 * (self.params.len() + self.velocity.len())
                + 4,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.step as u64).to_le_bytes());
        out.extend_from_slice(&(self.live.len() as u32).to_le_bytes());
        for &id in &self.live {
            out.extend_from_slice(&(id as u32).to_le_bytes());
        }
        out.extend_from_slice(&(self.opt_step as u64).to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for &p in &self.params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for &v in &self.velocity {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32_bytes(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let corrupt = |why: &str| CheckpointError::Corrupt(why.to_string());
        if bytes.len() < 8 + 4 + 8 + 4 + 8 + 8 + 4 {
            return Err(corrupt("truncated header"));
        }
        let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")); // lint: allow(unwrap): fixed-size slice
        if crc32_bytes(payload) != stored {
            return Err(corrupt("CRC mismatch"));
        }
        let mut cur = payload;
        let mut take = |n: usize| -> Result<&[u8], CheckpointError> {
            if cur.len() < n {
                return Err(CheckpointError::Corrupt("truncated body".to_string()));
            }
            let (head, rest) = cur.split_at(n);
            cur = rest;
            Ok(head)
        };
        if take(8)? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")); // lint: allow(unwrap): fixed-size slice
        if version != VERSION {
            return Err(CheckpointError::Corrupt(format!("unsupported version {version}")));
        }
        let step = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")) as usize; // lint: allow(unwrap): fixed-size slice
        let world = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize; // lint: allow(unwrap): fixed-size slice
        let mut live = Vec::with_capacity(world);
        for _ in 0..world {
            let id = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")); // lint: allow(unwrap): fixed-size slice
            live.push(id as usize);
        }
        let opt_step = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")) as usize; // lint: allow(unwrap): fixed-size slice
        let n = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")) as usize; // lint: allow(unwrap): fixed-size slice
        let mut read_f32s = |count: usize| -> Result<Vec<f32>, CheckpointError> {
            let raw = take(count.checked_mul(4).ok_or_else(|| corrupt("length overflow"))?)?;
            Ok(raw
                .chunks_exact(4)
                .map(|c| {
                    let b: [u8; 4] = c.try_into().expect("4 bytes"); // lint: allow(unwrap): fixed-size slice
                    f32::from_le_bytes(b)
                })
                .collect())
        };
        let params = read_f32s(n)?;
        let velocity = read_f32s(n)?;
        if !cur.is_empty() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(Checkpoint { step, live, opt_step, params, velocity })
    }

    /// Write atomically: serialize to `<path>.tmp`, fsync, rename.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            step: 17,
            live: vec![0, 1, 3],
            opt_step: 17,
            params: (0..40).map(|i| (i as f32).sin()).collect(),
            velocity: (0..40).map(|i| (i as f32) * -0.25).collect(),
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let dir = std::env::temp_dir().join("summit-ckpt-roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.bin");
        let ck = sample();
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(ck, back);
        // Bit-exact, not approximately-equal: compare raw bits.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ck.params), bits(&back.params));
        assert_eq!(bits(&ck.velocity), bits(&back.velocity));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join("summit-ckpt-tmpfile");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.bin");
        sample().save(&path).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("tmp").exists(), "tmp must be renamed away");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(ref why) if why.contains("CRC")), "{err}");
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes();
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        // Re-stamp the CRC so only the magic is wrong.
        let n = bytes.len();
        let crc = crc32_bytes(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(ref why) if why.contains("magic")), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/definitely/not/here.bin")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
