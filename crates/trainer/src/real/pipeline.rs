//! Layer-pipelined training step on a work-stealing core pool.
//!
//! The classic step in `train.rs` is bulk-synchronous: every replica
//! finishes its whole backward pass, then one allreduce moves the full
//! flat gradient, then the optimizer runs. This executor reproduces the
//! Horovod overlap the paper leans on: backprop is split into per-layer
//! phases, and the moment the last task finishes a layer's phase, that
//! layer's gradient tile is reduced across replicas **while the
//! remaining layers are still backpropagating** on the other workers.
//!
//! Execution model, per step:
//!
//! - The work unit is a *task* = (replica, chunk-of-batch). Tasks are
//!   spread over the [`CorePool`] workers through per-worker
//!   [`RangeQueue`]s; an idle worker steals from the tail of a busy
//!   worker's queue.
//! - Each task runs phase-major: forward+softmax for all its samples,
//!   then the head backward for all its samples, then the middle layer,
//!   then the input layer. Finishing a backward phase decrements that
//!   layer tile's completion counter; the worker that brings a counter
//!   to zero immediately runs the tile's cross-replica reduction
//!   in-line, overlapping it with the other workers' remaining
//!   backprop — the "allreduce as soon as the tensor is ready" rule.
//! - Every task accumulates gradients into its **own** slot, and the
//!   tile reduction folds slots in a fixed (replica-major, chunk-order)
//!   sequence. Scheduling therefore never changes the floating-point
//!   combination order: results are bit-identical run to run, and
//!   independent of the worker count (the chunk count is fixed).
//! - Gradient compression plugs in at the tile reduction: each
//!   replica's local-mean tile takes a [`collectives::compression`]
//!   codec roundtrip (optionally error-feedback compensated against a
//!   persistent per-replica fp32 residual) before the cross-replica
//!   sum. Fp16 without error feedback keeps the fused one-pass kernel
//!   ([`fp16::scale_roundtrip`]): batch-mean scale + pack + unpack, no
//!   separate sweep. Codec scratch is per-tile and the residual slices
//!   are per-(replica, tile), so the overlapped reductions never
//!   contend — and since the codecs are CPU-independent and the fold
//!   order fixed, compressed steps stay bit-deterministic across runs
//!   and worker counts.
//!
//! Safety: the step shares mutable state (gradient slots, workspaces,
//! the reduced buffer) across pool workers through raw pointers. The
//! disjointness argument is structural: a task writes only its own slot
//! and workspaces; a tile reduction reads slot regions only after the
//! completion counter proves every task is done writing that tile (the
//! counter's AcqRel decrement publishes the writes); parameters are
//! only read during the job and only mutated by the submitting thread
//! after the pool barrier. Each `unsafe` block cites the piece of that
//! argument it relies on.

use std::slice;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use collectives::compression::{self, CodecKind, EncodeScratch};
use collectives::reduce::{combine_sum, finalize, ReduceOp};
use trace::{Lane, TraceRecorder};

use super::fp16;
use super::net::{chunk_range, NetConfig, SegNet, Workspace};
use super::pool::{CorePool, RangeQueue};
use super::segdata::Sample;
use super::sgd::MomentumSgd;

/// The three reducible parameter tiles, in flat-vector order:
/// `[w1|b1]`, `[w2|b2]`, `[w3|b3]`. Tile 2 (the head) is the first
/// whose gradient completes, so reductions fire in 2 → 1 → 0 order.
pub const N_TILES: usize = 3;

/// Happens-before instrumentation for `trace::race`, compiled only
/// under `--features race-detect` so the hot path stays untouched.
///
/// Identity follows the span recorder's convention: pid 0 (one rank in
/// this process), tid = pool worker index — the submitting thread *is*
/// worker 0 (`CorePool::run` participates). The mapping of the real
/// synchronization onto [`trace::race::SyncKind`] events:
///
/// * the pool publish/drain barrier → `POOL_SUBMIT` (submitter
///   releases before `pool.run`, every worker acquires at job entry)
///   and `POOL_DONE` (workers release at job exit, submitter acquires
///   after `pool.run` returns);
/// * a successful `RangeQueue` claim CAS → AcqRel on `queue_obj(q)`;
/// * a tile counter `fetch_sub(AcqRel)` → a release on
///   `counter_obj(tile)` *before* the real decrement and an acquire
///   after a winning one, so the hook order observed by the detector
///   can never invert the real decrement order (a combined AcqRel hook
///   after the decrement could, and would report false races).
///
/// Tracked data: per-(slot, tile) gradient regions and the per-tile
/// regions of the `reduced` buffer — the raw-pointer accesses whose
/// disjointness argument the module doc lays out.
#[cfg(feature = "race-detect")]
pub mod race_keys {
    pub const POOL_SUBMIT: u64 = 1;
    pub const POOL_DONE: u64 = 2;

    pub fn queue_obj(q: usize) -> u64 {
        0x100 + q as u64
    }

    pub fn counter_obj(tile: usize) -> u64 {
        0x1000 + tile as u64
    }

    /// The `tile` region of gradient slot `slot`.
    pub fn slot_tile(slot: usize, tile: usize) -> u64 {
        0x1_0000_0000 | ((slot as u64) << 16) | tile as u64
    }

    /// The `tile` region of the shared `reduced` buffer.
    pub fn reduced_tile(tile: usize) -> u64 {
        0x2_0000_0000 | tile as u64
    }
}

#[cfg(feature = "race-detect")]
fn rd() -> Option<&'static trace::RaceDetector> {
    trace::race::global()
}

/// Per-step executor state: the pool, the per-task gradient slots and
/// sample workspaces, and the pointer tables the job shares with the
/// workers. Construct once, call [`PipelineExecutor::step`] every step;
/// steady-state steps perform no heap allocation.
pub struct PipelineExecutor {
    pool: CorePool,
    /// Fixed chunk count per replica — decoupled from the worker count
    /// so the fold order (and thus the result) does not depend on it.
    chunks: usize,
    replicas: usize,
    batch: usize,
    accumulation: usize,
    n_params: usize,
    tiles: [(usize, usize); N_TILES],
    blocks: [(usize, usize); 6],
    /// Per-slot gradient accumulators, `replicas × chunks`, replica-major.
    grads: Vec<Vec<f32>>,
    /// Per-slot sample workspaces (`accumulation × chunk-size` each).
    slot_ws: Vec<Vec<Workspace>>,
    /// Per-slot summed sample loss of the last step.
    slot_loss: Vec<f64>,
    /// Per-replica mean loss of the last step.
    losses: Vec<f64>,
    /// The cross-replica averaged gradient of the last step.
    reduced: Vec<f32>,
    /// Per-tile codec scratch — one reduction per tile per step, so the
    /// tile index alone picks an uncontended scratch set. Owned storage
    /// reached only through `scratch_ptr_tab`.
    #[allow(dead_code)]
    scratch: Vec<EncodeScratch>,
    /// Per-replica fp32 error-feedback residuals (tile-sliced by the
    /// reductions; persistent across steps).
    ef: Vec<Vec<f32>>,
    queues: Vec<RangeQueue>,
    counters: [AtomicUsize; N_TILES],
    /// Nanoseconds spent in tile reductions last step.
    reduce_ns: AtomicU64,
    lanes: Option<Vec<Lane>>,
    // Pointer tables. The slot tables are built once (Vec heap buffers
    // never move, even when the executor itself does); the replica and
    // shard tables are refilled per step inside reserved capacity, so
    // the steady-state step never allocates.
    grad_ptr_tab: Vec<*mut f32>,
    ws_ptr_tab: Vec<(*mut Workspace, usize)>,
    scratch_ptr_tab: Vec<*mut EncodeScratch>,
    ef_ptr_tab: Vec<*mut f32>,
    net_ptrs: Vec<*mut SegNet>,
    opt_ptrs: Vec<*mut MomentumSgd>,
    shard_ptrs: Vec<(*const Sample, usize)>,
}

/// The raw step context every pool worker sees.
struct StepCtx<'a> {
    nets: &'a [*mut SegNet],
    shards: &'a [(*const Sample, usize)],
    grad_ptrs: &'a [*mut f32],
    ws_ptrs: &'a [(*mut Workspace, usize)],
    loss_ptr: *mut f64,
    reduced: *mut f32,
    queues: &'a [RangeQueue],
    counters: &'a [AtomicUsize; N_TILES],
    reduce_ns: &'a AtomicU64,
    lanes: Option<&'a [Lane]>,
    tiles: [(usize, usize); N_TILES],
    blocks: [(usize, usize); 6],
    n_params: usize,
    replicas: usize,
    chunks: usize,
    batch: usize,
    accumulation: usize,
    /// `1 / (batch × accumulation)` — the per-replica mean scale.
    inv_local: f32,
    codec: CodecKind,
    error_feedback: bool,
    /// One scratch set per tile (see `PipelineExecutor::scratch`).
    scratch: &'a [*mut EncodeScratch],
    /// One fp32 residual buffer (`n_params`) per replica.
    ef: &'a [*mut f32],
    step_index: u64,
}

// SAFETY: the raw pointers are shared across the pool workers under the
// disjointness protocol in the module docs; everything else is Sync.
unsafe impl Sync for StepCtx<'_> {}

impl PipelineExecutor {
    /// Executor for `replicas` data-parallel replicas, each computing a
    /// `batch × accumulation` local batch per step, on `workers` pool
    /// lanes (1 means fully inline). Allocates every buffer the step
    /// will touch.
    pub fn new(
        cfg: &NetConfig,
        replicas: usize,
        batch: usize,
        accumulation: usize,
        workers: usize,
    ) -> Self {
        assert!(replicas >= 1 && batch >= 1 && accumulation >= 1);
        // Fixed chunking: at least 4 chunks per replica keeps small
        // worker counts busy and, because it never changes with the
        // worker count, keeps the fold order — and the result — stable.
        let chunks = 4usize.max(workers).min(batch.max(1));
        let probe = SegNet::new(*cfg, 0);
        let n_params = probe.n_params();
        let b = probe.block_ranges().map(|r| (r.start, r.end));
        let tiles = [(b[0].0, b[1].1), (b[2].0, b[3].1), (b[4].0, b[5].1)];
        let mut grads = Vec::with_capacity(replicas * chunks);
        let mut slot_ws: Vec<Vec<Workspace>> = Vec::with_capacity(replicas * chunks);
        for _ in 0..replicas {
            for c in 0..chunks {
                grads.push(vec![0.0f32; n_params]);
                let n_samples = accumulation * chunk_range(batch, chunks, c).len();
                slot_ws.push((0..n_samples).map(|_| Workspace::new(cfg)).collect());
            }
        }
        let grad_ptr_tab = grads.iter_mut().map(|g| g.as_mut_ptr()).collect();
        let ws_ptr_tab = slot_ws.iter_mut().map(|w| (w.as_mut_ptr(), w.len())).collect();
        let mut scratch: Vec<EncodeScratch> = (0..N_TILES).map(|_| EncodeScratch::new()).collect();
        let mut ef: Vec<Vec<f32>> = (0..replicas).map(|_| vec![0.0f32; n_params]).collect();
        let scratch_ptr_tab = scratch.iter_mut().map(|s| s as *mut EncodeScratch).collect();
        let ef_ptr_tab = ef.iter_mut().map(|e| e.as_mut_ptr()).collect();
        PipelineExecutor {
            pool: CorePool::new(workers),
            chunks,
            replicas,
            batch,
            accumulation,
            n_params,
            tiles,
            blocks: b,
            grads,
            slot_ws,
            slot_loss: vec![0.0; replicas * chunks],
            losses: vec![0.0; replicas],
            reduced: vec![0.0f32; n_params],
            scratch,
            ef,
            queues: (0..workers).map(|_| RangeQueue::empty()).collect(),
            counters: [AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0)],
            reduce_ns: AtomicU64::new(0),
            lanes: None,
            grad_ptr_tab,
            ws_ptr_tab,
            scratch_ptr_tab,
            ef_ptr_tab,
            net_ptrs: Vec::with_capacity(replicas),
            opt_ptrs: Vec::with_capacity(replicas),
            shard_ptrs: Vec::with_capacity(replicas),
        }
    }

    /// Attach trace lanes (one per pool worker) to a span recorder.
    /// Pipeline spans use pid 900 so they sit apart from the per-rank
    /// compute lanes in the merged timeline.
    pub fn attach_trace(&mut self, recorder: &TraceRecorder) {
        self.lanes = Some(
            (0..self.pool.workers())
                .map(|w| recorder.lane(900, w as u32, "pipeline pool", &format!("worker {w}")))
                .collect(),
        );
    }

    /// Worker lanes in the pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Per-replica mean losses of the last [`PipelineExecutor::step`].
    pub fn losses(&self) -> &[f64] {
        &self.losses
    }

    /// The cross-replica averaged gradient of the last step.
    pub fn reduced(&self) -> &[f32] {
        &self.reduced
    }

    /// Replica `r`'s persistent error-feedback residual (zero until a
    /// step runs with `error_feedback` on and a lossy codec).
    pub fn error_residual(&self, r: usize) -> &[f32] {
        &self.ef[r]
    }

    /// Zero every error-feedback residual (only sound alongside an
    /// optimizer-state reset).
    pub fn reset_error_feedback(&mut self) {
        for e in &mut self.ef {
            e.fill(0.0);
        }
    }

    /// Seconds spent inside tile reductions during the last step.
    pub fn last_reduce_seconds(&self) -> f64 {
        self.reduce_ns.load(Ordering::Relaxed) as f64 * 1e-9 // lint: allow(relaxed): reduce_ns is a stats cell read after the pool barrier
    }

    /// Run one pipelined training step.
    ///
    /// `replicas` yields each replica's network and optimizer (in rank
    /// order); `shards[r]` is replica `r`'s local batch, micro-batch
    /// major, of length `batch × accumulation`. Computes gradients on
    /// the pool with per-tile overlapped reduction — each replica's
    /// local-mean tile roundtrips through `codec` (error-feedback
    /// compensated when `error_feedback` is set) before the
    /// cross-replica sum — then applies the shared averaged gradient to
    /// every replica. Returns the mean loss across replicas.
    // lint: hot-path
    pub fn step<'a>(
        &mut self,
        replicas: impl Iterator<Item = (&'a mut SegNet, &'a mut MomentumSgd)>,
        shards: &[Vec<Sample>],
        codec: CodecKind,
        error_feedback: bool,
    ) -> f64 {
        self.net_ptrs.clear();
        self.opt_ptrs.clear();
        for (net, opt) in replicas {
            self.net_ptrs.push(net);
            self.opt_ptrs.push(opt);
        }
        assert_eq!(self.net_ptrs.len(), self.replicas, "replica count");
        assert_eq!(shards.len(), self.replicas, "shard count");
        self.shard_ptrs.clear();
        for s in shards {
            assert_eq!(s.len(), self.batch * self.accumulation, "shard length");
            self.shard_ptrs.push((s.as_ptr(), s.len()));
        }

        let n_tasks = self.replicas * self.chunks;
        debug_assert_eq!(self.grads.len(), n_tasks);
        debug_assert_eq!(self.slot_ws.len(), n_tasks);
        for c in &self.counters {
            c.store(n_tasks, Ordering::Release);
        }
        self.reduce_ns.store(0, Ordering::Relaxed); // lint: allow(relaxed): reduce_ns is a stats cell read after the pool barrier
        let workers = self.pool.workers();
        for (w, q) in self.queues.iter().enumerate() {
            let r = chunk_range(n_tasks, workers, w);
            q.reset(r.start, r.end);
        }

        // SAFETY: `opt_ptrs` was just filled from live `&mut` borrows
        // held (invisibly to the checker) for the whole call.
        let step_index = unsafe { (*self.opt_ptrs[0]).step_index() } as u64;
        let ctx = StepCtx {
            nets: &self.net_ptrs,
            shards: &self.shard_ptrs,
            grad_ptrs: &self.grad_ptr_tab,
            ws_ptrs: &self.ws_ptr_tab,
            loss_ptr: self.slot_loss.as_mut_ptr(),
            reduced: self.reduced.as_mut_ptr(),
            queues: &self.queues,
            counters: &self.counters,
            reduce_ns: &self.reduce_ns,
            lanes: self.lanes.as_deref(),
            tiles: self.tiles,
            blocks: self.blocks,
            n_params: self.n_params,
            replicas: self.replicas,
            chunks: self.chunks,
            batch: self.batch,
            accumulation: self.accumulation,
            inv_local: 1.0 / (self.batch * self.accumulation) as f32,
            codec,
            error_feedback,
            scratch: &self.scratch_ptr_tab,
            ef: &self.ef_ptr_tab,
            step_index,
        };
        #[cfg(feature = "race-detect")]
        if let Some(d) = rd() {
            d.sync_event(0, 0, race_keys::POOL_SUBMIT, trace::SyncKind::Release);
        }
        self.pool.run(&|w| worker(&ctx, w));
        #[cfg(feature = "race-detect")]
        if let Some(d) = rd() {
            d.sync_event(0, 0, race_keys::POOL_DONE, trace::SyncKind::Acquire);
            for tile in 0..N_TILES {
                d.on_read(0, 0, race_keys::reduced_tile(tile));
            }
        }

        // Post-barrier: every tile of `reduced` holds the averaged
        // global gradient. Apply it to each replica — identical inputs,
        // so the replica-consistency invariant is preserved bit-exactly.
        let t0 = self.lanes.as_ref().map(|l| l[0].now_us());
        for (&net, &opt) in self.net_ptrs.iter().zip(&self.opt_ptrs) {
            // SAFETY: the `&mut` borrows these were built from are held
            // (invisibly to the checker) for the whole call; the pool
            // job has completed, so nothing else aliases them.
            unsafe { (*opt).apply((*net).params_mut(), &self.reduced) };
        }
        if let (Some(lanes), Some(t0)) = (self.lanes.as_ref(), t0) {
            lanes[0].record_args("OPTIMIZER", "apply", t0, lanes[0].now_us() - t0, step_index, 0);
        }

        let denom = (self.batch * self.accumulation) as f64;
        let mut total = 0.0;
        for r in 0..self.replicas {
            let sum: f64 = self.slot_loss[r * self.chunks..(r + 1) * self.chunks].iter().sum();
            self.losses[r] = sum / denom;
            total += self.losses[r];
        }
        total / self.replicas as f64
    }
}

/// One pool worker: drain the own queue, then steal from the others.
// lint: hot-path
fn worker(ctx: &StepCtx<'_>, w: usize) {
    #[cfg(feature = "race-detect")]
    if let Some(d) = rd() {
        d.sync_event(0, w as u32, race_keys::POOL_SUBMIT, trace::SyncKind::Acquire);
    }
    loop {
        let task = match ctx.queues[w].pop_front() {
            Some(t) => Some((w, t)),
            None => (1..ctx.queues.len()).find_map(|d| {
                let q = (w + d) % ctx.queues.len();
                ctx.queues[q].steal_back().map(|t| (q, t))
            }),
        };
        match task {
            Some((_q, t)) => {
                #[cfg(feature = "race-detect")]
                if let Some(d) = rd() {
                    d.sync_event(0, w as u32, race_keys::queue_obj(_q), trace::SyncKind::AcqRel);
                }
                run_task(ctx, t, w)
            }
            None => break,
        }
    }
    #[cfg(feature = "race-detect")]
    if let Some(d) = rd() {
        d.sync_event(0, w as u32, race_keys::POOL_DONE, trace::SyncKind::Release);
    }
}

/// A tile's sub-slice of a slot gradient (or of the reduced buffer).
///
/// SAFETY (caller): the `(start, end)` region of `base..base+n_params`
/// must not be aliased by a live reference for the borrow's duration.
unsafe fn tile_slice_mut<'a>(base: *mut f32, (start, end): (usize, usize)) -> &'a mut [f32] {
    slice::from_raw_parts_mut(base.add(start), end - start)
}

unsafe fn tile_slice<'a>(base: *const f32, (start, end): (usize, usize)) -> &'a [f32] {
    slice::from_raw_parts(base.add(start), end - start)
}

/// Run compute task `t` = (replica `t / chunks`, chunk `t % chunks`):
/// all four phases, phase-major over the task's samples, bumping the
/// tile counters and running any reduction this worker completes.
// lint: hot-path
fn run_task(ctx: &StepCtx<'_>, t: usize, w: usize) {
    let (r, c) = (t / ctx.chunks, t % ctx.chunks);
    // SAFETY: nets are only read during the job (the optimizer runs
    // after the pool barrier), so shared borrows are sound.
    let net = unsafe { &*ctx.nets[r] };
    let (shard_ptr, shard_len) = ctx.shards[r];
    debug_assert_eq!(shard_len, ctx.batch * ctx.accumulation);
    let chunk = chunk_range(ctx.batch, ctx.chunks, c);
    let (ws_ptr, ws_len) = ctx.ws_ptrs[t];
    let n_samples = ctx.accumulation * chunk.len();
    debug_assert_eq!(ws_len, n_samples);
    let g = ctx.grad_ptrs[t];

    // SAFETY: slot `t` belongs exclusively to this task until its phase
    // counters are bumped; no reduction reads it before that.
    unsafe { slice::from_raw_parts_mut(g, ctx.n_params) }.fill(0.0);
    #[cfg(feature = "race-detect")]
    if let Some(d) = rd() {
        for tile in 0..N_TILES {
            d.on_write(0, w as u32, race_keys::slot_tile(t, tile));
        }
    }

    // Phase 1: forward + softmax backward for every sample.
    let t0 = ctx.lanes.map(|l| l[w].now_us());
    let mut loss = 0.0f64;
    let mut k = 0usize;
    for m in 0..ctx.accumulation {
        for j in chunk.start..chunk.end {
            // SAFETY: shard reads are shared; workspace `k` of slot `t`
            // is this task's alone.
            let (s, ws) = unsafe { (&*shard_ptr.add(m * ctx.batch + j), &mut *ws_ptr.add(k)) };
            loss += net.phase_forward_softmax(s, ws);
            k += 1;
        }
    }
    // SAFETY: loss slot `t` is this task's alone; read after the barrier.
    unsafe { *ctx.loss_ptr.add(t) = loss };
    if let (Some(lanes), Some(t0)) = (ctx.lanes, t0) {
        let now = lanes[w].now_us();
        lanes[w].record_args("FORWARD", "forward+softmax", t0, now - t0, ctx.step_index, t as u64);
    }

    // Phases 2–4: per-layer backward over the same samples, bumping the
    // tile counter after each; the finishing worker reduces in-line.
    backward_phase(ctx, t, w, 2, "backward_head", |net, _s, ws, gw, gb| {
        net.phase_backward_head(ws, gw, gb);
    });
    backward_phase(ctx, t, w, 1, "backward_mid", |net, _s, ws, gw, gb| {
        net.phase_backward_mid(ws, gw, gb);
    });
    backward_phase(ctx, t, w, 0, "backward_input", |net, s, ws, gw, gb| {
        net.phase_backward_input(s, ws, gw, gb);
    });
}

/// Run one backward phase of task `t` over all its samples, then bump
/// tile `tile`'s counter; if this was the last outstanding task for the
/// tile, run its cross-replica reduction right here.
// lint: hot-path
fn backward_phase(
    ctx: &StepCtx<'_>,
    t: usize,
    w: usize,
    tile: usize,
    name: &'static str,
    phase: impl Fn(&SegNet, &Sample, &mut Workspace, &mut [f32], &mut [f32]),
) {
    let (r, c) = (t / ctx.chunks, t % ctx.chunks);
    // SAFETY: see `run_task` — shared net read, exclusive slot access.
    let net = unsafe { &*ctx.nets[r] };
    let (shard_ptr, _) = ctx.shards[r];
    let chunk = chunk_range(ctx.batch, ctx.chunks, c);
    let (ws_ptr, _) = ctx.ws_ptrs[t];
    let g = ctx.grad_ptrs[t];
    let (wb, bb) = (ctx.blocks[2 * tile], ctx.blocks[2 * tile + 1]);

    let t0 = ctx.lanes.map(|l| l[w].now_us());
    let mut k = 0usize;
    for m in 0..ctx.accumulation {
        for j in chunk.start..chunk.end {
            // SAFETY: the weight/bias gradient blocks of slot `t` are
            // written only by this task until the counter bump below;
            // the two blocks are disjoint ranges of the slot vector.
            let (gw, gb) = unsafe { (tile_slice_mut(g, wb), tile_slice_mut(g, bb)) };
            let (s, ws) = unsafe { (&*shard_ptr.add(m * ctx.batch + j), &mut *ws_ptr.add(k)) };
            phase(net, s, ws, gw, gb);
            k += 1;
        }
    }
    if let (Some(lanes), Some(t0)) = (ctx.lanes, t0) {
        let now = lanes[w].now_us();
        lanes[w].record_args("BACKWARD", name, t0, now - t0, ctx.step_index, tile as u64);
    }
    // AcqRel: the final decrement acquires every task's writes to this
    // tile, so the reduction below reads fully-published slot data.
    #[cfg(feature = "race-detect")]
    if let Some(d) = rd() {
        // The release half is hooked *before* the real decrement (and
        // the acquire half after a winning one) so the detector sees
        // the two halves in real decrement order — see `race_keys`.
        d.on_write(0, w as u32, race_keys::slot_tile(t, tile));
        d.sync_event(0, w as u32, race_keys::counter_obj(tile), trace::SyncKind::Release);
    }
    if ctx.counters[tile].fetch_sub(1, Ordering::AcqRel) == 1 {
        #[cfg(feature = "race-detect")]
        if let Some(d) = rd() {
            d.sync_event(0, w as u32, race_keys::counter_obj(tile), trace::SyncKind::Acquire);
        }
        reduce_tile(ctx, tile, w);
    }
}

/// Cross-replica reduction of one parameter tile: fold the chunk slots
/// into each replica's slot 0 (fixed chunk order), scale to the local
/// batch mean, apply the codec's wire loss (fused with the scale for
/// plain fp16; error-feedback compensated when enabled), sum across
/// replicas in rank order, and average. Runs on whichever worker
/// finished the tile last, concurrently with the remaining backprop
/// phases of the other tiles.
// lint: hot-path
fn reduce_tile(ctx: &StepCtx<'_>, tile: usize, w: usize) {
    let span = (ctx.tiles[tile].0, ctx.tiles[tile].1);
    let wall = Instant::now();
    let t0 = ctx.lanes.map(|l| l[w].now_us());
    // SAFETY: exactly one reduction runs per tile per step, so scratch
    // set `tile` has no other user for the duration of this call.
    let scratch = unsafe { &mut *ctx.scratch[tile] };
    #[cfg(feature = "race-detect")]
    if let Some(d) = rd() {
        for r in 0..ctx.replicas {
            // The fold reads every chunk slot and accumulates into the
            // replica's slot 0.
            for c in 1..ctx.chunks {
                d.on_read(0, w as u32, race_keys::slot_tile(r * ctx.chunks + c, tile));
            }
            d.on_write(0, w as u32, race_keys::slot_tile(r * ctx.chunks, tile));
        }
        d.on_write(0, w as u32, race_keys::reduced_tile(tile));
    }
    for r in 0..ctx.replicas {
        // SAFETY: every task finished writing this tile (counter proof),
        // and concurrent tasks only touch *other* tiles' ranges of
        // these slot vectors — disjoint memory.
        let dst = unsafe { tile_slice_mut(ctx.grad_ptrs[r * ctx.chunks], span) };
        for c in 1..ctx.chunks {
            let src = unsafe { tile_slice(ctx.grad_ptrs[r * ctx.chunks + c], span) };
            combine_sum(dst, src);
        }
        match (ctx.codec, ctx.error_feedback) {
            (CodecKind::None, _) => finalize(ReduceOp::Average, dst, ctx.batch * ctx.accumulation),
            (CodecKind::Fp16, false) => {
                // Fused: batch-mean scale + f16 pack + unpack, one pass.
                fp16::scale_roundtrip(dst, ctx.inv_local);
            }
            (codec, ef) => {
                finalize(ReduceOp::Average, dst, ctx.batch * ctx.accumulation);
                if ef {
                    // SAFETY: concurrent reductions touch other tiles'
                    // disjoint `span` ranges of the residual buffers.
                    let res = unsafe { tile_slice_mut(ctx.ef[r], span) };
                    compression::ef_roundtrip(codec, dst, res, scratch);
                } else {
                    compression::roundtrip(codec, dst, scratch);
                }
            }
        }
    }
    // SAFETY: only this reduction writes the `span` range of `reduced`
    // this step (one reduction per tile), and the submitter reads it
    // only after the pool barrier.
    let red = unsafe { tile_slice_mut(ctx.reduced, span) };
    red.copy_from_slice(unsafe { tile_slice(ctx.grad_ptrs[0], span) });
    for r in 1..ctx.replicas {
        let src = unsafe { tile_slice(ctx.grad_ptrs[r * ctx.chunks], span) };
        combine_sum(red, src);
    }
    finalize(ReduceOp::Average, red, ctx.replicas);
    ctx.reduce_ns.fetch_add(wall.elapsed().as_nanos() as u64, Ordering::Relaxed); // lint: allow(relaxed): reduce_ns is a stats cell read after the pool barrier
    if let (Some(lanes), Some(t0)) = (ctx.lanes, t0) {
        let now = lanes[w].now_us();
        lanes[w].record_args(
            "MPI_ALLREDUCE",
            "tile_allreduce",
            t0,
            now - t0,
            tile as u64,
            (span.1 - span.0) as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::net::BatchWorkspace;
    use crate::real::sgd::LrSchedule;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_cfg() -> NetConfig {
        NetConfig { height: 6, width: 5, cin: 2, hidden1: 3, hidden2: 4, n_classes: 3, k: 3 }
    }

    fn random_shard(cfg: &NetConfig, rng: &mut StdRng, n: usize) -> Vec<Sample> {
        let npix = cfg.height * cfg.width;
        (0..n)
            .map(|_| Sample {
                pixels: (0..cfg.cin * npix).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect(),
                labels: (0..npix).map(|_| rng.gen_range(0..cfg.n_classes) as u8).collect(),
            })
            .collect()
    }

    fn build(cfg: &NetConfig, replicas: usize, seed: u64) -> (Vec<SegNet>, Vec<MomentumSgd>) {
        let nets: Vec<SegNet> = (0..replicas).map(|_| SegNet::new(*cfg, seed)).collect();
        let n = nets[0].n_params();
        let opts = (0..replicas)
            .map(|_| MomentumSgd::new(LrSchedule::constant(0.05, 100), 0.9, n))
            .collect();
        (nets, opts)
    }

    /// The pipelined step must match the classic bulk-synchronous math:
    /// mean gradient per replica, averaged across replicas, one
    /// momentum-SGD update — within reassociation tolerance.
    #[test]
    fn pipelined_step_matches_classic_math() {
        let cfg = tiny_cfg();
        let (mut nets, mut opts) = build(&cfg, 3, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let shards: Vec<Vec<Sample>> = (0..3).map(|_| random_shard(&cfg, &mut rng, 4)).collect();

        // Classic reference: per-replica batch mean, cross-replica mean.
        let reference = {
            let net = SegNet::new(cfg, 7);
            let mut bw = BatchWorkspace::new(&cfg);
            let mut global = vec![0.0f32; net.n_params()];
            let mut loss_sum = 0.0;
            for shard in &shards {
                loss_sum += net.batch_loss_grad_ws(shard, &mut bw);
                for (a, g) in global.iter_mut().zip(&bw.grad) {
                    *a += g;
                }
            }
            for g in &mut global {
                *g /= shards.len() as f32;
            }
            let mut params: Vec<f32> = net.params().to_vec();
            let mut opt = MomentumSgd::new(LrSchedule::constant(0.05, 100), 0.9, net.n_params());
            opt.apply(&mut params, &global);
            (params, loss_sum / shards.len() as f64)
        };

        let mut exec = PipelineExecutor::new(&cfg, 3, 4, 1, 2);
        let mean = exec.step(nets.iter_mut().zip(opts.iter_mut()), &shards, CodecKind::None, false);
        assert!((mean - reference.1).abs() < 1e-6, "loss {mean} vs {}", reference.1);
        for (i, (got, want)) in nets[0].params().iter().zip(&reference.0).enumerate() {
            assert!(
                (got - want).abs() <= 1e-4 * (1.0 + want.abs()),
                "param {i}: pipelined {got} vs classic {want}"
            );
        }
        // Replica consistency: every net took the identical update.
        for net in &nets[1..] {
            assert_eq!(net.params(), nets[0].params(), "replicas diverged");
        }
    }

    /// Scheduling must not leak into the numbers: any worker count
    /// produces bit-identical parameters (fixed chunk fold order).
    #[test]
    fn result_is_bitwise_independent_of_worker_count() {
        let cfg = tiny_cfg();
        let mut rng = StdRng::seed_from_u64(3);
        let shards: Vec<Vec<Sample>> = (0..2).map(|_| random_shard(&cfg, &mut rng, 5)).collect();
        let mut outcomes = Vec::new();
        for workers in [1usize, 2, 3] {
            let (mut nets, mut opts) = build(&cfg, 2, 99);
            let mut exec = PipelineExecutor::new(&cfg, 2, 5, 2, workers);
            let doubled: Vec<Vec<Sample>> =
                shards.iter().map(|s| [s.clone(), s.clone()].concat()).collect();
            let loss =
                exec.step(nets.iter_mut().zip(opts.iter_mut()), &doubled, CodecKind::None, false);
            outcomes.push((loss, nets[0].params().to_vec()));
        }
        for o in &outcomes[1..] {
            assert_eq!(o.0.to_bits(), outcomes[0].0.to_bits(), "loss differs across workers");
            let same = o.1.iter().zip(&outcomes[0].1).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "parameters differ across worker counts");
        }
    }

    /// Repeated runs from the same state are bit-identical — the
    /// fold-slot discipline makes stealing invisible.
    #[test]
    fn step_is_deterministic_across_runs() {
        let cfg = tiny_cfg();
        let mut rng = StdRng::seed_from_u64(21);
        let shards: Vec<Vec<Sample>> = (0..2).map(|_| random_shard(&cfg, &mut rng, 6)).collect();
        let mut first: Option<Vec<f32>> = None;
        for _ in 0..3 {
            let (mut nets, mut opts) = build(&cfg, 2, 5);
            let mut exec = PipelineExecutor::new(&cfg, 2, 6, 1, 3);
            for _ in 0..2 {
                exec.step(nets.iter_mut().zip(opts.iter_mut()), &shards, CodecKind::None, false);
            }
            match &first {
                None => first = Some(nets[0].params().to_vec()),
                Some(f) => {
                    let same =
                        f.iter().zip(nets[0].params()).all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "two identical runs diverged");
                }
            }
        }
    }

    /// The fused fp16 reduction equals compress-then-average by hand.
    #[test]
    fn fp16_step_matches_composed_compress() {
        let cfg = tiny_cfg();
        let mut rng = StdRng::seed_from_u64(31);
        let shards: Vec<Vec<Sample>> = (0..2).map(|_| random_shard(&cfg, &mut rng, 3)).collect();

        let reference = {
            let net = SegNet::new(cfg, 13);
            let mut bw = BatchWorkspace::new(&cfg);
            let mut global = vec![0.0f32; net.n_params()];
            for shard in &shards {
                net.batch_loss_grad_ws(shard, &mut bw);
                let mut g = bw.grad.clone();
                fp16::compress_gradients(&mut g);
                for (a, gi) in global.iter_mut().zip(&g) {
                    *a += gi;
                }
            }
            for g in &mut global {
                *g /= shards.len() as f32;
            }
            global
        };

        let (mut nets, mut opts) = build(&cfg, 2, 13);
        let mut exec = PipelineExecutor::new(&cfg, 2, 3, 1, 2);
        exec.step(nets.iter_mut().zip(opts.iter_mut()), &shards, CodecKind::Fp16, false);
        for (i, (got, want)) in exec.reduced().iter().zip(&reference).enumerate() {
            assert!(
                (got - want).abs() <= 1e-3 * (1.0 + want.abs()),
                "reduced[{i}]: fused {got} vs composed {want}"
            );
        }
    }
}
