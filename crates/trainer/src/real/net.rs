//! A from-scratch convolutional segmentation network with manual
//! backpropagation — the numerical stand-in for DLv3+ in the accuracy
//! experiment.
//!
//! Architecture (all stride 1, same padding):
//! `conv k×k (cin→h1) → ReLU → conv k×k (h1→h2) → ReLU → conv 1×1
//! (h2→classes) → per-pixel softmax cross-entropy`
//! — a miniature encoder/classifier head that must combine local color
//! and neighborhood structure, like a segmentation model in the small.
//!
//! Gradients are verified against finite differences in the tests; the
//! parameter vector is exposed flat so the data-parallel trainer can run
//! a real allreduce over it.

use rand::Rng;
use rayon::prelude::*;
use summit_metrics::rng::rng_for;

use super::segdata::Sample;

/// Network shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    pub height: usize,
    pub width: usize,
    pub cin: usize,
    pub hidden1: usize,
    pub hidden2: usize,
    pub n_classes: usize,
    /// Kernel size of the two hidden convolutions (odd).
    pub k: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { height: 24, width: 24, cin: 3, hidden1: 8, hidden2: 16, n_classes: 4, k: 3 }
    }
}

impl NetConfig {
    fn conv_params(k: usize, cin: usize, cout: usize) -> usize {
        k * k * cin * cout + cout
    }

    pub fn n_params(&self) -> usize {
        Self::conv_params(self.k, self.cin, self.hidden1)
            + Self::conv_params(self.k, self.hidden1, self.hidden2)
            + Self::conv_params(1, self.hidden2, self.n_classes)
    }
}

/// The network: three convolution layers stored as flat weight/bias vecs.
#[derive(Debug, Clone)]
pub struct SegNet {
    pub cfg: NetConfig,
    w1: Vec<f32>,
    b1: Vec<f32>,
    w2: Vec<f32>,
    b2: Vec<f32>,
    w3: Vec<f32>,
    b3: Vec<f32>,
}

/// `out[o, y, x] = b[o] + Σ_{i, dy, dx} w[o, i, dy, dx]·in[i, y+dy-p, x+dx-p]`
#[allow(clippy::too_many_arguments)] // a conv is a conv
fn conv_forward(
    input: &[f32],
    cin: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    bias: &[f32],
    k: usize,
    cout: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(input.len(), cin * h * w);
    debug_assert_eq!(weights.len(), k * k * cin * cout);
    debug_assert_eq!(out.len(), cout * h * w);
    let p = k / 2;
    for o in 0..cout {
        let wo = &weights[o * cin * k * k..(o + 1) * cin * k * k];
        let out_o = &mut out[o * h * w..(o + 1) * h * w];
        out_o.fill(bias[o]);
        for i in 0..cin {
            let in_i = &input[i * h * w..(i + 1) * h * w];
            let wi = &wo[i * k * k..(i + 1) * k * k];
            for dy in 0..k {
                for dx in 0..k {
                    let wv = wi[dy * k + dx];
                    if wv == 0.0 {
                        continue;
                    }
                    let oy = dy as isize - p as isize;
                    let ox = dx as isize - p as isize;
                    let y0 = (-oy).max(0) as usize;
                    let y1 = (h as isize - oy).min(h as isize) as usize;
                    let x0 = (-ox).max(0) as usize;
                    let x1 = (w as isize - ox).min(w as isize) as usize;
                    for y in y0..y1 {
                        let src = ((y as isize + oy) as usize) * w;
                        let dst = y * w;
                        for x in x0..x1 {
                            out_o[dst + x] += wv * in_i[src + (x as isize + ox) as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Backward of `conv_forward`: accumulate `dw`, `db`, and (if `dinput` is
/// `Some`) the input gradient.
#[allow(clippy::too_many_arguments)]
fn conv_backward(
    input: &[f32],
    cin: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    k: usize,
    cout: usize,
    dout: &[f32],
    dw: &mut [f32],
    db: &mut [f32],
    mut dinput: Option<&mut [f32]>,
) {
    let p = k / 2;
    for o in 0..cout {
        let dout_o = &dout[o * h * w..(o + 1) * h * w];
        db[o] += dout_o.iter().sum::<f32>();
        for i in 0..cin {
            let in_i = &input[i * h * w..(i + 1) * h * w];
            let dw_oi = &mut dw[(o * cin + i) * k * k..(o * cin + i + 1) * k * k];
            let w_oi = &weights[(o * cin + i) * k * k..(o * cin + i + 1) * k * k];
            for dy in 0..k {
                for dx in 0..k {
                    let oy = dy as isize - p as isize;
                    let ox = dx as isize - p as isize;
                    let y0 = (-oy).max(0) as usize;
                    let y1 = (h as isize - oy).min(h as isize) as usize;
                    let x0 = (-ox).max(0) as usize;
                    let x1 = (w as isize - ox).min(w as isize) as usize;
                    let mut acc = 0.0f32;
                    for y in y0..y1 {
                        let src = ((y as isize + oy) as usize) * w;
                        let dst = y * w;
                        for x in x0..x1 {
                            acc += dout_o[dst + x] * in_i[src + (x as isize + ox) as usize];
                        }
                    }
                    dw_oi[dy * k + dx] += acc;
                    if let Some(din) = dinput.as_deref_mut() {
                        let din_i = &mut din[i * h * w..(i + 1) * h * w];
                        let wv = w_oi[dy * k + dx];
                        for y in y0..y1 {
                            let src = ((y as isize + oy) as usize) * w;
                            let dst = y * w;
                            for x in x0..x1 {
                                din_i[src + (x as isize + ox) as usize] += wv * dout_o[dst + x];
                            }
                        }
                    }
                }
            }
        }
    }
}

impl SegNet {
    /// He-initialized network, deterministic in `seed`.
    pub fn new(cfg: NetConfig, seed: u64) -> Self {
        assert!(cfg.k % 2 == 1, "kernel must be odd for same padding");
        let mut rng = rng_for(seed, "segnet-init");
        let mut init = |fan_in: usize, n: usize| -> Vec<f32> {
            let scale = (2.0 / fan_in as f32).sqrt();
            (0..n).map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale).collect()
        };
        let k = cfg.k;
        SegNet {
            w1: init(k * k * cfg.cin, k * k * cfg.cin * cfg.hidden1),
            b1: vec![0.0; cfg.hidden1],
            w2: init(k * k * cfg.hidden1, k * k * cfg.hidden1 * cfg.hidden2),
            b2: vec![0.0; cfg.hidden2],
            w3: init(cfg.hidden2, cfg.hidden2 * cfg.n_classes),
            b3: vec![0.0; cfg.n_classes],
            cfg,
        }
    }

    pub fn n_params(&self) -> usize {
        self.cfg.n_params()
    }

    /// Parameters as one flat vector (fixed order).
    pub fn params(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.n_params());
        for part in [&self.w1, &self.b1, &self.w2, &self.b2, &self.w3, &self.b3] {
            v.extend_from_slice(part);
        }
        v
    }

    pub fn set_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.n_params(), "parameter vector length");
        let mut off = 0;
        for part in [
            &mut self.w1,
            &mut self.b1,
            &mut self.w2,
            &mut self.b2,
            &mut self.w3,
            &mut self.b3,
        ] {
            let len = part.len();
            part.copy_from_slice(&flat[off..off + len]);
            off += len;
        }
    }

    /// Forward pass to per-pixel logits (`classes × h × w`).
    pub fn forward_logits(&self, pixels: &[f32]) -> Vec<f32> {
        let c = &self.cfg;
        let (h, w) = (c.height, c.width);
        let mut a1 = vec![0.0; c.hidden1 * h * w];
        conv_forward(pixels, c.cin, h, w, &self.w1, &self.b1, c.k, c.hidden1, &mut a1);
        a1.iter_mut().for_each(|x| *x = x.max(0.0));
        let mut a2 = vec![0.0; c.hidden2 * h * w];
        conv_forward(&a1, c.hidden1, h, w, &self.w2, &self.b2, c.k, c.hidden2, &mut a2);
        a2.iter_mut().for_each(|x| *x = x.max(0.0));
        let mut logits = vec![0.0; c.n_classes * h * w];
        conv_forward(&a2, c.hidden2, h, w, &self.w3, &self.b3, 1, c.n_classes, &mut logits);
        logits
    }

    /// Argmax class map.
    pub fn predict(&self, pixels: &[f32]) -> Vec<u8> {
        let c = &self.cfg;
        let (h, w) = (c.height, c.width);
        let logits = self.forward_logits(pixels);
        (0..h * w)
            .map(|i| {
                (0..c.n_classes)
                    .max_by(|&a, &b| {
                        logits[a * h * w + i].partial_cmp(&logits[b * h * w + i]).expect("NaN")
                    })
                    .expect("at least one class") as u8
            })
            .collect()
    }

    /// Cross-entropy loss and flat parameter gradient for one sample.
    pub fn loss_grad(&self, sample: &Sample) -> (f64, Vec<f32>) {
        let c = &self.cfg;
        let (h, w, npix) = (c.height, c.width, c.height * c.width);
        // Forward, keeping activations.
        let mut a1 = vec![0.0; c.hidden1 * h * w];
        conv_forward(&sample.pixels, c.cin, h, w, &self.w1, &self.b1, c.k, c.hidden1, &mut a1);
        let z1_mask: Vec<bool> = a1.iter().map(|&x| x > 0.0).collect();
        a1.iter_mut().for_each(|x| *x = x.max(0.0));
        let mut a2 = vec![0.0; c.hidden2 * h * w];
        conv_forward(&a1, c.hidden1, h, w, &self.w2, &self.b2, c.k, c.hidden2, &mut a2);
        let z2_mask: Vec<bool> = a2.iter().map(|&x| x > 0.0).collect();
        a2.iter_mut().for_each(|x| *x = x.max(0.0));
        let mut logits = vec![0.0; c.n_classes * h * w];
        conv_forward(&a2, c.hidden2, h, w, &self.w3, &self.b3, 1, c.n_classes, &mut logits);

        // Per-pixel softmax cross-entropy; dlogits in place.
        let mut loss = 0.0f64;
        let mut dlogits = logits;
        for i in 0..npix {
            let mut maxv = f32::NEG_INFINITY;
            for cl in 0..c.n_classes {
                maxv = maxv.max(dlogits[cl * npix + i]);
            }
            let mut denom = 0.0f32;
            for cl in 0..c.n_classes {
                denom += (dlogits[cl * npix + i] - maxv).exp();
            }
            let target = sample.labels[i] as usize;
            let logit_t = dlogits[target * npix + i];
            loss += f64::from(denom.ln() + maxv - logit_t);
            for cl in 0..c.n_classes {
                let p = (dlogits[cl * npix + i] - maxv).exp() / denom;
                dlogits[cl * npix + i] =
                    (p - f32::from(u8::from(cl == target))) / npix as f32;
            }
        }
        loss /= npix as f64;

        // Backward.
        let mut dw3 = vec![0.0; self.w3.len()];
        let mut db3 = vec![0.0; self.b3.len()];
        let mut da2 = vec![0.0; a2.len()];
        conv_backward(
            &a2, c.hidden2, h, w, &self.w3, 1, c.n_classes, &dlogits, &mut dw3, &mut db3,
            Some(&mut da2),
        );
        for (d, &m) in da2.iter_mut().zip(&z2_mask) {
            if !m {
                *d = 0.0;
            }
        }
        let mut dw2 = vec![0.0; self.w2.len()];
        let mut db2 = vec![0.0; self.b2.len()];
        let mut da1 = vec![0.0; a1.len()];
        conv_backward(
            &a1, c.hidden1, h, w, &self.w2, c.k, c.hidden2, &da2, &mut dw2, &mut db2,
            Some(&mut da1),
        );
        for (d, &m) in da1.iter_mut().zip(&z1_mask) {
            if !m {
                *d = 0.0;
            }
        }
        let mut dw1 = vec![0.0; self.w1.len()];
        let mut db1 = vec![0.0; self.b1.len()];
        conv_backward(
            &sample.pixels, c.cin, h, w, &self.w1, c.k, c.hidden1, &da1, &mut dw1, &mut db1,
            None,
        );

        let mut grad = Vec::with_capacity(self.n_params());
        for part in [&dw1, &db1, &dw2, &db2, &dw3, &db3] {
            grad.extend_from_slice(part);
        }
        (loss, grad)
    }

    /// Mean loss and mean gradient over a batch; per-sample work runs on
    /// the rayon pool.
    pub fn batch_loss_grad(&self, batch: &[Sample]) -> (f64, Vec<f32>) {
        assert!(!batch.is_empty());
        let (loss_sum, grad_sum) = batch
            .par_iter()
            .map(|s| self.loss_grad(s))
            .reduce(
                || (0.0, vec![0.0f32; self.n_params()]),
                |(la, mut ga), (lb, gb)| {
                    for (a, b) in ga.iter_mut().zip(&gb) {
                        *a += *b;
                    }
                    (la + lb, ga)
                },
            );
        let inv = 1.0 / batch.len() as f32;
        let mut grad = grad_sum;
        grad.iter_mut().for_each(|g| *g *= inv);
        (loss_sum / batch.len() as f64, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::segdata::{generate, DataConfig};

    fn tiny_cfg() -> NetConfig {
        NetConfig { height: 8, width: 8, cin: 3, hidden1: 4, hidden2: 5, n_classes: 4, k: 3 }
    }

    fn tiny_sample(seed: u64) -> Sample {
        let dc = DataConfig { height: 8, width: 8, ..DataConfig::default() };
        generate(&dc, seed, 0)
    }

    #[test]
    fn shapes_and_param_count() {
        let cfg = tiny_cfg();
        let net = SegNet::new(cfg, 1);
        assert_eq!(net.n_params(), cfg.n_params());
        assert_eq!(net.params().len(), net.n_params());
        let s = tiny_sample(2);
        assert_eq!(net.forward_logits(&s.pixels).len(), 4 * 64);
        assert_eq!(net.predict(&s.pixels).len(), 64);
    }

    #[test]
    fn params_roundtrip() {
        let cfg = tiny_cfg();
        let a = SegNet::new(cfg, 1);
        let mut b = SegNet::new(cfg, 2);
        assert_ne!(a.params(), b.params());
        b.set_params(&a.params());
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn loss_is_log_nclasses_at_uniform_logits() {
        let cfg = tiny_cfg();
        let mut net = SegNet::new(cfg, 1);
        net.set_params(&vec![0.0; net.n_params()]);
        let (loss, _) = net.loss_grad(&tiny_sample(3));
        assert!((loss - (4.0f64).ln()).abs() < 1e-5, "loss {loss} vs ln 4");
    }

    /// The load-bearing test: analytic gradients match finite differences.
    #[test]
    fn gradient_check() {
        let cfg = NetConfig { height: 5, width: 5, cin: 3, hidden1: 3, hidden2: 3, n_classes: 4, k: 3 };
        let dc = DataConfig { height: 5, width: 5, ..DataConfig::default() };
        let sample = generate(&dc, 11, 0);
        let net = SegNet::new(cfg, 7);
        let (_, grad) = net.loss_grad(&sample);
        let params = net.params();
        let eps = 3e-3f32;
        let mut checked = 0;
        // Check a spread of parameter indices across all layers.
        for idx in (0..net.n_params()).step_by(net.n_params() / 40 + 1) {
            let mut plus = net.clone();
            let mut p = params.clone();
            p[idx] += eps;
            plus.set_params(&p);
            let (lp, _) = plus.loss_grad(&sample);
            let mut minus = net.clone();
            p[idx] -= 2.0 * eps;
            minus.set_params(&p);
            let (lm, _) = minus.loss_grad(&sample);
            let numeric = ((lp - lm) / (2.0 * f64::from(eps))) as f32;
            let analytic = grad[idx];
            let denom = numeric.abs().max(analytic.abs()).max(1e-4);
            assert!(
                (numeric - analytic).abs() / denom < 0.08,
                "param {idx}: numeric {numeric} vs analytic {analytic}"
            );
            checked += 1;
        }
        assert!(checked >= 30);
    }

    #[test]
    fn batch_gradient_is_mean_of_samples() {
        let cfg = tiny_cfg();
        let net = SegNet::new(cfg, 1);
        let s1 = tiny_sample(5);
        let s2 = tiny_sample(6);
        let (l1, g1) = net.loss_grad(&s1);
        let (l2, g2) = net.loss_grad(&s2);
        let (lb, gb) = net.batch_loss_grad(&[s1, s2]);
        assert!((lb - (l1 + l2) / 2.0).abs() < 1e-9);
        for i in 0..gb.len() {
            assert!((gb[i] - (g1[i] + g2[i]) / 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let cfg = tiny_cfg();
        let mut net = SegNet::new(cfg, 1);
        let s = tiny_sample(8);
        let (l0, g) = net.loss_grad(&s);
        let mut p = net.params();
        for (pi, gi) in p.iter_mut().zip(&g) {
            *pi -= 2.0 * gi;
        }
        net.set_params(&p);
        let (l1, _) = net.loss_grad(&s);
        assert!(l1 < l0, "loss must drop: {l0} -> {l1}");
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let cfg = tiny_cfg();
        assert_eq!(SegNet::new(cfg, 3).params(), SegNet::new(cfg, 3).params());
        assert_ne!(SegNet::new(cfg, 3).params(), SegNet::new(cfg, 4).params());
    }
}
