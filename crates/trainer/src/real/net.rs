//! A from-scratch convolutional segmentation network with manual
//! backpropagation — the numerical stand-in for DLv3+ in the accuracy
//! experiment.
//!
//! Architecture (all stride 1, same padding):
//! `conv k×k (cin→h1) → ReLU → conv k×k (h1→h2) → ReLU → conv 1×1
//! (h2→classes) → per-pixel softmax cross-entropy`
//! — a miniature encoder/classifier head that must combine local color
//! and neighborhood structure, like a segmentation model in the small.
//!
//! ## Hot-path layout
//!
//! Parameters live in **one flat `Vec<f32>`** (`[w1|b1|w2|b2|w3|b3]`,
//! see [`Layout`]); [`SegNet::params`] / [`SegNet::params_mut`] are
//! borrows, so the optimizer and the gradient allreduce operate on the
//! storage in place, with no gather/scatter copies per step.
//!
//! Convolutions run as **im2col + register-blocked matmul**
//! ([`im2col`], `matmul_bias` / `matmul_dw` / `matmul_t_acc`): im2col
//! hoists the boundary handling out of the inner loops, and the matmul
//! kernels process four output rows per pass over a pixel tile so the
//! compiler autovectorizes clean FMA loops. The original naive loops are
//! retained as [`reference_conv_forward`] / [`reference_conv_backward`]
//! and property-tested equivalent (see `conv_proptests`).
//!
//! All per-sample scratch (activations, gradients, im2col matrices)
//! lives in a reusable [`Workspace`]; [`SegNet::loss_grad_acc`]
//! performs **zero heap allocations**, and [`SegNet::batch_loss_grad_ws`]
//! folds a batch into per-thread workspaces ([`BatchWorkspace`]) so the
//! steady-state training step never touches the allocator in the
//! gradient path (asserted by `tests/zero_alloc.rs`).
//!
//! Gradients are verified against finite differences in the tests.

use std::ops::Range;

use rand::Rng;
use rayon::prelude::*;
use summit_metrics::rng::rng_for;

use super::segdata::Sample;

/// Network shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    pub height: usize,
    pub width: usize,
    pub cin: usize,
    pub hidden1: usize,
    pub hidden2: usize,
    pub n_classes: usize,
    /// Kernel size of the two hidden convolutions (odd).
    pub k: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { height: 24, width: 24, cin: 3, hidden1: 8, hidden2: 16, n_classes: 4, k: 3 }
    }
}

impl NetConfig {
    fn conv_params(k: usize, cin: usize, cout: usize) -> usize {
        k * k * cin * cout + cout
    }

    pub fn n_params(&self) -> usize {
        Self::conv_params(self.k, self.cin, self.hidden1)
            + Self::conv_params(self.k, self.hidden1, self.hidden2)
            + Self::conv_params(1, self.hidden2, self.n_classes)
    }
}

/// Offsets of the six parameter blocks inside the flat vector, in the
/// fixed order `[w1, b1, w2, b2, w3, b3]`.
#[derive(Debug, Clone, Copy)]
struct Layout {
    ends: [usize; 6],
}

impl Layout {
    fn new(cfg: &NetConfig) -> Self {
        let k2 = cfg.k * cfg.k;
        let sizes = [
            k2 * cfg.cin * cfg.hidden1,
            cfg.hidden1,
            k2 * cfg.hidden1 * cfg.hidden2,
            cfg.hidden2,
            cfg.hidden2 * cfg.n_classes,
            cfg.n_classes,
        ];
        let mut ends = [0usize; 6];
        let mut off = 0;
        for (e, s) in ends.iter_mut().zip(sizes) {
            off += s;
            *e = off;
        }
        Layout { ends }
    }

    fn range(&self, i: usize) -> Range<usize> {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        start..self.ends[i]
    }

    fn n_params(&self) -> usize {
        self.ends[5]
    }

    /// Borrow the six blocks of a flat parameter/gradient vector.
    fn split<'a>(&self, flat: &'a [f32]) -> [&'a [f32]; 6] {
        debug_assert_eq!(flat.len(), self.n_params());
        let (w1, rest) = flat.split_at(self.ends[0]);
        let (b1, rest) = rest.split_at(self.ends[1] - self.ends[0]);
        let (w2, rest) = rest.split_at(self.ends[2] - self.ends[1]);
        let (b2, rest) = rest.split_at(self.ends[3] - self.ends[2]);
        let (w3, b3) = rest.split_at(self.ends[4] - self.ends[3]);
        [w1, b1, w2, b2, w3, b3]
    }

    /// Mutably borrow the six blocks of a flat gradient vector at once.
    fn split_mut<'a>(&self, flat: &'a mut [f32]) -> [&'a mut [f32]; 6] {
        debug_assert_eq!(flat.len(), self.n_params());
        let (w1, rest) = flat.split_at_mut(self.ends[0]);
        let (b1, rest) = rest.split_at_mut(self.ends[1] - self.ends[0]);
        let (w2, rest) = rest.split_at_mut(self.ends[2] - self.ends[1]);
        let (b2, rest) = rest.split_at_mut(self.ends[3] - self.ends[2]);
        let (w3, b3) = rest.split_at_mut(self.ends[4] - self.ends[3]);
        [w1, b1, w2, b2, w3, b3]
    }
}

/// The network: three convolution layers in one flat parameter vector.
#[derive(Debug, Clone)]
pub struct SegNet {
    pub cfg: NetConfig,
    layout: Layout,
    params: Vec<f32>,
}

// --------------------------------------------------------------- reference
// The original naive kernels, kept as the correctness oracle for the
// optimized path (property tests + bench baselines).

/// `out[o, y, x] = b[o] + Σ_{i, dy, dx} w[o, i, dy, dx]·in[i, y+dy-p, x+dx-p]`
///
/// Naive loop nest with boundary clamping — the reference
/// implementation the optimized [`conv_forward`] is tested against.
#[allow(clippy::too_many_arguments)] // a conv is a conv
pub fn reference_conv_forward(
    input: &[f32],
    cin: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    bias: &[f32],
    k: usize,
    cout: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(input.len(), cin * h * w);
    debug_assert_eq!(weights.len(), k * k * cin * cout);
    debug_assert_eq!(out.len(), cout * h * w);
    let p = k / 2;
    for o in 0..cout {
        let wo = &weights[o * cin * k * k..(o + 1) * cin * k * k];
        let out_o = &mut out[o * h * w..(o + 1) * h * w];
        out_o.fill(bias[o]);
        for i in 0..cin {
            let in_i = &input[i * h * w..(i + 1) * h * w];
            let wi = &wo[i * k * k..(i + 1) * k * k];
            for dy in 0..k {
                for dx in 0..k {
                    let wv = wi[dy * k + dx];
                    if wv == 0.0 {
                        continue;
                    }
                    let oy = dy as isize - p as isize;
                    let ox = dx as isize - p as isize;
                    let y0 = (-oy).max(0) as usize;
                    let y1 = (h as isize - oy).min(h as isize) as usize;
                    let x0 = (-ox).max(0) as usize;
                    let x1 = (w as isize - ox).min(w as isize) as usize;
                    for y in y0..y1 {
                        let src = ((y as isize + oy) as usize) * w;
                        let dst = y * w;
                        for x in x0..x1 {
                            out_o[dst + x] += wv * in_i[src + (x as isize + ox) as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Backward of [`reference_conv_forward`]: accumulate `dw`, `db`, and
/// (if `dinput` is `Some`) the input gradient.
#[allow(clippy::too_many_arguments)]
pub fn reference_conv_backward(
    input: &[f32],
    cin: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    k: usize,
    cout: usize,
    dout: &[f32],
    dw: &mut [f32],
    db: &mut [f32],
    mut dinput: Option<&mut [f32]>,
) {
    let p = k / 2;
    for o in 0..cout {
        let dout_o = &dout[o * h * w..(o + 1) * h * w];
        db[o] += dout_o.iter().sum::<f32>();
        for i in 0..cin {
            let in_i = &input[i * h * w..(i + 1) * h * w];
            let dw_oi = &mut dw[(o * cin + i) * k * k..(o * cin + i + 1) * k * k];
            let w_oi = &weights[(o * cin + i) * k * k..(o * cin + i + 1) * k * k];
            for dy in 0..k {
                for dx in 0..k {
                    let oy = dy as isize - p as isize;
                    let ox = dx as isize - p as isize;
                    let y0 = (-oy).max(0) as usize;
                    let y1 = (h as isize - oy).min(h as isize) as usize;
                    let x0 = (-ox).max(0) as usize;
                    let x1 = (w as isize - ox).min(w as isize) as usize;
                    let mut acc = 0.0f32;
                    for y in y0..y1 {
                        let src = ((y as isize + oy) as usize) * w;
                        let dst = y * w;
                        for x in x0..x1 {
                            acc += dout_o[dst + x] * in_i[src + (x as isize + ox) as usize];
                        }
                    }
                    dw_oi[dy * k + dx] += acc;
                    if let Some(din) = dinput.as_deref_mut() {
                        let din_i = &mut din[i * h * w..(i + 1) * h * w];
                        let wv = w_oi[dy * k + dx];
                        for y in y0..y1 {
                            let src = ((y as isize + oy) as usize) * w;
                            let dst = y * w;
                            for x in x0..x1 {
                                din_i[src + (x as isize + ox) as usize] += wv * dout_o[dst + x];
                            }
                        }
                    }
                }
            }
        }
    }
}

// --------------------------------------------------------------- optimized
// im2col + register-blocked matmul kernels. Shapes: `cols` is the
// unrolled-patch matrix, `rdim = cin·k²` rows of `npix = h·w` pixels.

/// Pixel-tile width of the blocked matmul kernels: one 2 KiB cols/dout
/// row segment plus four output-row segments stay resident in L1 while
/// the reduction dimension streams past.
const PIXEL_TILE: usize = 512;

/// Length of the im2col matrix for a `cin`-channel, `k×k` convolution
/// over `npix` pixels.
pub fn im2col_len(cin: usize, k: usize, npix: usize) -> usize {
    cin * k * k * npix
}

/// Unroll same-padded `k×k` patches: `cols[(i·k+dy)·k+dx, y·w+x] =
/// input[i, y+dy-p, x+dx-p]` (zero outside the image). Row-shifted
/// memcpys, so the matmul kernels never see a boundary branch.
// lint: hot-path
// lint: no-f64
pub fn im2col(input: &[f32], cin: usize, h: usize, w: usize, k: usize, cols: &mut [f32]) {
    let npix = h * w;
    debug_assert_eq!(input.len(), cin * npix);
    debug_assert_eq!(cols.len(), im2col_len(cin, k, npix));
    let p = k / 2;
    let mut rows = cols.chunks_exact_mut(npix);
    for i in 0..cin {
        let chan = &input[i * npix..(i + 1) * npix];
        for dy in 0..k {
            let oy = dy as isize - p as isize;
            for dx in 0..k {
                let ox = dx as isize - p as isize;
                let row = rows.next().expect("cols row per (i, dy, dx)"); // lint: allow(unwrap): chunks_exact_mut yields ci*k*k rows
                for y in 0..h {
                    let dst = &mut row[y * w..(y + 1) * w];
                    let sy = y as isize + oy;
                    if sy < 0 || sy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let src = &chan[(sy as usize) * w..(sy as usize + 1) * w];
                    if ox >= 0 {
                        let ox = ox as usize;
                        let n = w - ox;
                        dst[..n].copy_from_slice(&src[ox..]);
                        dst[n..].fill(0.0);
                    } else {
                        let sx = (-ox) as usize;
                        let n = w - sx;
                        dst[..sx].fill(0.0);
                        dst[sx..].copy_from_slice(&src[..n]);
                    }
                }
            }
        }
    }
}

/// Inverse scatter of [`im2col`]: `dinput[i, y+dy-p, x+dx-p] +=
/// dcols[(i·k+dy)·k+dx, y·w+x]`, accumulating into `dinput`.
// lint: hot-path
// lint: no-f64
pub fn col2im_acc(dcols: &[f32], cin: usize, h: usize, w: usize, k: usize, dinput: &mut [f32]) {
    let npix = h * w;
    debug_assert_eq!(dinput.len(), cin * npix);
    debug_assert_eq!(dcols.len(), im2col_len(cin, k, npix));
    let p = k / 2;
    let mut rows = dcols.chunks_exact(npix);
    for i in 0..cin {
        let chan = &mut dinput[i * npix..(i + 1) * npix];
        for dy in 0..k {
            let oy = dy as isize - p as isize;
            for dx in 0..k {
                let ox = dx as isize - p as isize;
                let row = rows.next().expect("dcols row per (i, dy, dx)"); // lint: allow(unwrap): chunks_exact yields ci*k*k rows
                for y in 0..h {
                    let sy = y as isize + oy;
                    if sy < 0 || sy >= h as isize {
                        continue;
                    }
                    let src = &row[y * w..(y + 1) * w];
                    let dst = &mut chan[(sy as usize) * w..(sy as usize + 1) * w];
                    if ox >= 0 {
                        let ox = ox as usize;
                        let n = w - ox;
                        for (d, s) in dst[ox..].iter_mut().zip(&src[..n]) {
                            *d += *s;
                        }
                    } else {
                        let sx = (-ox) as usize;
                        let n = w - sx;
                        for (d, s) in dst[..n].iter_mut().zip(&src[sx..]) {
                            *d += *s;
                        }
                    }
                }
            }
        }
    }
}

/// Four disjoint `npix`-wide rows of `buf` starting at row `o`.
// lint: hot-path
// lint: no-f64
#[inline]
fn four_rows(buf: &mut [f32], npix: usize, o: usize) -> [&mut [f32]; 4] {
    let rest = &mut buf[o * npix..];
    let (r0, rest) = rest.split_at_mut(npix);
    let (r1, rest) = rest.split_at_mut(npix);
    let (r2, rest) = rest.split_at_mut(npix);
    let (r3, _) = rest.split_at_mut(npix);
    [r0, r1, r2, r3]
}

/// `out[o, p] = bias[o] + Σ_r w[o, r]·cols[r, p]` (then optional ReLU)
/// — the forward matmul, scalar twin of [`matmul_bias_avx2`].
///
/// Blocked two ways: pixel tiles of [`PIXEL_TILE`] keep the working set
/// in L1, and four output rows advance together so each cols element
/// loaded feeds four FMAs.
// lint: hot-path
// lint: no-f64
#[allow(clippy::too_many_arguments)]
fn matmul_bias_scalar(
    w: &[f32],
    cols: &[f32],
    rdim: usize,
    npix: usize,
    cout: usize,
    bias: &[f32],
    relu: bool,
    out: &mut [f32],
) {
    debug_assert_eq!(w.len(), cout * rdim);
    debug_assert_eq!(cols.len(), rdim * npix);
    debug_assert_eq!(out.len(), cout * npix);
    debug_assert_eq!(bias.len(), cout);
    for (o, row) in out.chunks_exact_mut(npix).enumerate() {
        row.fill(bias[o]);
    }
    let mut p0 = 0;
    while p0 < npix {
        let pt = PIXEL_TILE.min(npix - p0);
        let mut o = 0;
        while o + 4 <= cout {
            let [r0, r1, r2, r3] = four_rows(out, npix, o);
            let (t0, t1, t2, t3) = (
                &mut r0[p0..p0 + pt],
                &mut r1[p0..p0 + pt],
                &mut r2[p0..p0 + pt],
                &mut r3[p0..p0 + pt],
            );
            for r in 0..rdim {
                let c = &cols[r * npix + p0..r * npix + p0 + pt];
                let w0 = w[o * rdim + r];
                let w1 = w[(o + 1) * rdim + r];
                let w2 = w[(o + 2) * rdim + r];
                let w3 = w[(o + 3) * rdim + r];
                for p in 0..pt {
                    let cv = c[p];
                    t0[p] += w0 * cv;
                    t1[p] += w1 * cv;
                    t2[p] += w2 * cv;
                    t3[p] += w3 * cv;
                }
            }
            o += 4;
        }
        while o < cout {
            let t = &mut out[o * npix + p0..o * npix + p0 + pt];
            for r in 0..rdim {
                let c = &cols[r * npix + p0..r * npix + p0 + pt];
                let wv = w[o * rdim + r];
                for p in 0..pt {
                    t[p] += wv * c[p];
                }
            }
            o += 1;
        }
        p0 += pt;
    }
    if relu {
        out.iter_mut().for_each(|x| *x = x.max(0.0));
    }
}

/// AVX2+FMA twin of [`matmul_bias_scalar`]: a 4-output-row ×
/// 16-pixel register tile (8 YMM accumulators seeded with the bias)
/// with the reduction dimension streaming through broadcasts, ReLU
/// applied in-register before the single store of each output block.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available (dispatch through
/// [`simd::have_avx2_fma`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn matmul_bias_avx2(
    w: &[f32],
    cols: &[f32],
    rdim: usize,
    npix: usize,
    cout: usize,
    bias: &[f32],
    relu: bool,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(w.len(), cout * rdim);
    debug_assert_eq!(cols.len(), rdim * npix);
    debug_assert_eq!(out.len(), cout * npix);
    debug_assert_eq!(bias.len(), cout);
    let wp = w.as_ptr();
    let cp = cols.as_ptr();
    let op = out.as_mut_ptr();
    let zero = _mm256_setzero_ps();
    let mut o = 0;
    while o + 4 <= cout {
        let b0 = _mm256_set1_ps(*bias.get_unchecked(o));
        let b1 = _mm256_set1_ps(*bias.get_unchecked(o + 1));
        let b2 = _mm256_set1_ps(*bias.get_unchecked(o + 2));
        let b3 = _mm256_set1_ps(*bias.get_unchecked(o + 3));
        let mut p = 0;
        while p + 16 <= npix {
            let mut a00 = b0;
            let mut a01 = b0;
            let mut a10 = b1;
            let mut a11 = b1;
            let mut a20 = b2;
            let mut a21 = b2;
            let mut a30 = b3;
            let mut a31 = b3;
            for r in 0..rdim {
                let c0 = _mm256_loadu_ps(cp.add(r * npix + p));
                let c1 = _mm256_loadu_ps(cp.add(r * npix + p + 8));
                let w0 = _mm256_set1_ps(*wp.add(o * rdim + r));
                a00 = _mm256_fmadd_ps(w0, c0, a00);
                a01 = _mm256_fmadd_ps(w0, c1, a01);
                let w1 = _mm256_set1_ps(*wp.add((o + 1) * rdim + r));
                a10 = _mm256_fmadd_ps(w1, c0, a10);
                a11 = _mm256_fmadd_ps(w1, c1, a11);
                let w2 = _mm256_set1_ps(*wp.add((o + 2) * rdim + r));
                a20 = _mm256_fmadd_ps(w2, c0, a20);
                a21 = _mm256_fmadd_ps(w2, c1, a21);
                let w3 = _mm256_set1_ps(*wp.add((o + 3) * rdim + r));
                a30 = _mm256_fmadd_ps(w3, c0, a30);
                a31 = _mm256_fmadd_ps(w3, c1, a31);
            }
            if relu {
                a00 = _mm256_max_ps(a00, zero);
                a01 = _mm256_max_ps(a01, zero);
                a10 = _mm256_max_ps(a10, zero);
                a11 = _mm256_max_ps(a11, zero);
                a20 = _mm256_max_ps(a20, zero);
                a21 = _mm256_max_ps(a21, zero);
                a30 = _mm256_max_ps(a30, zero);
                a31 = _mm256_max_ps(a31, zero);
            }
            _mm256_storeu_ps(op.add(o * npix + p), a00);
            _mm256_storeu_ps(op.add(o * npix + p + 8), a01);
            _mm256_storeu_ps(op.add((o + 1) * npix + p), a10);
            _mm256_storeu_ps(op.add((o + 1) * npix + p + 8), a11);
            _mm256_storeu_ps(op.add((o + 2) * npix + p), a20);
            _mm256_storeu_ps(op.add((o + 2) * npix + p + 8), a21);
            _mm256_storeu_ps(op.add((o + 3) * npix + p), a30);
            _mm256_storeu_ps(op.add((o + 3) * npix + p + 8), a31);
            p += 16;
        }
        while p + 8 <= npix {
            let mut a0 = b0;
            let mut a1 = b1;
            let mut a2 = b2;
            let mut a3 = b3;
            for r in 0..rdim {
                let c = _mm256_loadu_ps(cp.add(r * npix + p));
                a0 = _mm256_fmadd_ps(_mm256_set1_ps(*wp.add(o * rdim + r)), c, a0);
                a1 = _mm256_fmadd_ps(_mm256_set1_ps(*wp.add((o + 1) * rdim + r)), c, a1);
                a2 = _mm256_fmadd_ps(_mm256_set1_ps(*wp.add((o + 2) * rdim + r)), c, a2);
                a3 = _mm256_fmadd_ps(_mm256_set1_ps(*wp.add((o + 3) * rdim + r)), c, a3);
            }
            if relu {
                a0 = _mm256_max_ps(a0, zero);
                a1 = _mm256_max_ps(a1, zero);
                a2 = _mm256_max_ps(a2, zero);
                a3 = _mm256_max_ps(a3, zero);
            }
            _mm256_storeu_ps(op.add(o * npix + p), a0);
            _mm256_storeu_ps(op.add((o + 1) * npix + p), a1);
            _mm256_storeu_ps(op.add((o + 2) * npix + p), a2);
            _mm256_storeu_ps(op.add((o + 3) * npix + p), a3);
            p += 8;
        }
        while p < npix {
            for j in 0..4 {
                let mut acc = *bias.get_unchecked(o + j);
                for r in 0..rdim {
                    acc = (*wp.add((o + j) * rdim + r)).mul_add(*cp.add(r * npix + p), acc);
                }
                if relu {
                    acc = acc.max(0.0);
                }
                *op.add((o + j) * npix + p) = acc;
            }
            p += 1;
        }
        o += 4;
    }
    while o < cout {
        let bo = _mm256_set1_ps(*bias.get_unchecked(o));
        let mut p = 0;
        while p + 16 <= npix {
            let mut a0 = bo;
            let mut a1 = bo;
            for r in 0..rdim {
                let wv = _mm256_set1_ps(*wp.add(o * rdim + r));
                a0 = _mm256_fmadd_ps(wv, _mm256_loadu_ps(cp.add(r * npix + p)), a0);
                a1 = _mm256_fmadd_ps(wv, _mm256_loadu_ps(cp.add(r * npix + p + 8)), a1);
            }
            if relu {
                a0 = _mm256_max_ps(a0, zero);
                a1 = _mm256_max_ps(a1, zero);
            }
            _mm256_storeu_ps(op.add(o * npix + p), a0);
            _mm256_storeu_ps(op.add(o * npix + p + 8), a1);
            p += 16;
        }
        while p + 8 <= npix {
            let mut a0 = bo;
            for r in 0..rdim {
                let wv = _mm256_set1_ps(*wp.add(o * rdim + r));
                a0 = _mm256_fmadd_ps(wv, _mm256_loadu_ps(cp.add(r * npix + p)), a0);
            }
            if relu {
                a0 = _mm256_max_ps(a0, zero);
            }
            _mm256_storeu_ps(op.add(o * npix + p), a0);
            p += 8;
        }
        while p < npix {
            let mut acc = *bias.get_unchecked(o);
            for r in 0..rdim {
                acc = (*wp.add(o * rdim + r)).mul_add(*cp.add(r * npix + p), acc);
            }
            if relu {
                acc = acc.max(0.0);
            }
            *op.add(o * npix + p) = acc;
            p += 1;
        }
        o += 1;
    }
}

/// Runtime dispatch over the [`matmul_bias_scalar`] /
/// [`matmul_bias_avx2`] twins. `relu` fuses the activation into the
/// same pass (one store per output element instead of a second sweep).
// lint: hot-path
// lint: no-f64
#[allow(clippy::too_many_arguments)]
fn matmul_bias(
    w: &[f32],
    cols: &[f32],
    rdim: usize,
    npix: usize,
    cout: usize,
    bias: &[f32],
    relu: bool,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if simd::have_avx2_fma() {
        // SAFETY: the dispatch predicate just confirmed AVX2+FMA.
        unsafe { matmul_bias_avx2(w, cols, rdim, npix, cout, bias, relu, out) };
        return;
    }
    matmul_bias_scalar(w, cols, rdim, npix, cout, bias, relu, out);
}

/// Eight-lane dot product: independent partial sums so the reduction
/// autovectorizes (a strict sequential sum cannot be reassociated).
// lint: hot-path
// lint: no-f64
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
        for l in 0..8 {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let rem = a.len() - a.len() % 8;
    let mut tail = 0.0f32;
    for (x, y) in a[rem..].iter().zip(&b[rem..]) {
        tail += x * y;
    }
    lanes.iter().sum::<f32>() + tail
}

/// `dw[o, r] += Σ_p dout[o, p]·cols[r, p]` — the weight-gradient
/// matmul, scalar twin of [`matmul_dw_avx2`].
///
/// Loop order keeps each cols row L1-hot across all `cout` dot products.
// lint: hot-path
// lint: no-f64
fn matmul_dw_scalar(
    dout: &[f32],
    cols: &[f32],
    rdim: usize,
    npix: usize,
    cout: usize,
    dw: &mut [f32],
) {
    debug_assert_eq!(dw.len(), cout * rdim);
    debug_assert_eq!(cols.len(), rdim * npix);
    debug_assert_eq!(dout.len(), cout * npix);
    for r in 0..rdim {
        let c = &cols[r * npix..(r + 1) * npix];
        for o in 0..cout {
            dw[o * rdim + r] += dot(&dout[o * npix..(o + 1) * npix], c);
        }
    }
}

/// Sum the eight lanes of a YMM register through a stack spill — the
/// same reassociation as the scalar [`dot`]'s `lanes.iter().sum()`.
#[cfg(target_arch = "x86_64")]
macro_rules! hsum8 {
    ($v:expr) => {{
        let mut buf = [0.0f32; 8];
        _mm256_storeu_ps(buf.as_mut_ptr(), $v);
        buf.iter().sum::<f32>()
    }};
}

/// AVX2+FMA twin of [`matmul_dw_scalar`]: a 4-output-channel ×
/// 2-reduction-row block keeps 8 YMM accumulators live while the pixel
/// dimension streams; each accumulator collapses to one `dw` entry at
/// block end, so the inner loop has no horizontal operations.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available (dispatch through
/// [`simd::have_avx2_fma`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_dw_avx2(
    dout: &[f32],
    cols: &[f32],
    rdim: usize,
    npix: usize,
    cout: usize,
    dw: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(dw.len(), cout * rdim);
    debug_assert_eq!(cols.len(), rdim * npix);
    debug_assert_eq!(dout.len(), cout * npix);
    let dp = dout.as_ptr();
    let cp = cols.as_ptr();
    let gp = dw.as_mut_ptr();
    let mut o = 0;
    while o + 4 <= cout {
        let mut r = 0;
        while r + 2 <= rdim {
            let mut a00 = _mm256_setzero_ps();
            let mut a01 = _mm256_setzero_ps();
            let mut a10 = _mm256_setzero_ps();
            let mut a11 = _mm256_setzero_ps();
            let mut a20 = _mm256_setzero_ps();
            let mut a21 = _mm256_setzero_ps();
            let mut a30 = _mm256_setzero_ps();
            let mut a31 = _mm256_setzero_ps();
            let mut p = 0;
            while p + 8 <= npix {
                let c0 = _mm256_loadu_ps(cp.add(r * npix + p));
                let c1 = _mm256_loadu_ps(cp.add((r + 1) * npix + p));
                let d0 = _mm256_loadu_ps(dp.add(o * npix + p));
                a00 = _mm256_fmadd_ps(d0, c0, a00);
                a01 = _mm256_fmadd_ps(d0, c1, a01);
                let d1 = _mm256_loadu_ps(dp.add((o + 1) * npix + p));
                a10 = _mm256_fmadd_ps(d1, c0, a10);
                a11 = _mm256_fmadd_ps(d1, c1, a11);
                let d2 = _mm256_loadu_ps(dp.add((o + 2) * npix + p));
                a20 = _mm256_fmadd_ps(d2, c0, a20);
                a21 = _mm256_fmadd_ps(d2, c1, a21);
                let d3 = _mm256_loadu_ps(dp.add((o + 3) * npix + p));
                a30 = _mm256_fmadd_ps(d3, c0, a30);
                a31 = _mm256_fmadd_ps(d3, c1, a31);
                p += 8;
            }
            let mut t = [[0.0f32; 2]; 4];
            while p < npix {
                let cv0 = *cp.add(r * npix + p);
                let cv1 = *cp.add((r + 1) * npix + p);
                for (j, tj) in t.iter_mut().enumerate() {
                    let dv = *dp.add((o + j) * npix + p);
                    tj[0] = dv.mul_add(cv0, tj[0]);
                    tj[1] = dv.mul_add(cv1, tj[1]);
                }
                p += 1;
            }
            *gp.add(o * rdim + r) += hsum8!(a00) + t[0][0];
            *gp.add(o * rdim + r + 1) += hsum8!(a01) + t[0][1];
            *gp.add((o + 1) * rdim + r) += hsum8!(a10) + t[1][0];
            *gp.add((o + 1) * rdim + r + 1) += hsum8!(a11) + t[1][1];
            *gp.add((o + 2) * rdim + r) += hsum8!(a20) + t[2][0];
            *gp.add((o + 2) * rdim + r + 1) += hsum8!(a21) + t[2][1];
            *gp.add((o + 3) * rdim + r) += hsum8!(a30) + t[3][0];
            *gp.add((o + 3) * rdim + r + 1) += hsum8!(a31) + t[3][1];
            r += 2;
        }
        if r < rdim {
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            let mut p = 0;
            while p + 8 <= npix {
                let c0 = _mm256_loadu_ps(cp.add(r * npix + p));
                a0 = _mm256_fmadd_ps(_mm256_loadu_ps(dp.add(o * npix + p)), c0, a0);
                a1 = _mm256_fmadd_ps(_mm256_loadu_ps(dp.add((o + 1) * npix + p)), c0, a1);
                a2 = _mm256_fmadd_ps(_mm256_loadu_ps(dp.add((o + 2) * npix + p)), c0, a2);
                a3 = _mm256_fmadd_ps(_mm256_loadu_ps(dp.add((o + 3) * npix + p)), c0, a3);
                p += 8;
            }
            let mut t = [0.0f32; 4];
            while p < npix {
                let cv = *cp.add(r * npix + p);
                for (j, tj) in t.iter_mut().enumerate() {
                    *tj = (*dp.add((o + j) * npix + p)).mul_add(cv, *tj);
                }
                p += 1;
            }
            *gp.add(o * rdim + r) += hsum8!(a0) + t[0];
            *gp.add((o + 1) * rdim + r) += hsum8!(a1) + t[1];
            *gp.add((o + 2) * rdim + r) += hsum8!(a2) + t[2];
            *gp.add((o + 3) * rdim + r) += hsum8!(a3) + t[3];
        }
        o += 4;
    }
    while o < cout {
        for r in 0..rdim {
            let mut acc = _mm256_setzero_ps();
            let mut p = 0;
            while p + 8 <= npix {
                acc = _mm256_fmadd_ps(
                    _mm256_loadu_ps(dp.add(o * npix + p)),
                    _mm256_loadu_ps(cp.add(r * npix + p)),
                    acc,
                );
                p += 8;
            }
            let mut tail = 0.0f32;
            while p < npix {
                tail = (*dp.add(o * npix + p)).mul_add(*cp.add(r * npix + p), tail);
                p += 1;
            }
            *gp.add(o * rdim + r) += hsum8!(acc) + tail;
        }
        o += 1;
    }
}

/// Runtime dispatch over the [`matmul_dw_scalar`] / [`matmul_dw_avx2`]
/// twins.
// lint: hot-path
// lint: no-f64
fn matmul_dw(dout: &[f32], cols: &[f32], rdim: usize, npix: usize, cout: usize, dw: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd::have_avx2_fma() {
        // SAFETY: the dispatch predicate just confirmed AVX2+FMA.
        unsafe { matmul_dw_avx2(dout, cols, rdim, npix, cout, dw) };
        return;
    }
    matmul_dw_scalar(dout, cols, rdim, npix, cout, dw);
}

/// `dcols[r, p] += Σ_o w[o, r]·dout[o, p]` — the input-gradient
/// (transposed) matmul, same tiling as [`matmul_bias_scalar`] with the
/// roles of output channels and cols rows swapped. Scalar twin of
/// [`matmul_t_acc_avx2`].
// lint: hot-path
// lint: no-f64
fn matmul_t_acc_scalar(
    w: &[f32],
    dout: &[f32],
    rdim: usize,
    npix: usize,
    cout: usize,
    dcols: &mut [f32],
) {
    debug_assert_eq!(w.len(), cout * rdim);
    debug_assert_eq!(dcols.len(), rdim * npix);
    debug_assert_eq!(dout.len(), cout * npix);
    let mut p0 = 0;
    while p0 < npix {
        let pt = PIXEL_TILE.min(npix - p0);
        let mut r = 0;
        while r + 4 <= rdim {
            let [t0, t1, t2, t3] = four_rows(dcols, npix, r);
            let (t0, t1, t2, t3) = (
                &mut t0[p0..p0 + pt],
                &mut t1[p0..p0 + pt],
                &mut t2[p0..p0 + pt],
                &mut t3[p0..p0 + pt],
            );
            for o in 0..cout {
                let d = &dout[o * npix + p0..o * npix + p0 + pt];
                let w0 = w[o * rdim + r];
                let w1 = w[o * rdim + r + 1];
                let w2 = w[o * rdim + r + 2];
                let w3 = w[o * rdim + r + 3];
                for p in 0..pt {
                    let dv = d[p];
                    t0[p] += w0 * dv;
                    t1[p] += w1 * dv;
                    t2[p] += w2 * dv;
                    t3[p] += w3 * dv;
                }
            }
            r += 4;
        }
        while r < rdim {
            let t = &mut dcols[r * npix + p0..r * npix + p0 + pt];
            for o in 0..cout {
                let d = &dout[o * npix + p0..o * npix + p0 + pt];
                let wv = w[o * rdim + r];
                for p in 0..pt {
                    t[p] += wv * d[p];
                }
            }
            r += 1;
        }
        p0 += pt;
    }
}

/// AVX2+FMA twin of [`matmul_t_acc_scalar`]: 4 cols rows × 16 pixels
/// of accumulators loaded from `dcols` (the kernel accumulates), the
/// output-channel dimension streaming through weight broadcasts.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available (dispatch through
/// [`simd::have_avx2_fma`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_t_acc_avx2(
    w: &[f32],
    dout: &[f32],
    rdim: usize,
    npix: usize,
    cout: usize,
    dcols: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(w.len(), cout * rdim);
    debug_assert_eq!(dcols.len(), rdim * npix);
    debug_assert_eq!(dout.len(), cout * npix);
    let wp = w.as_ptr();
    let dp = dout.as_ptr();
    let tp = dcols.as_mut_ptr();
    let mut r = 0;
    while r + 4 <= rdim {
        let mut p = 0;
        while p + 16 <= npix {
            let mut a00 = _mm256_loadu_ps(tp.add(r * npix + p));
            let mut a01 = _mm256_loadu_ps(tp.add(r * npix + p + 8));
            let mut a10 = _mm256_loadu_ps(tp.add((r + 1) * npix + p));
            let mut a11 = _mm256_loadu_ps(tp.add((r + 1) * npix + p + 8));
            let mut a20 = _mm256_loadu_ps(tp.add((r + 2) * npix + p));
            let mut a21 = _mm256_loadu_ps(tp.add((r + 2) * npix + p + 8));
            let mut a30 = _mm256_loadu_ps(tp.add((r + 3) * npix + p));
            let mut a31 = _mm256_loadu_ps(tp.add((r + 3) * npix + p + 8));
            for o in 0..cout {
                let d0 = _mm256_loadu_ps(dp.add(o * npix + p));
                let d1 = _mm256_loadu_ps(dp.add(o * npix + p + 8));
                let w0 = _mm256_set1_ps(*wp.add(o * rdim + r));
                a00 = _mm256_fmadd_ps(w0, d0, a00);
                a01 = _mm256_fmadd_ps(w0, d1, a01);
                let w1 = _mm256_set1_ps(*wp.add(o * rdim + r + 1));
                a10 = _mm256_fmadd_ps(w1, d0, a10);
                a11 = _mm256_fmadd_ps(w1, d1, a11);
                let w2 = _mm256_set1_ps(*wp.add(o * rdim + r + 2));
                a20 = _mm256_fmadd_ps(w2, d0, a20);
                a21 = _mm256_fmadd_ps(w2, d1, a21);
                let w3 = _mm256_set1_ps(*wp.add(o * rdim + r + 3));
                a30 = _mm256_fmadd_ps(w3, d0, a30);
                a31 = _mm256_fmadd_ps(w3, d1, a31);
            }
            _mm256_storeu_ps(tp.add(r * npix + p), a00);
            _mm256_storeu_ps(tp.add(r * npix + p + 8), a01);
            _mm256_storeu_ps(tp.add((r + 1) * npix + p), a10);
            _mm256_storeu_ps(tp.add((r + 1) * npix + p + 8), a11);
            _mm256_storeu_ps(tp.add((r + 2) * npix + p), a20);
            _mm256_storeu_ps(tp.add((r + 2) * npix + p + 8), a21);
            _mm256_storeu_ps(tp.add((r + 3) * npix + p), a30);
            _mm256_storeu_ps(tp.add((r + 3) * npix + p + 8), a31);
            p += 16;
        }
        while p + 8 <= npix {
            let mut a0 = _mm256_loadu_ps(tp.add(r * npix + p));
            let mut a1 = _mm256_loadu_ps(tp.add((r + 1) * npix + p));
            let mut a2 = _mm256_loadu_ps(tp.add((r + 2) * npix + p));
            let mut a3 = _mm256_loadu_ps(tp.add((r + 3) * npix + p));
            for o in 0..cout {
                let d = _mm256_loadu_ps(dp.add(o * npix + p));
                a0 = _mm256_fmadd_ps(_mm256_set1_ps(*wp.add(o * rdim + r)), d, a0);
                a1 = _mm256_fmadd_ps(_mm256_set1_ps(*wp.add(o * rdim + r + 1)), d, a1);
                a2 = _mm256_fmadd_ps(_mm256_set1_ps(*wp.add(o * rdim + r + 2)), d, a2);
                a3 = _mm256_fmadd_ps(_mm256_set1_ps(*wp.add(o * rdim + r + 3)), d, a3);
            }
            _mm256_storeu_ps(tp.add(r * npix + p), a0);
            _mm256_storeu_ps(tp.add((r + 1) * npix + p), a1);
            _mm256_storeu_ps(tp.add((r + 2) * npix + p), a2);
            _mm256_storeu_ps(tp.add((r + 3) * npix + p), a3);
            p += 8;
        }
        while p < npix {
            for j in 0..4 {
                let mut acc = *tp.add((r + j) * npix + p);
                for o in 0..cout {
                    acc = (*wp.add(o * rdim + r + j)).mul_add(*dp.add(o * npix + p), acc);
                }
                *tp.add((r + j) * npix + p) = acc;
            }
            p += 1;
        }
        r += 4;
    }
    while r < rdim {
        let mut p = 0;
        while p + 8 <= npix {
            let mut a0 = _mm256_loadu_ps(tp.add(r * npix + p));
            for o in 0..cout {
                let wv = _mm256_set1_ps(*wp.add(o * rdim + r));
                a0 = _mm256_fmadd_ps(wv, _mm256_loadu_ps(dp.add(o * npix + p)), a0);
            }
            _mm256_storeu_ps(tp.add(r * npix + p), a0);
            p += 8;
        }
        while p < npix {
            let mut acc = *tp.add(r * npix + p);
            for o in 0..cout {
                acc = (*wp.add(o * rdim + r)).mul_add(*dp.add(o * npix + p), acc);
            }
            *tp.add(r * npix + p) = acc;
            p += 1;
        }
        r += 1;
    }
}

/// Runtime dispatch over the [`matmul_t_acc_scalar`] /
/// [`matmul_t_acc_avx2`] twins.
// lint: hot-path
// lint: no-f64
fn matmul_t_acc(w: &[f32], dout: &[f32], rdim: usize, npix: usize, cout: usize, dcols: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd::have_avx2_fma() {
        // SAFETY: the dispatch predicate just confirmed AVX2+FMA.
        unsafe { matmul_t_acc_avx2(w, dout, rdim, npix, cout, dcols) };
        return;
    }
    matmul_t_acc_scalar(w, dout, rdim, npix, cout, dcols);
}

/// Optimized convolution forward: im2col into `cols` (caller-provided,
/// [`im2col_len`]-sized; unused for `k == 1`), then blocked matmul.
/// `relu` fuses `max(0, ·)` into the matmul's output store.
/// Numerically equivalent to [`reference_conv_forward`] (plus a ReLU
/// pass when requested) up to float summation order.
// lint: hot-path
// lint: no-f64
#[allow(clippy::too_many_arguments)]
pub fn conv_forward(
    input: &[f32],
    cin: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    bias: &[f32],
    k: usize,
    cout: usize,
    relu: bool,
    cols: &mut [f32],
    out: &mut [f32],
) {
    let npix = h * w;
    let rdim = cin * k * k;
    if k == 1 {
        // 1×1 convolution: the input already is the cols matrix.
        matmul_bias(weights, input, rdim, npix, cout, bias, relu, out);
        return;
    }
    im2col(input, cin, h, w, k, cols);
    matmul_bias(weights, cols, rdim, npix, cout, bias, relu, out);
}

/// Optimized convolution backward. `cols` must hold the im2col of the
/// layer input (left over from [`conv_forward`], ignored for `k == 1`);
/// `dcols` is scratch for the input gradient (ignored when `dinput` is
/// `None` or `k == 1`). Accumulates into `dw` / `db` / `dinput` like
/// the reference.
// lint: hot-path
// lint: no-f64
#[allow(clippy::too_many_arguments)]
pub fn conv_backward(
    input: &[f32],
    cin: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    k: usize,
    cout: usize,
    dout: &[f32],
    cols: &[f32],
    dcols: &mut [f32],
    dw: &mut [f32],
    db: &mut [f32],
    dinput: Option<&mut [f32]>,
) {
    let npix = h * w;
    let rdim = cin * k * k;
    for (o, bo) in db.iter_mut().enumerate() {
        let row = &dout[o * npix..(o + 1) * npix];
        // Eight-lane sum, same reassociation as `dot`.
        let mut lanes = [0.0f32; 8];
        for ch in row.chunks_exact(8) {
            for l in 0..8 {
                lanes[l] += ch[l];
            }
        }
        let rem = row.len() - row.len() % 8;
        *bo += lanes.iter().sum::<f32>() + row[rem..].iter().sum::<f32>();
    }
    let cols = if k == 1 { input } else { cols };
    matmul_dw(dout, cols, rdim, npix, cout, dw);
    if let Some(din) = dinput {
        if k == 1 {
            matmul_t_acc(weights, dout, rdim, npix, cout, din);
        } else {
            dcols.fill(0.0);
            matmul_t_acc(weights, dout, rdim, npix, cout, dcols);
            col2im_acc(dcols, cin, h, w, k, din);
        }
    }
}

// --------------------------------------------------------------- workspace

/// Reusable per-sample scratch for [`SegNet::loss_grad_acc`]: forward
/// activations, backward gradients, and the im2col matrices of both
/// k×k layers. Constructing one allocates everything the hot path
/// needs; using it allocates nothing.
#[derive(Debug, Clone)]
pub struct Workspace {
    a1: Vec<f32>,
    a2: Vec<f32>,
    /// Logits on the way forward, `dlogits` after the softmax backward.
    dlogits: Vec<f32>,
    da1: Vec<f32>,
    da2: Vec<f32>,
    cols1: Vec<f32>,
    cols2: Vec<f32>,
    dcols: Vec<f32>,
}

impl Workspace {
    pub fn new(cfg: &NetConfig) -> Self {
        let npix = cfg.height * cfg.width;
        Workspace {
            a1: vec![0.0; cfg.hidden1 * npix],
            a2: vec![0.0; cfg.hidden2 * npix],
            dlogits: vec![0.0; cfg.n_classes * npix],
            da1: vec![0.0; cfg.hidden1 * npix],
            da2: vec![0.0; cfg.hidden2 * npix],
            cols1: vec![0.0; im2col_len(cfg.cin, cfg.k, npix)],
            cols2: vec![0.0; im2col_len(cfg.hidden1, cfg.k, npix)],
            dcols: vec![0.0; im2col_len(cfg.hidden1, cfg.k, npix)],
        }
    }
}

/// Balanced contiguous chunk `c` of `n` chunks over `len` items (the
/// same partition the rayon shim uses, so slot work matches threads).
pub(crate) fn chunk_range(len: usize, n: usize, c: usize) -> Range<usize> {
    let base = len / n;
    let rem = len % n;
    let start = c * base + c.min(rem);
    start..start + base + usize::from(c < rem)
}

/// Per-thread state for [`SegNet::batch_loss_grad_ws`]: one
/// ([`Workspace`], gradient accumulator) slot per worker thread, plus
/// the combined mean gradient. Construct once, reuse every step.
#[derive(Debug)]
pub struct BatchWorkspace {
    slots: Vec<Slot>,
    /// Mean gradient of the last [`SegNet::batch_loss_grad_ws`] call.
    pub grad: Vec<f32>,
}

#[derive(Debug)]
struct Slot {
    ws: Workspace,
    grad: Vec<f32>,
    loss: f64,
}

impl BatchWorkspace {
    pub fn new(cfg: &NetConfig) -> Self {
        let n_params = cfg.n_params();
        let slots = (0..rayon::current_num_threads())
            .map(|_| Slot { ws: Workspace::new(cfg), grad: vec![0.0; n_params], loss: 0.0 })
            .collect();
        BatchWorkspace { slots, grad: vec![0.0; n_params] }
    }
}

impl SegNet {
    /// He-initialized network, deterministic in `seed`.
    pub fn new(cfg: NetConfig, seed: u64) -> Self {
        assert!(cfg.k % 2 == 1, "kernel must be odd for same padding");
        let layout = Layout::new(&cfg);
        let mut params = vec![0.0f32; layout.n_params()];
        let mut rng = rng_for(seed, "segnet-init");
        let k2 = cfg.k * cfg.k;
        // Weight blocks in declaration order (w1, w2, w3) so the RNG
        // stream matches the historical per-field initialization.
        for (block, fan_in) in [(0, k2 * cfg.cin), (2, k2 * cfg.hidden1), (4, cfg.hidden2)] {
            let scale = (2.0 / fan_in as f32).sqrt();
            for v in &mut params[layout.range(block)] {
                *v = (rng.gen::<f32>() * 2.0 - 1.0) * scale;
            }
        }
        SegNet { cfg, layout, params }
    }

    pub fn n_params(&self) -> usize {
        self.cfg.n_params()
    }

    /// The flat parameter vector (fixed order `[w1|b1|w2|b2|w3|b3]`),
    /// borrowed — no copy.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable borrow of the flat parameter vector: the optimizer
    /// updates the network storage in place.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    pub fn set_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.n_params(), "parameter vector length");
        self.params.copy_from_slice(flat);
    }

    /// Forward pass to per-pixel logits (`classes × h × w`).
    pub fn forward_logits(&self, pixels: &[f32]) -> Vec<f32> {
        let c = &self.cfg;
        let npix = c.height * c.width;
        let mut ws = Workspace::new(c);
        self.forward_ws(pixels, &mut ws);
        let mut logits = vec![0.0; c.n_classes * npix];
        logits.copy_from_slice(&ws.dlogits);
        logits
    }

    /// Forward through the workspace; logits end up in `ws.dlogits`.
    fn forward_ws(&self, pixels: &[f32], ws: &mut Workspace) {
        let c = &self.cfg;
        let (h, w) = (c.height, c.width);
        let [w1, b1, w2, b2, w3, b3] = self.layout.split(&self.params);
        // ReLU is fused into the matmul's output store (`relu: true`).
        conv_forward(pixels, c.cin, h, w, w1, b1, c.k, c.hidden1, true, &mut ws.cols1, &mut ws.a1);
        conv_forward(
            &ws.a1,
            c.hidden1,
            h,
            w,
            w2,
            b2,
            c.k,
            c.hidden2,
            true,
            &mut ws.cols2,
            &mut ws.a2,
        );
        conv_forward(
            &ws.a2,
            c.hidden2,
            h,
            w,
            w3,
            b3,
            1,
            c.n_classes,
            false,
            &mut ws.dcols,
            &mut ws.dlogits,
        );
    }

    /// Argmax class map.
    pub fn predict(&self, pixels: &[f32]) -> Vec<u8> {
        let c = &self.cfg;
        let (h, w) = (c.height, c.width);
        let logits = self.forward_logits(pixels);
        (0..h * w)
            .map(|i| {
                (0..c.n_classes)
                    .max_by(|&a, &b| logits[a * h * w + i].total_cmp(&logits[b * h * w + i]))
                    .expect("at least one class") as u8 // lint: allow(unwrap): n_classes >= 1 is validated at construction
            })
            .collect()
    }

    /// Parameter ranges of the six blocks, in the fixed flat order
    /// `[w1, b1, w2, b2, w3, b3]` — what the pipelined step executor
    /// uses to address gradient tiles inside a flat vector.
    pub fn block_ranges(&self) -> [Range<usize>; 6] {
        [
            self.layout.range(0),
            self.layout.range(1),
            self.layout.range(2),
            self.layout.range(3),
            self.layout.range(4),
            self.layout.range(5),
        ]
    }

    /// Cross-entropy loss for one sample, **accumulating** the flat
    /// parameter gradient into `grad_acc` (`+=`). Performs zero heap
    /// allocations: all scratch comes from `ws`.
    ///
    /// The body is the four pipeline phases run back to back; the
    /// pipelined executor calls them individually so each layer's
    /// gradient tile can be reduced as soon as its phase completes.
    // lint: hot-path
    pub fn loss_grad_acc(&self, sample: &Sample, ws: &mut Workspace, grad_acc: &mut [f32]) -> f64 {
        assert_eq!(grad_acc.len(), self.n_params(), "gradient vector length");
        let [gw1, gb1, gw2, gb2, gw3, gb3] = self.layout.split_mut(grad_acc);
        let loss = self.phase_forward_softmax(sample, ws);
        self.phase_backward_head(ws, gw3, gb3);
        self.phase_backward_mid(ws, gw2, gb2);
        self.phase_backward_input(sample, ws, gw1, gb1);
        loss
    }

    /// Pipeline phase 1: forward pass plus per-pixel softmax
    /// cross-entropy backward. Leaves the loss gradient w.r.t. the
    /// logits in `ws.dlogits`; returns the sample's mean pixel loss.
    // lint: hot-path
    pub fn phase_forward_softmax(&self, sample: &Sample, ws: &mut Workspace) -> f64 {
        let c = &self.cfg;
        let npix = c.height * c.width;
        self.forward_ws(&sample.pixels, ws);

        // Per-pixel softmax cross-entropy; dlogits in place. (ReLU
        // masks are implicit: post-ReLU activation > 0 ⇔ pre-activation
        // > 0, so `a1`/`a2` double as their own masks.)
        let mut loss = 0.0f64;
        let dlogits = &mut ws.dlogits;
        for i in 0..npix {
            let mut maxv = f32::NEG_INFINITY;
            for cl in 0..c.n_classes {
                maxv = maxv.max(dlogits[cl * npix + i]);
            }
            let target = sample.labels[i] as usize;
            let logit_t = dlogits[target * npix + i];
            // Single-exp formulation: stash e^(x-max) in place on the
            // accumulation pass, then normalize — same `e / denom`
            // division as the reference, so the result is bit-identical
            // while halving the (dominant) exp count.
            let mut denom = 0.0f32;
            for cl in 0..c.n_classes {
                let e = (dlogits[cl * npix + i] - maxv).exp();
                denom += e;
                dlogits[cl * npix + i] = e;
            }
            loss += f64::from(denom.ln() + maxv - logit_t);
            for cl in 0..c.n_classes {
                let p = dlogits[cl * npix + i] / denom;
                dlogits[cl * npix + i] = (p - f32::from(u8::from(cl == target))) / npix as f32;
            }
        }
        loss / npix as f64
    }

    /// Pipeline phase 2: 1×1 head backward. Accumulates into the
    /// `w3`/`b3` gradient blocks and leaves the ReLU-masked activation
    /// gradient in `ws.da2`. Requires phase 1's workspace state.
    // lint: hot-path
    pub fn phase_backward_head(&self, ws: &mut Workspace, gw3: &mut [f32], gb3: &mut [f32]) {
        let c = &self.cfg;
        let (h, w) = (c.height, c.width);
        let [_, _, _, _, w3, _] = self.layout.split(&self.params);
        ws.da2.fill(0.0);
        conv_backward(
            &ws.a2,
            c.hidden2,
            h,
            w,
            w3,
            1,
            c.n_classes,
            &ws.dlogits,
            &[],
            &mut [],
            gw3,
            gb3,
            Some(&mut ws.da2),
        );
        for (d, &a) in ws.da2.iter_mut().zip(&ws.a2) {
            if a <= 0.0 {
                *d = 0.0;
            }
        }
    }

    /// Pipeline phase 3: middle k×k layer backward. Accumulates into
    /// `w2`/`b2` and leaves the ReLU-masked `ws.da1`. Requires phase 2.
    // lint: hot-path
    pub fn phase_backward_mid(&self, ws: &mut Workspace, gw2: &mut [f32], gb2: &mut [f32]) {
        let c = &self.cfg;
        let (h, w) = (c.height, c.width);
        let [_, _, w2, _, _, _] = self.layout.split(&self.params);
        ws.da1.fill(0.0);
        conv_backward(
            &ws.a1,
            c.hidden1,
            h,
            w,
            w2,
            c.k,
            c.hidden2,
            &ws.da2,
            &ws.cols2,
            &mut ws.dcols,
            gw2,
            gb2,
            Some(&mut ws.da1),
        );
        for (d, &a) in ws.da1.iter_mut().zip(&ws.a1) {
            if a <= 0.0 {
                *d = 0.0;
            }
        }
    }

    /// Pipeline phase 4: input k×k layer backward. Accumulates into
    /// `w1`/`b1`; no further input gradient. Requires phase 3.
    // lint: hot-path
    pub fn phase_backward_input(
        &self,
        sample: &Sample,
        ws: &mut Workspace,
        gw1: &mut [f32],
        gb1: &mut [f32],
    ) {
        let c = &self.cfg;
        let (h, w) = (c.height, c.width);
        let [w1, _, _, _, _, _] = self.layout.split(&self.params);
        conv_backward(
            &sample.pixels,
            c.cin,
            h,
            w,
            w1,
            c.k,
            c.hidden1,
            &ws.da1,
            &ws.cols1,
            &mut [],
            gw1,
            gb1,
            None,
        );
    }

    /// Cross-entropy loss and flat parameter gradient for one sample
    /// (allocating convenience wrapper over [`SegNet::loss_grad_acc`]).
    pub fn loss_grad(&self, sample: &Sample) -> (f64, Vec<f32>) {
        let mut ws = Workspace::new(&self.cfg);
        let mut grad = vec![0.0f32; self.n_params()];
        let loss = self.loss_grad_acc(sample, &mut ws, &mut grad);
        (loss, grad)
    }

    /// The naive-kernel twin of [`SegNet::loss_grad`]: allocates fresh
    /// buffers and runs [`reference_conv_forward`] /
    /// [`reference_conv_backward`] end to end. Retained as the
    /// correctness oracle and the bench baseline the optimized path is
    /// measured against.
    pub fn reference_loss_grad(&self, sample: &Sample) -> (f64, Vec<f32>) {
        let c = &self.cfg;
        let (h, w, npix) = (c.height, c.width, c.height * c.width);
        let [w1, b1, w2, b2, w3, b3] = self.layout.split(&self.params);
        // Forward, keeping activations.
        let mut a1 = vec![0.0; c.hidden1 * h * w];
        reference_conv_forward(&sample.pixels, c.cin, h, w, w1, b1, c.k, c.hidden1, &mut a1);
        let z1_mask: Vec<bool> = a1.iter().map(|&x| x > 0.0).collect();
        a1.iter_mut().for_each(|x| *x = x.max(0.0));
        let mut a2 = vec![0.0; c.hidden2 * h * w];
        reference_conv_forward(&a1, c.hidden1, h, w, w2, b2, c.k, c.hidden2, &mut a2);
        let z2_mask: Vec<bool> = a2.iter().map(|&x| x > 0.0).collect();
        a2.iter_mut().for_each(|x| *x = x.max(0.0));
        let mut logits = vec![0.0; c.n_classes * h * w];
        reference_conv_forward(&a2, c.hidden2, h, w, w3, b3, 1, c.n_classes, &mut logits);

        // Per-pixel softmax cross-entropy; dlogits in place.
        let mut loss = 0.0f64;
        let mut dlogits = logits;
        for i in 0..npix {
            let mut maxv = f32::NEG_INFINITY;
            for cl in 0..c.n_classes {
                maxv = maxv.max(dlogits[cl * npix + i]);
            }
            let mut denom = 0.0f32;
            for cl in 0..c.n_classes {
                denom += (dlogits[cl * npix + i] - maxv).exp();
            }
            let target = sample.labels[i] as usize;
            let logit_t = dlogits[target * npix + i];
            loss += f64::from(denom.ln() + maxv - logit_t);
            for cl in 0..c.n_classes {
                let p = (dlogits[cl * npix + i] - maxv).exp() / denom;
                dlogits[cl * npix + i] = (p - f32::from(u8::from(cl == target))) / npix as f32;
            }
        }
        loss /= npix as f64;

        // Backward.
        let mut grad = vec![0.0f32; self.n_params()];
        let [gw1, gb1, gw2, gb2, gw3, gb3] = self.layout.split_mut(&mut grad);
        let mut da2 = vec![0.0; a2.len()];
        reference_conv_backward(
            &a2,
            c.hidden2,
            h,
            w,
            w3,
            1,
            c.n_classes,
            &dlogits,
            gw3,
            gb3,
            Some(&mut da2),
        );
        for (d, &m) in da2.iter_mut().zip(&z2_mask) {
            if !m {
                *d = 0.0;
            }
        }
        let mut da1 = vec![0.0; a1.len()];
        reference_conv_backward(
            &a1,
            c.hidden1,
            h,
            w,
            w2,
            c.k,
            c.hidden2,
            &da2,
            gw2,
            gb2,
            Some(&mut da1),
        );
        for (d, &m) in da1.iter_mut().zip(&z1_mask) {
            if !m {
                *d = 0.0;
            }
        }
        reference_conv_backward(
            &sample.pixels,
            c.cin,
            h,
            w,
            w1,
            c.k,
            c.hidden1,
            &da1,
            gw1,
            gb1,
            None,
        );
        (loss, grad)
    }

    /// Mean loss and gradient over a batch, written into `bw.grad`.
    /// Zero heap allocations after `bw` is constructed: each thread
    /// slot folds its contiguous shard of the batch into its own
    /// workspace and accumulator, and the partials combine in fixed
    /// slot order (deterministic for a given thread count).
    // lint: hot-path
    pub fn batch_loss_grad_ws(&self, batch: &[Sample], bw: &mut BatchWorkspace) -> f64 {
        assert!(!batch.is_empty());
        let n = bw.slots.len().min(batch.len());
        bw.slots[..n].par_iter_mut().enumerate().for_each(|(c, slot)| {
            slot.loss = 0.0;
            slot.grad.fill(0.0);
            for s in &batch[chunk_range(batch.len(), n, c)] {
                slot.loss += self.loss_grad_acc(s, &mut slot.ws, &mut slot.grad);
            }
        });
        bw.grad.fill(0.0);
        let mut loss = 0.0f64;
        for slot in &bw.slots[..n] {
            loss += slot.loss;
            for (g, s) in bw.grad.iter_mut().zip(&slot.grad) {
                *g += *s;
            }
        }
        let inv = 1.0 / batch.len() as f32;
        bw.grad.iter_mut().for_each(|g| *g *= inv);
        loss / batch.len() as f64
    }

    /// Mean loss and mean gradient over a batch (allocating convenience
    /// wrapper over [`SegNet::batch_loss_grad_ws`]).
    pub fn batch_loss_grad(&self, batch: &[Sample]) -> (f64, Vec<f32>) {
        let mut bw = BatchWorkspace::new(&self.cfg);
        let loss = self.batch_loss_grad_ws(batch, &mut bw);
        (loss, bw.grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::segdata::{generate, DataConfig};

    fn tiny_cfg() -> NetConfig {
        NetConfig { height: 8, width: 8, cin: 3, hidden1: 4, hidden2: 5, n_classes: 4, k: 3 }
    }

    fn tiny_sample(seed: u64) -> Sample {
        let dc = DataConfig { height: 8, width: 8, ..DataConfig::default() };
        generate(&dc, seed, 0)
    }

    #[test]
    fn shapes_and_param_count() {
        let cfg = tiny_cfg();
        let net = SegNet::new(cfg, 1);
        assert_eq!(net.n_params(), cfg.n_params());
        assert_eq!(net.params().len(), net.n_params());
        let s = tiny_sample(2);
        assert_eq!(net.forward_logits(&s.pixels).len(), 4 * 64);
        assert_eq!(net.predict(&s.pixels).len(), 64);
    }

    #[test]
    fn params_roundtrip() {
        let cfg = tiny_cfg();
        let a = SegNet::new(cfg, 1);
        let mut b = SegNet::new(cfg, 2);
        assert_ne!(a.params(), b.params());
        b.set_params(a.params());
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn params_mut_is_the_storage() {
        let cfg = tiny_cfg();
        let mut net = SegNet::new(cfg, 1);
        net.params_mut()[0] = 42.0;
        assert_eq!(net.params()[0], 42.0);
    }

    #[test]
    fn layout_blocks_partition_the_vector() {
        let cfg = tiny_cfg();
        let layout = Layout::new(&cfg);
        assert_eq!(layout.n_params(), cfg.n_params());
        let flat = vec![0.0f32; cfg.n_params()];
        let parts = layout.split(&flat);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), cfg.n_params());
        assert_eq!(parts[0].len(), 9 * 3 * 4);
        assert_eq!(parts[1].len(), 4);
        assert_eq!(parts[4].len(), 5 * 4);
        assert_eq!(parts[5].len(), 4);
    }

    #[test]
    fn loss_is_log_nclasses_at_uniform_logits() {
        let cfg = tiny_cfg();
        let mut net = SegNet::new(cfg, 1);
        net.set_params(&vec![0.0; net.n_params()]);
        let (loss, _) = net.loss_grad(&tiny_sample(3));
        assert!((loss - (4.0f64).ln()).abs() < 1e-5, "loss {loss} vs ln 4");
    }

    /// The load-bearing test: analytic gradients match finite differences.
    #[test]
    fn gradient_check() {
        let cfg =
            NetConfig { height: 5, width: 5, cin: 3, hidden1: 3, hidden2: 3, n_classes: 4, k: 3 };
        let dc = DataConfig { height: 5, width: 5, ..DataConfig::default() };
        let sample = generate(&dc, 11, 0);
        // Seed chosen so no ReLU pre-activation sits within eps of its
        // kink: finite differences across a kink disagree with the
        // (one-sided) analytic gradient no matter how eps is tuned.
        let net = SegNet::new(cfg, 1);
        let (_, grad) = net.loss_grad(&sample);
        let params = net.params().to_vec();
        let eps = 3e-3f32;
        let mut checked = 0;
        // Check a spread of parameter indices across all layers.
        for idx in (0..net.n_params()).step_by(net.n_params() / 40 + 1) {
            let mut plus = net.clone();
            let mut p = params.clone();
            p[idx] += eps;
            plus.set_params(&p);
            let (lp, _) = plus.loss_grad(&sample);
            let mut minus = net.clone();
            p[idx] -= 2.0 * eps;
            minus.set_params(&p);
            let (lm, _) = minus.loss_grad(&sample);
            let numeric = ((lp - lm) / (2.0 * f64::from(eps))) as f32;
            let analytic = grad[idx];
            let denom = numeric.abs().max(analytic.abs()).max(1e-4);
            assert!(
                (numeric - analytic).abs() / denom < 0.08,
                "param {idx}: numeric {numeric} vs analytic {analytic}"
            );
            checked += 1;
        }
        assert!(checked >= 30);
    }

    #[test]
    fn optimized_matches_reference_loss_grad() {
        let cfg = tiny_cfg();
        let net = SegNet::new(cfg, 9);
        let s = tiny_sample(4);
        let (lo, go) = net.loss_grad(&s);
        let (lr, gr) = net.reference_loss_grad(&s);
        assert!((lo - lr).abs() < 1e-6, "loss {lo} vs reference {lr}");
        for (i, (a, b)) in go.iter().zip(&gr).enumerate() {
            assert!((a - b).abs() < 1e-4, "grad[{i}]: optimized {a} vs reference {b}");
        }
    }

    #[test]
    fn workspace_reuse_is_identical() {
        // The same workspace reused across samples must give bitwise
        // identical results to a fresh one (no state leaks between
        // calls).
        let cfg = tiny_cfg();
        let net = SegNet::new(cfg, 9);
        let (s1, s2) = (tiny_sample(4), tiny_sample(5));
        let mut ws = Workspace::new(&cfg);
        let mut g_reused = vec![0.0f32; net.n_params()];
        net.loss_grad_acc(&s1, &mut ws, &mut g_reused);
        g_reused.fill(0.0);
        let l_reused = net.loss_grad_acc(&s2, &mut ws, &mut g_reused);
        let (l_fresh, g_fresh) = net.loss_grad(&s2);
        assert_eq!(l_reused, l_fresh);
        assert_eq!(g_reused, g_fresh);
    }

    #[test]
    fn batch_gradient_is_mean_of_samples() {
        let cfg = tiny_cfg();
        let net = SegNet::new(cfg, 1);
        let s1 = tiny_sample(5);
        let s2 = tiny_sample(6);
        let (l1, g1) = net.loss_grad(&s1);
        let (l2, g2) = net.loss_grad(&s2);
        let (lb, gb) = net.batch_loss_grad(&[s1, s2]);
        assert!((lb - (l1 + l2) / 2.0).abs() < 1e-9);
        for i in 0..gb.len() {
            assert!((gb[i] - (g1[i] + g2[i]) / 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_workspace_reuse_is_deterministic() {
        let cfg = tiny_cfg();
        let net = SegNet::new(cfg, 1);
        let batch: Vec<Sample> = (0..5).map(tiny_sample).collect();
        let mut bw = BatchWorkspace::new(&cfg);
        let l1 = net.batch_loss_grad_ws(&batch, &mut bw);
        let g1 = bw.grad.clone();
        let l2 = net.batch_loss_grad_ws(&batch, &mut bw);
        assert_eq!(l1, l2);
        assert_eq!(g1, bw.grad);
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let cfg = tiny_cfg();
        let mut net = SegNet::new(cfg, 1);
        let s = tiny_sample(8);
        let (l0, g) = net.loss_grad(&s);
        for (pi, gi) in net.params_mut().iter_mut().zip(&g) {
            *pi -= 2.0 * gi;
        }
        let (l1, _) = net.loss_grad(&s);
        assert!(l1 < l0, "loss must drop: {l0} -> {l1}");
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let cfg = tiny_cfg();
        assert_eq!(SegNet::new(cfg, 3).params(), SegNet::new(cfg, 3).params());
        assert_ne!(SegNet::new(cfg, 3).params(), SegNet::new(cfg, 4).params());
    }

    #[test]
    fn chunk_range_partitions() {
        for len in [1usize, 2, 7, 16] {
            for n in 1..=4usize.min(len) {
                let mut covered = 0;
                let mut prev = 0;
                for c in 0..n {
                    let r = chunk_range(len, n, c);
                    assert_eq!(r.start, prev);
                    prev = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, len);
            }
        }
    }
}
