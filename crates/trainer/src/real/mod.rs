//! The real (numerical) half of the reproduction: a from-scratch
//! mini-framework trained data-parallel across threads with genuine
//! gradient allreduce.

pub mod checkpoint;
pub mod fp16;
pub mod miou;
pub mod net;
pub mod pipeline;
pub mod pool;
pub mod segdata;
pub mod sgd;
pub mod train;
pub mod worker;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use fp16::{compress_gradients, roundtrip};
pub use miou::Confusion;
pub use net::{BatchWorkspace, NetConfig, SegNet, Workspace};
pub use segdata::{generate, generate_batch, DataConfig, Sample};
pub use sgd::{LrSchedule, MomentumSgd};
pub use train::{
    evaluate, train, try_train, CheckpointConfig, EvalPoint, FaultToleranceConfig, TrainConfig,
    TrainError, TrainResult,
};
pub use worker::{preset, run_worker, DegradeRecord, WorkerError, WorkerOutcome};
