//! Momentum SGD with the large-batch learning-rate recipe the paper's
//! distributed training uses: linear LR scaling with worker count,
//! gradual warmup (Goyal et al. 2017), and DeepLab's "poly" decay.

/// Learning-rate schedule configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrSchedule {
    /// Base LR for the reference (single-worker) batch size.
    pub base_lr: f32,
    /// Linear-scaling multiplier (usually the worker count).
    pub scale: f32,
    /// Steps of linear warmup from `base_lr` to `base_lr × scale`.
    pub warmup_steps: usize,
    /// Total training steps (for poly decay).
    pub total_steps: usize,
    /// Poly decay power; DeepLab uses 0.9. 0 disables decay.
    pub poly_power: f32,
}

impl LrSchedule {
    /// Constant LR (no scaling/warmup/decay) — for unit tests.
    pub fn constant(lr: f32, total_steps: usize) -> Self {
        LrSchedule { base_lr: lr, scale: 1.0, warmup_steps: 0, total_steps, poly_power: 0.0 }
    }

    /// The paper-style recipe for `workers` data-parallel workers.
    pub fn scaled(base_lr: f32, workers: usize, warmup_steps: usize, total_steps: usize) -> Self {
        LrSchedule { base_lr, scale: workers as f32, warmup_steps, total_steps, poly_power: 0.9 }
    }

    /// LR at `step` (0-based).
    pub fn at(&self, step: usize) -> f32 {
        let peak = self.base_lr * self.scale;
        let lr = if self.warmup_steps > 0 && step < self.warmup_steps {
            // Linear ramp from base_lr to peak.
            self.base_lr + (peak - self.base_lr) * (step as f32 + 1.0) / self.warmup_steps as f32
        } else {
            peak
        };
        if self.poly_power > 0.0 && self.total_steps > 0 {
            let frac = (step as f32 / self.total_steps as f32).min(1.0);
            lr * (1.0 - frac).max(0.0).powf(self.poly_power)
        } else {
            lr
        }
    }
}

/// Momentum SGD over a flat parameter vector, with optional (decoupled
/// from the schedule, coupled to the gradient — classic L2) weight decay.
#[derive(Debug, Clone)]
pub struct MomentumSgd {
    pub schedule: LrSchedule,
    pub momentum: f32,
    pub weight_decay: f32,
    velocity: Vec<f32>,
    step: usize,
}

impl MomentumSgd {
    pub fn new(schedule: LrSchedule, momentum: f32, n_params: usize) -> Self {
        assert!((0.0..1.0).contains(&momentum));
        MomentumSgd {
            schedule,
            momentum,
            weight_decay: 0.0,
            velocity: vec![0.0; n_params],
            step: 0,
        }
    }

    /// Builder-style: set classic L2 weight decay (DeepLab uses 4e-5).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0);
        self.weight_decay = wd;
        self
    }

    pub fn step_index(&self) -> usize {
        self.step
    }

    /// The momentum buffer, flat — what a checkpoint must persist for a
    /// resume to be bit-exact.
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }

    /// Restore optimizer state from a checkpoint: step counter and
    /// momentum buffer. The schedule/momentum/decay hyperparameters are
    /// reconstructed from config, not persisted.
    pub fn restore(&mut self, step: usize, velocity: &[f32]) {
        assert_eq!(velocity.len(), self.velocity.len(), "velocity length");
        self.step = step;
        self.velocity.copy_from_slice(velocity);
    }

    /// Apply one update in place: `v = µv + (g + wd·p); p -= lr·v`.
    pub fn apply(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), self.velocity.len(), "parameter count");
        assert_eq!(grad.len(), self.velocity.len(), "gradient count");
        let lr = self.schedule.at(self.step);
        for ((p, v), &g) in params.iter_mut().zip(&mut self.velocity).zip(grad) {
            *v = self.momentum * *v + (g + self.weight_decay * *p);
            *p -= lr * *v;
        }
        self.step += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_constant() {
        let s = LrSchedule::constant(0.1, 100);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(99), 0.1);
    }

    #[test]
    fn warmup_ramps_to_scaled_peak() {
        let s = LrSchedule { poly_power: 0.0, ..LrSchedule::scaled(0.01, 8, 10, 100) };
        assert!(s.at(0) < s.at(5));
        assert!(s.at(5) < s.at(9));
        assert!((s.at(10) - 0.08).abs() < 1e-7, "peak = 8 × base");
        assert!(s.at(0) > 0.01 && s.at(0) < 0.08);
    }

    #[test]
    fn poly_decay_reaches_zero() {
        let s = LrSchedule::scaled(0.01, 4, 0, 100);
        assert!(s.at(0) > s.at(50));
        assert!(s.at(50) > s.at(99));
        assert!(s.at(100) == 0.0);
        assert!(s.at(1000) == 0.0, "clamped past the end");
    }

    #[test]
    fn deeplab_poly_power() {
        let s = LrSchedule::scaled(0.007, 1, 0, 10);
        // lr(5) = 0.007 × (0.5)^0.9
        assert!((s.at(5) - 0.007 * 0.5f32.powf(0.9)).abs() < 1e-8);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = MomentumSgd::new(LrSchedule::constant(1.0, 10), 0.5, 1);
        let mut p = vec![0.0f32];
        opt.apply(&mut p, &[1.0]); // v=1, p=-1
        assert_eq!(p, vec![-1.0]);
        opt.apply(&mut p, &[1.0]); // v=1.5, p=-2.5
        assert_eq!(p, vec![-2.5]);
        assert_eq!(opt.step_index(), 2);
    }

    #[test]
    fn zero_momentum_is_plain_sgd() {
        let mut opt = MomentumSgd::new(LrSchedule::constant(0.5, 10), 0.0, 2);
        let mut p = vec![1.0f32, 2.0];
        opt.apply(&mut p, &[2.0, -2.0]);
        assert_eq!(p, vec![0.0, 3.0]);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut opt =
            MomentumSgd::new(LrSchedule::constant(0.1, 10), 0.0, 1).with_weight_decay(0.5);
        let mut p = vec![2.0f32];
        opt.apply(&mut p, &[0.0]); // pure decay: v = 0.5*2 = 1, p = 2 - 0.1
        assert!((p[0] - 1.9).abs() < 1e-7);
        let mut no_wd = MomentumSgd::new(LrSchedule::constant(0.1, 10), 0.0, 1);
        let mut q = vec![2.0f32];
        no_wd.apply(&mut q, &[0.0]);
        assert_eq!(q[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "parameter count")]
    fn mismatched_sizes_panic() {
        let mut opt = MomentumSgd::new(LrSchedule::constant(0.5, 10), 0.0, 2);
        let mut p = vec![1.0f32];
        opt.apply(&mut p, &[1.0]);
    }
}
