//! Synthetic semantic-segmentation dataset: colored geometric shapes on a
//! noisy background, with per-pixel class labels.
//!
//! This stands in for Pascal VOC (see DESIGN.md §2): the accuracy
//! experiment's transferable claim is that data-parallel gradient
//! averaging reaches the same mIoU as serial training, which this dataset
//! lets us demonstrate with real math at laptop scale. Classes:
//!
//! * 0 — background
//! * 1 — disk
//! * 2 — square
//! * 3 — cross
//!
//! Each class has a characteristic (noisy) color and shape, so a small
//! conv net must use both local color and neighborhood structure.

use rand::Rng;
use summit_metrics::rng::rng_for_indexed;

/// One image: channel-major `c × h × w` floats in roughly [0, 1], plus a
/// per-pixel label map.
#[derive(Debug, Clone)]
pub struct Sample {
    pub pixels: Vec<f32>,
    pub labels: Vec<u8>,
}

/// Dataset configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataConfig {
    pub height: usize,
    pub width: usize,
    pub channels: usize,
    pub n_classes: usize,
    /// Per-pixel Gaussian-ish noise amplitude.
    pub noise: f32,
}

impl Default for DataConfig {
    fn default() -> Self {
        DataConfig { height: 24, width: 24, channels: 3, n_classes: 4, noise: 0.12 }
    }
}

impl DataConfig {
    pub fn pixels_len(&self) -> usize {
        self.channels * self.height * self.width
    }

    pub fn labels_len(&self) -> usize {
        self.height * self.width
    }
}

/// Class base colors (RGB) — noisy in the generator.
const COLORS: [[f32; 3]; 4] = [
    [0.15, 0.15, 0.15], // background: dark grey
    [0.85, 0.25, 0.20], // disk: red-ish
    [0.20, 0.80, 0.25], // square: green-ish
    [0.25, 0.30, 0.85], // cross: blue-ish
];

/// Deterministically generate sample `index` of the dataset with `seed`.
pub fn generate(cfg: &DataConfig, seed: u64, index: u64) -> Sample {
    assert!(cfg.n_classes == 4, "generator draws 4 classes");
    assert!(cfg.channels == 3, "generator draws RGB");
    let mut rng = rng_for_indexed(seed, "segdata", index);
    let (h, w) = (cfg.height, cfg.width);
    let mut labels = vec![0u8; h * w];

    // 1–3 shapes, later shapes draw over earlier ones.
    let n_shapes = rng.gen_range(1..=3);
    for _ in 0..n_shapes {
        let class = rng.gen_range(1..=3u8);
        let cy = rng.gen_range(0..h) as i64;
        let cx = rng.gen_range(0..w) as i64;
        let r_lo = (h / 8).max(1);
        let r = rng.gen_range(r_lo..=(h / 3).max(r_lo)) as i64;
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let (dy, dx) = (y - cy, x - cx);
                let inside = match class {
                    1 => dy * dy + dx * dx <= r * r,
                    2 => dy.abs() <= r && dx.abs() <= r,
                    3 => {
                        (dy.abs() <= r / 2 && dx.abs() <= r) || (dx.abs() <= r / 2 && dy.abs() <= r)
                    }
                    _ => unreachable!(),
                };
                if inside {
                    labels[(y * w as i64 + x) as usize] = class;
                }
            }
        }
    }

    // Paint pixels: class color + uniform noise.
    let mut pixels = vec![0.0f32; cfg.pixels_len()];
    for (i, &lab) in labels.iter().enumerate() {
        let base = COLORS[lab as usize];
        for c in 0..3 {
            let noise = (rng.gen::<f32>() - 0.5) * 2.0 * cfg.noise;
            pixels[c * h * w + i] = (base[c] + noise).clamp(0.0, 1.0);
        }
    }
    Sample { pixels, labels }
}

/// Generate a batch of consecutive samples `[start, start + n)`.
pub fn generate_batch(cfg: &DataConfig, seed: u64, start: u64, n: usize) -> Vec<Sample> {
    (0..n as u64).map(|i| generate(cfg, seed, start + i)).collect()
}

/// Class frequencies over `n` samples (sanity/reporting).
pub fn class_histogram(cfg: &DataConfig, seed: u64, n: u64) -> Vec<f64> {
    let mut counts = vec![0u64; cfg.n_classes];
    for i in 0..n {
        for &l in &generate(cfg, seed, i).labels {
            counts[l as usize] += 1;
        }
    }
    let total: u64 = counts.iter().sum();
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = DataConfig::default();
        let a = generate(&cfg, 42, 7);
        let b = generate(&cfg, 42, 7);
        assert_eq!(a.pixels, b.pixels);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_indices_differ() {
        let cfg = DataConfig::default();
        let a = generate(&cfg, 42, 0);
        let b = generate(&cfg, 42, 1);
        assert_ne!(a.labels, b.labels);
    }

    #[test]
    fn shapes_and_sizes() {
        let cfg = DataConfig::default();
        let s = generate(&cfg, 1, 0);
        assert_eq!(s.pixels.len(), cfg.pixels_len());
        assert_eq!(s.labels.len(), cfg.labels_len());
        assert!(s.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(s.labels.iter().all(|&l| l < cfg.n_classes as u8));
    }

    #[test]
    fn every_class_appears_across_the_dataset() {
        let cfg = DataConfig::default();
        let hist = class_histogram(&cfg, 3, 40);
        assert_eq!(hist.len(), 4);
        for (c, &f) in hist.iter().enumerate() {
            assert!(f > 0.01, "class {c} almost absent: {f}");
        }
        // Background dominates but not overwhelmingly.
        assert!(hist[0] > 0.3 && hist[0] < 0.95, "background frac = {}", hist[0]);
    }

    #[test]
    fn colors_separate_classes_on_average() {
        let cfg = DataConfig::default();
        let s = generate(&cfg, 9, 3);
        let (h, w) = (cfg.height, cfg.width);
        // Mean red channel over disk pixels should beat background's.
        let mut disk = (0.0f32, 0usize);
        let mut bg = (0.0f32, 0usize);
        for i in 0..h * w {
            let r = s.pixels[i]; // channel 0
            match s.labels[i] {
                1 => disk = (disk.0 + r, disk.1 + 1),
                0 => bg = (bg.0 + r, bg.1 + 1),
                _ => {}
            }
        }
        if disk.1 > 0 && bg.1 > 0 {
            assert!(disk.0 / disk.1 as f32 > bg.0 / bg.1 as f32 + 0.3);
        }
    }

    #[test]
    fn batch_is_consecutive() {
        let cfg = DataConfig::default();
        let batch = generate_batch(&cfg, 5, 10, 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].labels, generate(&cfg, 5, 10).labels);
        assert_eq!(batch[2].labels, generate(&cfg, 5, 12).labels);
    }
}

/// Apply a deterministic augmentation to a sample: horizontal and/or
/// vertical flips chosen by (seed, index), keeping pixels and labels
/// aligned — the crop-free core of segmentation augmentation.
pub fn augment(cfg: &DataConfig, sample: &Sample, seed: u64, index: u64) -> Sample {
    let mut rng = rng_for_indexed(seed, "augment", index);
    let (h, w, c) = (cfg.height, cfg.width, cfg.channels);
    let hflip: bool = rng.gen();
    let vflip: bool = rng.gen();
    if !hflip && !vflip {
        return sample.clone();
    }
    let map = |y: usize, x: usize| -> (usize, usize) {
        (if vflip { h - 1 - y } else { y }, if hflip { w - 1 - x } else { x })
    };
    let mut out =
        Sample { pixels: vec![0.0; sample.pixels.len()], labels: vec![0; sample.labels.len()] };
    for y in 0..h {
        for x in 0..w {
            let (sy, sx) = map(y, x);
            out.labels[y * w + x] = sample.labels[sy * w + sx];
            for ch in 0..c {
                out.pixels[ch * h * w + y * w + x] = sample.pixels[ch * h * w + sy * w + sx];
            }
        }
    }
    out
}

#[cfg(test)]
mod augment_tests {
    use super::*;

    #[test]
    fn augmentation_is_deterministic_and_label_aligned() {
        let cfg = DataConfig::default();
        let s = generate(&cfg, 7, 0);
        let a1 = augment(&cfg, &s, 11, 3);
        let a2 = augment(&cfg, &s, 11, 3);
        assert_eq!(a1.pixels, a2.pixels);
        assert_eq!(a1.labels, a2.labels);
        // Class histogram is flip-invariant.
        let mut h0 = [0u32; 4];
        let mut h1 = [0u32; 4];
        for (&a, &b) in s.labels.iter().zip(&a1.labels) {
            h0[a as usize] += 1;
            h1[b as usize] += 1;
        }
        assert_eq!(h0, h1);
    }

    #[test]
    fn some_index_actually_flips() {
        let cfg = DataConfig::default();
        let s = generate(&cfg, 7, 1);
        let flipped = (0..16u64).any(|i| augment(&cfg, &s, 13, i).labels != s.labels);
        assert!(flipped, "at least one of 16 draws must flip a non-symmetric image");
    }

    #[test]
    fn pixel_label_correspondence_preserved() {
        // The color statistics per class must survive the flip: check the
        // mean red channel over the disk class.
        let cfg = DataConfig::default();
        let s = generate(&cfg, 9, 3);
        let a = augment(&cfg, &s, 5, 2);
        let mean_red = |smpl: &Sample| {
            let (mut sum, mut n) = (0.0f32, 0);
            for i in 0..cfg.labels_len() {
                if smpl.labels[i] == 1 {
                    sum += smpl.pixels[i];
                    n += 1;
                }
            }
            if n == 0 {
                f32::NAN
            } else {
                sum / n as f32
            }
        };
        let (m0, m1) = (mean_red(&s), mean_red(&a));
        if m0.is_finite() {
            assert!((m0 - m1).abs() < 1e-5, "{m0} vs {m1}");
        }
    }
}
