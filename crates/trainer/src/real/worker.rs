//! One rank of the real trainer as a separate OS process.
//!
//! [`run_worker`] is the multi-process twin of
//! [`try_train`](super::train::try_train)'s classic path: the same
//! seed-derived initialization, the same original-id shard addressing,
//! the same codec roundtrip, and the same schedule — executed over a
//! [`transport::Wire`] by a [`collectives::PeerExecutor`] instead of
//! across threads. Because every applied payload and every combine is
//! ordered by the schedule, a multi-process run is bit-identical to
//! the threaded run for the same seed (the socket-parity integration
//! test pins this).
//!
//! # The commit protocol
//!
//! Crash tolerance is where processes genuinely differ from threads:
//! when a rank is SIGKILLed mid-step, some survivors may have finished
//! the collective while others must abort — under e.g. recursive
//! doubling the dead rank's last sends can complete one survivor's
//! exchange posthumously (kernel-buffered bytes drain before EOF). If
//! each survivor decided alone, they would diverge. So the optimizer
//! update is gated by the launcher acting as a commit coordinator over
//! each worker's control stream:
//!
//! 1. A worker that completes step `s`'s exchange sends `StepDone{s,
//!    era}` and *waits* — it does not apply the update.
//! 2. The coordinator broadcasts `Commit{s}` only when every live
//!    worker has voted for `s` in the current era.
//! 3. On a worker death (control-stream EOF, heartbeat silence, or a
//!    deliberate chaos kill), the coordinator instead bumps the era,
//!    discards the round's votes, and broadcasts `Degrade{dead, era}`.
//!
//! Control streams are ordered, so every survivor observes the same
//! prefix of `Commit`s before the `Degrade` — all survivors agree on
//! the degrade step `d` without any inter-worker agreement protocol.
//! On `Degrade` a worker restores its pre-exchange gradient snapshot,
//! removes the dead from its live set, rebuilds **and re-verifies**
//! the schedule over the survivors, bumps the transport era (sequence
//! numbers restart; stale-era frames are dropped on arrival), and
//! re-executes the exchange. The optimizer is therefore applied
//! exactly once per step, on identical bytes, at every survivor —
//! which is what makes the chaos result reproducible by a threaded
//! run with a crash injected at `(d, round 0)`.

use std::time::Duration;

use collectives::compression::{self, CodecKind, EncodeScratch, ErrorFeedback};
use collectives::{CtlSignal, PeerExecError, PeerExecutor, ReduceOp, Schedule, Violation};
use faults::RetryPolicy;
use summit_metrics::rng::derive_seed;
use trace::telemetry::{metric, WorkerTelemetry};
use transport::{Frame, FrameKind, PeerConn, Wire, WireError};

use super::net::{BatchWorkspace, SegNet};
use super::segdata::generate_batch;
use super::sgd::{LrSchedule, MomentumSgd};
use super::train::TrainConfig;

/// One elastic degradation as the worker observed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradeRecord {
    /// The training step that was re-executed over the survivors.
    pub step: usize,
    /// Original ids declared dead by this degrade.
    pub dead: Vec<usize>,
    /// The era entered after the degrade.
    pub era: u32,
}

/// What one worker process produced.
#[derive(Debug, Clone)]
pub struct WorkerOutcome {
    pub rank: usize,
    pub final_params: Vec<f32>,
    /// This worker's own per-step training loss (committed steps only).
    pub step_losses: Vec<f64>,
    /// Original ids alive at the end, ascending.
    pub survivors: Vec<usize>,
    pub degradations: Vec<DegradeRecord>,
}

/// Why a worker run failed.
#[derive(Debug)]
pub enum WorkerError {
    /// The (initial or rebuilt) schedule failed static verification.
    Verification(Vec<Violation>),
    /// The peer executor failed unrecoverably.
    Exec(PeerExecError),
    /// The commit protocol broke down (coordinator gone or insane).
    Coordinator(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Verification(v) => write!(f, "schedule failed verification: {v:?}"),
            WorkerError::Exec(e) => write!(f, "peer executor failed: {e}"),
            WorkerError::Coordinator(why) => write!(f, "commit protocol failed: {why}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Shared named configs so the launcher, the workers, and the parity
/// tests construct the *same* [`TrainConfig`] from four scalars.
/// `tiny` mirrors the trainer test fixture (10×10 data, 2 per worker);
/// `quick` is [`TrainConfig::quick`].
pub fn preset(name: &str, workers: usize, steps: usize, seed: u64) -> TrainConfig {
    let mut cfg = match name {
        "quick" => TrainConfig::quick(workers),
        "tiny" => {
            use super::net::NetConfig;
            use super::segdata::DataConfig;
            let mut cfg = TrainConfig::quick(workers);
            cfg.data = DataConfig { height: 10, width: 10, ..DataConfig::default() };
            cfg.net = NetConfig {
                height: 10,
                width: 10,
                cin: 3,
                hidden1: 4,
                hidden2: 6,
                n_classes: 4,
                k: 3,
            };
            cfg.batch_per_worker = 2;
            cfg.warmup_steps = 5;
            cfg.eval_samples = 16;
            cfg
        }
        other => panic!("unknown preset {other:?} (expected tiny|quick)"),
    };
    cfg.workers = workers;
    cfg.steps = steps;
    cfg.seed = seed;
    cfg
}

/// What a completed step's commit wait resolved to.
enum Verdict {
    Commit,
    Degrade(DegradeRecord),
}

/// Run this process's rank of `cfg` over `wire`, arbitrated by the
/// coordinator on `ctl`. Applies exactly the classic-path math of
/// `try_train` for `wire.rank()`.
///
/// With `telemetry` set, the worker folds step counters, wire stats,
/// and flight-recorder events into the shared [`WorkerTelemetry`] and
/// pushes one synchronous snapshot over `ctl` at every step begin (the
/// heartbeat thread pushes the rest at beacon cadence — see
/// `PeerConn::solo_with_telemetry`). Telemetry never touches the
/// training math: a telemetry run is bit-identical to a plain one.
pub fn run_worker(
    cfg: &TrainConfig,
    wire: &dyn Wire,
    ctl: &PeerConn,
    policy: RetryPolicy,
    telemetry: Option<&WorkerTelemetry>,
) -> Result<WorkerOutcome, WorkerError> {
    let rank = wire.rank();
    let n_params = cfg.net.n_params();
    // One trace lane per process, keyed by original rank so the
    // launcher's merged timeline renders one row group per worker.
    let lane = cfg.trace.as_ref().map(|ts| {
        let process = format!("rank {rank} (os pid {})", std::process::id());
        ts.recorder.lane(rank as u32, 0, &process, "train step")
    });
    let lr = LrSchedule {
        base_lr: cfg.base_lr,
        scale: cfg.lr_scale,
        warmup_steps: cfg.warmup_steps,
        total_steps: cfg.steps,
        poly_power: 0.9,
    };
    let mut net = SegNet::new(cfg.net, derive_seed(cfg.seed, "init"));
    let mut opt = MomentumSgd::new(lr, cfg.momentum, n_params).with_weight_decay(cfg.weight_decay);
    let mut bw = BatchWorkspace::new(&cfg.net);
    let mut grad = vec![0.0f32; n_params];
    let mut snapshot = vec![0.0f32; n_params];

    let mut live: Vec<usize> = (0..cfg.workers).collect();
    let mut schedule = build_verified(cfg, live.len(), n_params)?;
    let mut exec = PeerExecutor::new(wire, policy);

    let codec = cfg.effective_codec();
    let mut ef = if cfg.error_feedback && codec.is_lossy() {
        Some(ErrorFeedback::new(n_params))
    } else {
        None
    };
    let mut codec_scratch = EncodeScratch::new();
    codec_scratch.reserve(codec, n_params);

    let mut step_losses = Vec::with_capacity(cfg.steps);
    let mut degradations: Vec<DegradeRecord> = Vec::new();
    // Reused telemetry payload buffer: synchronous snapshot sends
    // allocate nothing once it is warm.
    let mut tel_buf: Vec<u8> = Vec::new();

    for step in 0..cfg.steps {
        let step_t0 = std::time::Instant::now();
        if let Some(tel) = telemetry {
            // Announce the step *before* any mesh traffic: no rank can
            // complete step S's exchange without this rank's sends, so
            // by the time a StepDone{S} vote reaches the coordinator,
            // this frame (ordered ahead on the control stream) is
            // already queued there — the post-mortem for a rank killed
            // at S always shows last_step == S.
            tel.begin_step(step as u32);
            tel.add(metric::STEPS_BEGUN, 1);
            tel.flight("STEP", "begin", step as u32, 0, 0);
            fold_wire_stats(tel, &exec);
            send_telemetry(ctl, tel, &mut tel_buf);
        }
        // Gradient computation — identical addressing to try_train's
        // classic path: the shard layout keys off the ORIGINAL world
        // (`cfg.workers`, `rank`), so each survivor keeps its slice of
        // the data stream no matter who else has died.
        let compute_t0 = lane.as_ref().map(|l| l.now_us());
        let compute_t0i = std::time::Instant::now();
        let start = (step * cfg.global_batch()) as u64;
        let micro = cfg.workers * cfg.batch_per_worker;
        let mut loss_sum = 0.0f64;
        grad.fill(0.0);
        for m in 0..cfg.accumulation_steps {
            let base = start + (m * micro) as u64 + (rank * cfg.batch_per_worker) as u64;
            let mut shard = generate_batch(&cfg.data, cfg.seed, base, cfg.batch_per_worker);
            if cfg.augment {
                for (i, s) in shard.iter_mut().enumerate() {
                    *s = super::segdata::augment(&cfg.data, s, cfg.seed, base + i as u64);
                }
            }
            loss_sum += net.batch_loss_grad_ws(&shard, &mut bw);
            for (a, gi) in grad.iter_mut().zip(&bw.grad) {
                *a += gi;
            }
        }
        let inv = 1.0 / cfg.accumulation_steps as f32;
        grad.iter_mut().for_each(|a| *a *= inv);
        let loss = loss_sum / cfg.accumulation_steps as f64;

        // Wire codec on the local-mean gradient, exactly as try_train.
        if codec == CodecKind::Fp16 && !cfg.error_feedback {
            super::fp16::compress_gradients(&mut grad);
        } else if codec.is_lossy() {
            match ef.as_mut() {
                Some(ef) => ef.roundtrip(codec, &mut grad, &mut codec_scratch),
                None => compression::roundtrip(codec, &mut grad, &mut codec_scratch),
            }
        }

        if let (Some(l), Some(t0)) = (&lane, compute_t0) {
            l.record("COMPUTE", "grad_compute", t0, l.now_us() - t0);
        }
        if let Some(tel) = telemetry {
            tel.flight(
                "COMPUTE",
                "grad_compute",
                step as u32,
                compute_t0i.elapsed().as_micros() as u32,
                0,
            );
        }

        // The exchange + commit loop: re-entered once per degrade.
        snapshot.copy_from_slice(&grad);
        loop {
            let exchange_t0 = lane.as_ref().map(|l| l.now_us());
            let exchange_t0i = std::time::Instant::now();
            exec.begin_step(step);
            let mut announced: Option<Frame> = None;
            let result = {
                let announced = &mut announced;
                exec.allreduce(&schedule, &mut grad, ReduceOp::Average, &live, &mut || match ctl
                    .recv_timeout(Duration::ZERO)
                {
                    Ok(f) if f.kind == FrameKind::Degrade => {
                        *announced = Some(f);
                        CtlSignal::Abort
                    }
                    _ => CtlSignal::Continue,
                })
            };
            if let (Some(l), Some(t0)) = (&lane, exchange_t0) {
                l.record("MPI_ALLREDUCE", "exchange", t0, l.now_us() - t0);
            }
            let verdict = match result {
                Ok(()) => {
                    if let Some(tel) = telemetry {
                        tel.flight(
                            "MPI_ALLREDUCE",
                            "exchange",
                            step as u32,
                            exchange_t0i.elapsed().as_micros() as u32,
                            0,
                        );
                        tel.flight("CTL", "vote", step as u32, 0, exec.era() as u64);
                        // Refresh the wire gauges before voting: if this
                        // rank dies or degrades between vote and commit,
                        // the heartbeat-shipped snapshots (and the
                        // post-mortem) must show the exchange it just
                        // ran, not the stats of its last committed step.
                        fold_wire_stats(tel, &exec);
                    }
                    let mut vote =
                        Frame::control(FrameKind::StepDone, rank as u16, exec.era(), step as u32);
                    vote.seq = step as u64;
                    ctl.send(&vote).map_err(|e| {
                        WorkerError::Coordinator(format!("vote for step {step} failed: {e}"))
                    })?;
                    let vote_t0 = std::time::Instant::now();
                    let v = await_verdict(ctl, &policy, step)?;
                    if let Some(tel) = telemetry {
                        tel.set(metric::COMMIT_WAIT_US, vote_t0.elapsed().as_micros() as u64);
                    }
                    v
                }
                Err(PeerExecError::Aborted) => {
                    let f = announced.take().ok_or_else(|| {
                        WorkerError::Coordinator("aborted without a degrade frame".into())
                    })?;
                    Verdict::Degrade(parse_degrade(&f, step)?)
                }
                Err(PeerExecError::PeerDead { .. }) => {
                    // The coordinator sees the same death (control EOF /
                    // silence) and owns the verdict; a peer that died
                    // mid-exchange cannot have voted, so no Commit for
                    // this step can exist — only a Degrade can arrive.
                    match await_verdict(ctl, &policy, step)? {
                        Verdict::Commit => {
                            return Err(WorkerError::Coordinator(format!(
                                "commit for step {step} after a peer died mid-exchange"
                            )))
                        }
                        d => d,
                    }
                }
                Err(e) => return Err(WorkerError::Exec(e)),
            };
            match verdict {
                Verdict::Commit => {
                    opt.apply(net.params_mut(), &grad);
                    if let Some(tel) = telemetry {
                        tel.add(metric::STEPS_COMMITTED, 1);
                        tel.set(metric::STEP_LATENCY_US, step_t0.elapsed().as_micros() as u64);
                        fold_wire_stats(tel, &exec);
                        tel.flight("CTL", "commit", step as u32, 0, 0);
                    }
                    break;
                }
                Verdict::Degrade(record) => {
                    if let Some(l) = &lane {
                        l.instant("FAULT", "degrade", l.now_us());
                    }
                    if let Some(tel) = telemetry {
                        tel.add(metric::DEGRADES, 1);
                        let dead0 = record.dead.first().copied().unwrap_or(0) as u64;
                        tel.flight("FAULT", "degrade", step as u32, 0, dead0);
                        fold_wire_stats(tel, &exec);
                    }
                    // Restore the pre-exchange gradient, shrink the
                    // world, rebuild + RE-VERIFY the schedule, and step
                    // the transport into the announced era.
                    grad.copy_from_slice(&snapshot);
                    live.retain(|id| !record.dead.contains(id));
                    schedule = build_verified(cfg, live.len(), n_params)?;
                    while exec.era() < record.era {
                        exec.bump_era();
                    }
                    degradations.push(record);
                }
            }
        }
        step_losses.push(loss);
    }

    if let Some(tel) = telemetry {
        // One final synchronous snapshot so the coordinator's last view
        // of this rank carries the full committed count.
        tel.flight("STEP", "finished", cfg.steps as u32, 0, 0);
        send_telemetry(ctl, tel, &mut tel_buf);
    }

    Ok(WorkerOutcome {
        rank,
        final_params: net.params().to_vec(),
        step_losses,
        survivors: live,
        degradations,
    })
}

fn build_verified(
    cfg: &TrainConfig,
    n_ranks: usize,
    n_elems: usize,
) -> Result<Schedule, WorkerError> {
    let schedule = cfg.algo.build(n_ranks, n_elems);
    schedule.verify_allreduce().map_err(WorkerError::Verification)?;
    Ok(schedule)
}

/// Block on the control stream until the coordinator resolves `step`.
/// `Start` leftovers are ignored; anything else is protocol insanity.
fn await_verdict(
    ctl: &PeerConn,
    policy: &RetryPolicy,
    step: usize,
) -> Result<Verdict, WorkerError> {
    loop {
        match ctl.recv_timeout(policy.tick) {
            Ok(f) => match f.kind {
                FrameKind::Commit => {
                    if f.step as usize != step {
                        return Err(WorkerError::Coordinator(format!(
                            "commit for step {} while waiting on step {step}",
                            f.step
                        )));
                    }
                    return Ok(Verdict::Commit);
                }
                FrameKind::Degrade => return Ok(Verdict::Degrade(parse_degrade(&f, step)?)),
                FrameKind::Start => {}
                other => {
                    return Err(WorkerError::Coordinator(format!(
                        "unexpected {other:?} while waiting on step {step}"
                    )))
                }
            },
            Err(WireError::Timeout) => {
                // The coordinator may legitimately be waiting on slower
                // workers' compute; only sustained heartbeat silence
                // condemns it.
                if ctl.silence() > policy.death_threshold().saturating_mul(4) {
                    return Err(WorkerError::Coordinator(format!(
                        "coordinator silent past the death threshold at step {step}"
                    )));
                }
            }
            Err(e) => {
                return Err(WorkerError::Coordinator(format!(
                    "control stream failed at step {step}: {e}"
                )))
            }
        }
    }
}

/// Fold the executor's wire counters into the telemetry gauges, so the
/// next shipped snapshot — synchronous or heartbeat-cadence — carries
/// the transport state of the step being run, not of the last commit.
fn fold_wire_stats(tel: &WorkerTelemetry, exec: &PeerExecutor<'_>) {
    let stats = exec.stats();
    tel.set(metric::WIRE_BYTES, stats.data_bytes);
    tel.set(metric::NACKS, stats.nacks_sent);
    tel.set(metric::RESENDS, stats.resends);
    tel.set(metric::INFLIGHT_SENDS, exec.pending_sends() as u64);
}

/// Push one synchronous telemetry snapshot over the control stream.
/// Best-effort: a failed send means the coordinator is gone, which the
/// commit protocol surfaces on its own — telemetry never aborts a
/// step. The payload buffer is reused across calls (the frame borrows
/// it via `mem::take` and hands it back), so the steady state
/// allocates nothing.
fn send_telemetry(ctl: &PeerConn, tel: &WorkerTelemetry, buf: &mut Vec<u8>) {
    let seq = tel.encode_into(buf);
    let mut f = Frame::control(FrameKind::Telemetry, tel.rank(), 0, tel.current_step());
    f.seq = seq;
    f.payload = std::mem::take(buf);
    let _ = ctl.send(&f);
    *buf = f.payload;
}

/// Decode a `Degrade` frame: era in the header, dead original ids as a
/// comma-separated payload.
fn parse_degrade(f: &Frame, step: usize) -> Result<DegradeRecord, WorkerError> {
    let text = std::str::from_utf8(&f.payload)
        .map_err(|_| WorkerError::Coordinator("degrade payload not utf-8".into()))?;
    let mut dead = Vec::new();
    for part in text.split(',').filter(|p| !p.is_empty()) {
        dead.push(
            part.parse::<usize>().map_err(|_| {
                WorkerError::Coordinator(format!("bad dead id {part:?} in degrade"))
            })?,
        );
    }
    if dead.is_empty() {
        return Err(WorkerError::Coordinator("degrade names nobody dead".into()));
    }
    Ok(DegradeRecord { step, dead, era: f.era })
}
