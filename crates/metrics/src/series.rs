//! Named (x, y) series with plain-text rendering.
//!
//! Figure-style experiments (latency-vs-message-size, throughput-vs-GPUs)
//! collect one `Series` per line in the figure and render them as a
//! combined column listing plus a crude unicode plot, so the "figure" is
//! reproducible as terminal output.

use std::fmt::Write as _;

/// One line in a figure: a label and monotone-x samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Series { label: label.into(), points: Vec::new() }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        if let Some(&(last_x, _)) = self.points.last() {
            assert!(x > last_x, "series x values must be strictly increasing");
        }
        self.points.push((x, y));
    }

    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.0 == x).map(|p| p.1)
    }

    pub fn max_y(&self) -> Option<(f64, f64)> {
        self.points.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1))
    }

    pub fn min_y(&self) -> Option<(f64, f64)> {
        self.points.iter().copied().min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Render several series that share x values into aligned columns:
/// `x  <label-1>  <label-2> ...`. Series may have different x sets; holes
/// render as `-`.
pub fn render_columns(x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    xs.sort_by(|a, b| a.total_cmp(b));
    xs.dedup();
    let mut out = String::new();
    let _ = write!(out, "{x_label:>12}");
    for s in series {
        let _ = write!(out, "  {:>14}", s.label);
    }
    let _ = writeln!(out);
    for x in xs {
        let _ = write!(out, "{x:>12.4}");
        for s in series {
            match s.y_at(x) {
                Some(y) => {
                    let _ = write!(out, "  {y:>14.4}");
                }
                None => {
                    let _ = write!(out, "  {:>14}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// A one-line unicode bar for a value within [0, max]; used to sketch the
/// shape of a figure in terminal output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    assert!(max > 0.0 && width > 0);
    let filled = ((value / max).clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width * 3);
    for _ in 0..filled {
        s.push('\u{2588}');
    }
    for _ in filled..width {
        s.push('\u{00b7}');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_requires_increasing_x() {
        let mut s = Series::new("t");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.y_at(2.0), Some(20.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_x_panics() {
        let mut s = Series::new("t");
        s.push(2.0, 1.0);
        s.push(2.0, 2.0);
    }

    #[test]
    fn max_min_y() {
        let mut s = Series::new("t");
        s.push(1.0, 5.0);
        s.push(2.0, 9.0);
        s.push(3.0, 1.0);
        assert_eq!(s.max_y(), Some((2.0, 9.0)));
        assert_eq!(s.min_y(), Some((3.0, 1.0)));
    }

    #[test]
    fn render_columns_fills_holes() {
        let mut a = Series::new("a");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("b");
        b.push(2.0, 99.0);
        let out = render_columns("x", &[a, b]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains('-'), "hole must render as dash: {}", lines[1]);
        assert!(lines[2].contains("99.0000"));
    }

    #[test]
    fn bar_is_clamped_and_sized() {
        assert_eq!(bar(0.5, 1.0, 4), "\u{2588}\u{2588}\u{00b7}\u{00b7}");
        assert_eq!(bar(5.0, 1.0, 2), "\u{2588}\u{2588}");
        assert_eq!(bar(-1.0, 1.0, 2), "\u{00b7}\u{00b7}");
    }
}
