//! Strong/weak scaling arithmetic: speedup, scaling efficiency, and the
//! series type the scaling experiments (F3/F6) report.
//!
//! The paper's headline numbers are *weak-scaling efficiencies* of
//! data-parallel training: per-GPU batch size is fixed, so ideal
//! throughput at `n` GPUs is `n ×` the single-GPU throughput, and
//! `efficiency(n) = throughput(n) / (n × throughput(1))`.

/// Speedup of `throughput` over `baseline` (both in the same units).
pub fn speedup(throughput: f64, baseline: f64) -> f64 {
    assert!(baseline > 0.0, "baseline throughput must be positive");
    throughput / baseline
}

/// Weak-scaling efficiency at `n` workers given the measured aggregate
/// throughput and the single-worker throughput. 1.0 = perfectly linear.
pub fn scaling_efficiency(n: usize, throughput: f64, single: f64) -> f64 {
    assert!(n >= 1, "worker count must be >= 1");
    assert!(single > 0.0, "single-worker throughput must be positive");
    throughput / (n as f64 * single)
}

/// One measured point on a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Number of workers (GPUs).
    pub n: usize,
    /// Aggregate throughput (e.g. images/second across all GPUs).
    pub throughput: f64,
}

/// A scaling curve with its single-worker baseline.
#[derive(Debug, Clone)]
pub struct ScalingSeries {
    pub label: String,
    /// Throughput of one worker, the `n = 1` reference.
    pub single: f64,
    pub points: Vec<ScalingPoint>,
}

impl ScalingSeries {
    pub fn new(label: impl Into<String>, single: f64) -> Self {
        assert!(single > 0.0, "single-worker throughput must be positive");
        ScalingSeries { label: label.into(), single, points: Vec::new() }
    }

    pub fn push(&mut self, n: usize, throughput: f64) {
        self.points.push(ScalingPoint { n, throughput });
    }

    /// Efficiency at each measured point, in measurement order.
    pub fn efficiencies(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|p| (p.n, scaling_efficiency(p.n, p.throughput, self.single)))
            .collect()
    }

    /// Efficiency at the largest measured worker count, or `None` if empty.
    pub fn efficiency_at_max(&self) -> Option<(usize, f64)> {
        self.points
            .iter()
            .max_by_key(|p| p.n)
            .map(|p| (p.n, scaling_efficiency(p.n, p.throughput, self.single)))
    }

    /// Throughput at worker count `n`, if measured.
    pub fn throughput_at(&self, n: usize) -> Option<f64> {
        self.points.iter().find(|p| p.n == n).map(|p| p.throughput)
    }
}

/// Compare two scaling series at a common worker count: returns
/// `(efficiency_a, efficiency_b, delta_points, speedup_a_over_b)`.
///
/// This is exactly the paper's C4/C5 computation: "improvement in scaling
/// efficiency by 23.9 % over default ... translates to a 1.3× speedup".
pub fn compare_at(a: &ScalingSeries, b: &ScalingSeries, n: usize) -> Option<(f64, f64, f64, f64)> {
    let ta = a.throughput_at(n)?;
    let tb = b.throughput_at(n)?;
    let ea = scaling_efficiency(n, ta, a.single);
    let eb = scaling_efficiency(n, tb, b.single);
    Some((ea, eb, (ea - eb) * 100.0, ta / tb))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_scaling_is_efficiency_one() {
        assert!((scaling_efficiency(4, 40.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_scaling() {
        assert!((scaling_efficiency(4, 20.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "single-worker throughput")]
    fn zero_baseline_panics() {
        scaling_efficiency(2, 10.0, 0.0);
    }

    #[test]
    fn series_efficiency_at_max() {
        let mut s = ScalingSeries::new("tuned", 6.7);
        s.push(6, 6.7 * 6.0 * 0.99);
        s.push(132, 6.7 * 132.0 * 0.92);
        let (n, e) = s.efficiency_at_max().unwrap();
        assert_eq!(n, 132);
        assert!((e - 0.92).abs() < 1e-9);
    }

    #[test]
    fn compare_at_reproduces_headline_math() {
        let mut tuned = ScalingSeries::new("tuned", 6.7);
        let mut default = ScalingSeries::new("default", 6.7);
        tuned.push(132, 6.7 * 132.0 * 0.92);
        default.push(132, 6.7 * 132.0 * 0.681);
        let (ea, eb, delta, spd) = compare_at(&tuned, &default, 132).unwrap();
        assert!((ea - 0.92).abs() < 1e-9);
        assert!((eb - 0.681).abs() < 1e-9);
        assert!((delta - 23.9).abs() < 1e-6);
        assert!((spd - 0.92 / 0.681).abs() < 1e-9);
        // 0.92/0.681 = 1.351 — the paper rounds this to "1.3×".
        assert!(spd > 1.3 && spd < 1.4);
    }

    #[test]
    fn compare_at_missing_point_is_none() {
        let tuned = ScalingSeries::new("tuned", 1.0);
        let default = ScalingSeries::new("default", 1.0);
        assert!(compare_at(&tuned, &default, 12).is_none());
    }

    #[test]
    fn speedup_basic() {
        assert!((speedup(13.0, 10.0) - 1.3).abs() < 1e-12);
    }
}
