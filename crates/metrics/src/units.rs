//! Human-readable byte/time/rate formatting and byte-size parsing.
//!
//! Experiment binaries print message sizes the way the OSU benchmarks and
//! Horovod's documentation do: power-of-two binary units (`64 MiB`), times
//! in the most natural SI scale, and throughput in images/second or GB/s.

/// Binary unit prefixes, largest first.
const BIN_UNITS: &[(&str, u64)] = &[("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10), ("B", 1)];

/// Format a byte count with binary units, e.g. `64 MiB`, `1.5 KiB`, `17 B`.
pub fn fmt_bytes(bytes: u64) -> String {
    for &(name, scale) in BIN_UNITS {
        if bytes >= scale {
            let v = bytes as f64 / scale as f64;
            return if (v - v.round()).abs() < 1e-9 {
                format!("{} {name}", v.round() as u64)
            } else {
                format!("{v:.2} {name}")
            };
        }
    }
    "0 B".to_string()
}

/// Parse a byte-size string: `"64MiB"`, `"64 MB"`, `"8k"`, `"123"`.
///
/// Decimal suffixes (`KB`/`MB`/`GB`, and bare `k`/`m`/`g`) are treated as
/// binary, matching how Horovod interprets `HOROVOD_FUSION_THRESHOLD`.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let split = s.find(|c: char| !(c.is_ascii_digit() || c == '.'))?;
    let (num, unit) = if split == 0 { return None } else { s.split_at(split) };
    let num: f64 = num.parse().ok()?;
    let scale: u64 = match unit.trim().to_ascii_lowercase().as_str() {
        "b" | "" => 1,
        "k" | "kb" | "kib" => 1 << 10,
        "m" | "mb" | "mib" => 1 << 20,
        "g" | "gb" | "gib" => 1 << 30,
        _ => return None,
    };
    Some((num * scale as f64).round() as u64)
}

/// Format a duration given in seconds at a natural scale (`ns`..`s`).
pub fn fmt_time_s(seconds: f64) -> String {
    let abs = seconds.abs();
    if abs == 0.0 {
        "0 s".to_string()
    } else if abs < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if abs < 1e-3 {
        format!("{:.2} \u{00b5}s", seconds * 1e6)
    } else if abs < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Format a rate in "items per second" with a unit label, e.g.
/// `fmt_rate(6.7, "img")` → `"6.7 img/s"`.
pub fn fmt_rate(per_second: f64, unit: &str) -> String {
    if per_second >= 100.0 {
        format!("{per_second:.0} {unit}/s")
    } else if per_second >= 10.0 {
        format!("{per_second:.1} {unit}/s")
    } else {
        format!("{per_second:.2} {unit}/s")
    }
}

/// Format a bandwidth in bytes/second as GB/s (decimal, the convention for
/// link speeds: NVLink2 "50 GB/s" means 50e9 bytes/s).
pub fn fmt_bandwidth(bytes_per_s: f64) -> String {
    format!("{:.2} GB/s", bytes_per_s / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_round_units() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(17), "17 B");
        assert_eq!(fmt_bytes(1 << 10), "1 KiB");
        assert_eq!(fmt_bytes(64 << 20), "64 MiB");
        assert_eq!(fmt_bytes(3 << 30), "3 GiB");
    }

    #[test]
    fn fmt_bytes_fractional() {
        assert_eq!(fmt_bytes(1536), "1.50 KiB");
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("64MiB"), Some(64 << 20));
        assert_eq!(parse_bytes("64 MB"), Some(64 << 20));
        assert_eq!(parse_bytes("8k"), Some(8 << 10));
        assert_eq!(parse_bytes("2g"), Some(2 << 30));
        assert_eq!(parse_bytes("123b"), Some(123));
    }

    #[test]
    fn parse_bytes_rejects_garbage() {
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("MB"), None);
        assert_eq!(parse_bytes("12parsecs"), None);
    }

    #[test]
    fn parse_roundtrips_fmt() {
        for b in [1u64, 1 << 10, 5 << 20, 7 << 30] {
            let s = fmt_bytes(b);
            assert_eq!(parse_bytes(&s), Some(b), "roundtrip of {s}");
        }
    }

    #[test]
    fn fmt_time_scales() {
        assert_eq!(fmt_time_s(0.0), "0 s");
        assert_eq!(fmt_time_s(5e-9), "5.0 ns");
        assert_eq!(fmt_time_s(2.5e-6), "2.50 \u{00b5}s");
        assert_eq!(fmt_time_s(3e-3), "3.00 ms");
        assert_eq!(fmt_time_s(1.5), "1.50 s");
    }

    #[test]
    fn fmt_rate_precision() {
        assert_eq!(fmt_rate(6.7, "img"), "6.70 img/s");
        assert_eq!(fmt_rate(42.0, "img"), "42.0 img/s");
        assert_eq!(fmt_rate(300.0, "img"), "300 img/s");
    }

    #[test]
    fn fmt_bandwidth_gbs() {
        assert_eq!(fmt_bandwidth(50e9), "50.00 GB/s");
    }
}
