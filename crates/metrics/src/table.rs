//! Minimal ASCII table rendering for the experiment binaries.
//!
//! Every figure/table binary in `crates/bench` prints its rows through
//! this so the output looks uniform and is trivially diffable against
//! EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple left/right-aligned ASCII table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the column count does not match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable items.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table. The first column is left-aligned, the rest are
    /// right-aligned (numeric convention).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(line, " {:<w$} |", cell, w = widths[i]);
                } else {
                    let _ = write!(line, " {:>w$} |", cell, w = widths[i]);
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let mut sep = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            if i == 0 {
                let _ = write!(sep, "{:-<w$}|", "", w = w + 2);
            } else {
                let _ = write!(sep, "{:-<w$}:|", "", w = w + 1);
            }
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            debug_assert_eq!(row.len(), ncols);
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| name  | value |"));
        assert!(s.contains("| alpha |     1 |"));
        assert!(s.contains("| b     | 12345 |"));
    }

    #[test]
    fn row_display_formats() {
        let mut t = Table::new("", &["a", "b"]);
        t.row_display(&[1, 2]);
        assert_eq!(t.n_rows(), 1);
        assert!(t.render().contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new("", &["only-one"]);
        t.row(&["a".into(), "b".into()]);
    }

    #[test]
    fn separator_is_markdown_compatible() {
        let mut t = Table::new("", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        // second line (no title) must be a |---|---:| separator
        let sep = s.lines().nth(1).unwrap();
        assert!(sep.starts_with("|-"));
        assert!(sep.ends_with(":|"));
    }
}
