//! Deterministic seed derivation.
//!
//! Every stochastic component (compute-time jitter, dataset synthesis,
//! weight init) derives its RNG from a root seed plus a string label via
//! SplitMix64 over an FNV-1a hash, so independent components get
//! independent streams and the whole pipeline is reproducible from one
//! `u64`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a over the label bytes — stable across platforms and Rust versions
/// (unlike `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One round of SplitMix64 — decorrelates nearby seeds.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive a child seed from a root seed and a component label.
pub fn derive_seed(root: u64, label: &str) -> u64 {
    splitmix64(root ^ fnv1a(label.as_bytes()))
}

/// Derive a child seed with an additional index (e.g. per-rank streams).
pub fn derive_seed_indexed(root: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(root, label).wrapping_add(splitmix64(index)))
}

/// A seeded `StdRng` for the given component.
pub fn rng_for(root: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

/// A seeded `StdRng` for the given component and index.
pub fn rng_for_indexed(root: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_indexed(root, label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, "jitter"), derive_seed(42, "jitter"));
        assert_eq!(derive_seed_indexed(42, "rank", 7), derive_seed_indexed(42, "rank", 7));
    }

    #[test]
    fn labels_decorrelate() {
        assert_ne!(derive_seed(42, "jitter"), derive_seed(42, "dataset"));
        assert_ne!(derive_seed(42, "a"), derive_seed(43, "a"));
    }

    #[test]
    fn indices_decorrelate() {
        let a = derive_seed_indexed(42, "rank", 0);
        let b = derive_seed_indexed(42, "rank", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut r1 = rng_for(7, "x");
        let mut r2 = rng_for(7, "x");
        let a: [u64; 4] = std::array::from_fn(|_| r1.gen());
        let b: [u64; 4] = std::array::from_fn(|_| r2.gen());
        assert_eq!(a, b);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the canonical SplitMix64 with seed 0:
        // first output is 0xE220A8397B1DCDAF.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn fnv_stability() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(super::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
