//! Shared measurement utilities for the Summit DLv3+ reproduction.
//!
//! This crate holds everything that is about *reporting* rather than
//! *simulating*: summary statistics, byte/time unit formatting, scaling
//! efficiency math, ASCII table/series rendering for the experiment
//! binaries, and deterministic RNG seed derivation.
//!
//! Nothing in here knows about Horovod, MPI or networks; the other crates
//! depend on this one and not vice versa.

pub mod counters;
pub mod rng;
pub mod scaling;
pub mod series;
pub mod stats;
pub mod table;
pub mod units;

pub use counters::{FaultCounterSnapshot, FaultCounters};
pub use scaling::{scaling_efficiency, speedup, ScalingPoint, ScalingSeries};
pub use series::Series;
pub use stats::Summary;
pub use table::Table;
pub use units::{fmt_bytes, fmt_rate, fmt_time_s, parse_bytes};
