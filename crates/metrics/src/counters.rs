//! Fault/recovery counters: the quantitative face of a chaos run.
//!
//! A [`FaultCounters`] is a bag of relaxed atomics shared by reference
//! across rank threads; the executor, elastic layer, and trainer bump
//! them as events happen. [`FaultCounters::snapshot`] freezes them into
//! a plain [`FaultCounterSnapshot`] for assertions and reports.
//! Injection counts and topology changes are deterministic under a
//! fixed fault plan; timeout/resend/duplicate counts depend on OS
//! scheduling and should only be bounded, not matched exactly.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared mutable counters (see module docs).
#[derive(Debug, Default)]
pub struct FaultCounters {
    pub injected_straggles: AtomicU64,
    pub injected_drops: AtomicU64,
    pub injected_corruptions: AtomicU64,
    pub injected_crashes: AtomicU64,
    pub timeouts: AtomicU64,
    pub resends: AtomicU64,
    pub crc_rejects: AtomicU64,
    pub duplicates_dropped: AtomicU64,
    pub rank_deaths: AtomicU64,
    pub degradations: AtomicU64,
    pub checkpoint_saves: AtomicU64,
    pub checkpoint_restores: AtomicU64,
}

/// A frozen copy of every counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounterSnapshot {
    pub injected_straggles: u64,
    pub injected_drops: u64,
    pub injected_corruptions: u64,
    pub injected_crashes: u64,
    pub timeouts: u64,
    pub resends: u64,
    pub crc_rejects: u64,
    pub duplicates_dropped: u64,
    pub rank_deaths: u64,
    pub degradations: u64,
    pub checkpoint_saves: u64,
    pub checkpoint_restores: u64,
}

impl FaultCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump a counter by one. All loads/stores are relaxed: counters
    /// are statistics, not synchronization.
    pub fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): fault statistics; snapshots tolerate torn cross-counter views
    }

    pub fn snapshot(&self) -> FaultCounterSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed); // lint: allow(relaxed): fault statistics; snapshots tolerate torn cross-counter views
        FaultCounterSnapshot {
            injected_straggles: get(&self.injected_straggles),
            injected_drops: get(&self.injected_drops),
            injected_corruptions: get(&self.injected_corruptions),
            injected_crashes: get(&self.injected_crashes),
            timeouts: get(&self.timeouts),
            resends: get(&self.resends),
            crc_rejects: get(&self.crc_rejects),
            duplicates_dropped: get(&self.duplicates_dropped),
            rank_deaths: get(&self.rank_deaths),
            degradations: get(&self.degradations),
            checkpoint_saves: get(&self.checkpoint_saves),
            checkpoint_restores: get(&self.checkpoint_restores),
        }
    }
}

impl FaultCounterSnapshot {
    /// Total injected faults of every kind.
    pub fn injected_total(&self) -> u64 {
        self.injected_straggles
            + self.injected_drops
            + self.injected_corruptions
            + self.injected_crashes
    }

    /// Total recovery actions taken (retries, resends, rejections,
    /// duplicate discards, deaths, degradations).
    pub fn recovery_total(&self) -> u64 {
        self.timeouts
            + self.resends
            + self.crc_rejects
            + self.duplicates_dropped
            + self.rank_deaths
            + self.degradations
    }

    /// The subset of fields that must replay identically under a fixed
    /// fault plan (injections + confirmed topology changes).
    pub fn deterministic_part(&self) -> FaultCounterSnapshot {
        FaultCounterSnapshot {
            timeouts: 0,
            resends: 0,
            crc_rejects: 0,
            duplicates_dropped: 0,
            ..*self
        }
    }
}

impl fmt::Display for FaultCounterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected[straggle={} drop={} corrupt={} crash={}] \
             recovery[timeout={} resend={} crc={} dup={} dead={} degraded={}] \
             checkpoint[save={} restore={}]",
            self.injected_straggles,
            self.injected_drops,
            self.injected_corruptions,
            self.injected_crashes,
            self.timeouts,
            self.resends,
            self.crc_rejects,
            self.duplicates_dropped,
            self.rank_deaths,
            self.degradations,
            self.checkpoint_saves,
            self.checkpoint_restores,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_freezes_counts() {
        let c = FaultCounters::new();
        FaultCounters::bump(&c.timeouts);
        FaultCounters::bump(&c.timeouts);
        FaultCounters::bump(&c.injected_drops);
        let s = c.snapshot();
        assert_eq!(s.timeouts, 2);
        assert_eq!(s.injected_drops, 1);
        assert_eq!(s.injected_total(), 1);
        assert_eq!(s.recovery_total(), 2);
        FaultCounters::bump(&c.timeouts);
        assert_eq!(s.timeouts, 2, "snapshot must not track later bumps");
        assert_eq!(c.snapshot().timeouts, 3);
    }

    #[test]
    fn deterministic_part_masks_timing_noise() {
        let c = FaultCounters::new();
        FaultCounters::bump(&c.injected_crashes);
        FaultCounters::bump(&c.rank_deaths);
        FaultCounters::bump(&c.timeouts);
        FaultCounters::bump(&c.resends);
        let det = c.snapshot().deterministic_part();
        assert_eq!(det.injected_crashes, 1);
        assert_eq!(det.rank_deaths, 1);
        assert_eq!(det.timeouts, 0);
        assert_eq!(det.resends, 0);
    }

    #[test]
    fn display_is_compact() {
        let c = FaultCounters::new();
        FaultCounters::bump(&c.degradations);
        let text = c.snapshot().to_string();
        assert!(text.contains("degraded=1"), "{text}");
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = FaultCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        FaultCounters::bump(&c.resends);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().resends, 4000);
    }
}
