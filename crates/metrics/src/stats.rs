//! Summary statistics for repeated measurements.
//!
//! The experiment harness repeats every simulated/real measurement a few
//! times (with different seeds) and reports mean ± a normal-approximation
//! 95 % confidence interval, the way the paper reports averaged
//! images/second numbers.

/// Summary statistics of a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); 0 for n < 2.
    pub stddev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary { n, mean, stddev: var.sqrt(), min, max })
    }

    /// Half-width of the 95 % confidence interval on the mean
    /// (normal approximation, z = 1.96). Zero for n < 2.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values; 0.0 for an empty slice.
///
/// Used when summarizing speedups across heterogeneous workloads, per the
/// usual benchmarking convention.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    debug_assert!(xs.iter().all(|&x| x > 0.0), "geomean requires positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Linear interpolation percentile (p in [0, 100]) of an unsorted sample.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Ordinary least-squares fit `y = a + b·x`. Returns `(a, b)`.
///
/// Used to fit α–β (latency/bandwidth) models to microbenchmark sweeps.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points for a linear fit");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > f64::EPSILON, "degenerate x values in linear fit");
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Relative error `|measured - reference| / |reference|`.
///
/// The EXPERIMENTS.md paper-vs-measured comparisons use this.
pub fn rel_err(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - reference).abs() / reference.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[4.0, 4.0, 4.0, 4.0]).unwrap();
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.mean - 2.5).abs() < 1e-12);
        // sample variance of 1..4 = 5/3
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn single_observation_has_zero_ci() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn geomean_of_speedups() {
        let g = geomean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rel_err_basic() {
        assert!((rel_err(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(rel_err(0.0, 0.0), 0.0);
        assert!(rel_err(1.0, 0.0).is_infinite());
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Summary invariants: min <= mean <= max, stddev >= 0, and the
        /// CI shrinks as the sample grows (same underlying values).
        #[test]
        fn summary_invariants(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&xs).expect("non-empty");
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.stddev >= 0.0);
            prop_assert_eq!(s.n, xs.len());
            // Duplicating the sample halves nothing about mean/minmax but
            // shrinks the CI.
            let mut doubled = xs.clone();
            doubled.extend_from_slice(&xs);
            let s2 = Summary::of(&doubled).expect("non-empty");
            prop_assert!((s2.mean - s.mean).abs() < 1e-6_f64.max(s.mean.abs() * 1e-9));
            if s.n > 1 && s.stddev > 0.0 {
                prop_assert!(s2.ci95() < s.ci95() + 1e-12);
            }
        }

        /// Percentiles are monotone in p and bounded by min/max.
        #[test]
        fn percentile_monotone(xs in prop::collection::vec(-1e6f64..1e6, 1..60)) {
            let s = Summary::of(&xs).expect("non-empty");
            let mut last = f64::NEG_INFINITY;
            for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
                let v = percentile(&xs, p);
                prop_assert!(v >= last - 1e-12);
                prop_assert!(v >= s.min - 1e-9 && v <= s.max + 1e-9);
                last = v;
            }
        }

        /// Linear fit recovers exact lines through noisy-free points.
        #[test]
        fn linear_fit_exact(a in -100.0f64..100.0, b in -100.0f64..100.0, n in 2usize..30) {
            let pts: Vec<(f64, f64)> =
                (0..n).map(|i| (i as f64, a + b * i as f64)).collect();
            let (fa, fb) = linear_fit(&pts);
            prop_assert!((fa - a).abs() < 1e-6 * (1.0 + a.abs()));
            prop_assert!((fb - b).abs() < 1e-6 * (1.0 + b.abs()));
        }

        /// rel_err is symmetric in scale: rel_err(k·m, k·r) == rel_err(m, r).
        #[test]
        fn rel_err_scale_invariant(m in -1e3f64..1e3, r in 0.1f64..1e3, k in 0.1f64..100.0) {
            let base = rel_err(m, r);
            let scaled = rel_err(k * m, k * r);
            prop_assert!((base - scaled).abs() < 1e-9 * (1.0 + base));
        }
    }
}
