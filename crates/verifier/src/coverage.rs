//! Contribution-coverage dataflow.
//!
//! Abstract interpretation of the schedule over "contribution sets":
//! for every rank and every element range, which source ranks' initial
//! values have been folded in so far. A correct allreduce ends with
//! every rank holding exactly one contribution from every rank on every
//! element — folding a contribution twice ([`Rule::DoubleContribution`])
//! over-counts a gradient, and a hole ([`Rule::MissingContribution`])
//! under-counts one. Both are exactly the silent corruptions a wrong
//! chunk/offset partition produces.
//!
//! The analysis is interval-compressed: segment boundaries across the
//! whole schedule split `0..n_elems` into maximal intervals on which
//! every action is constant, so cost is `O(rounds × actions × intervals)`
//! instead of per-element.

use crate::diag::{Rule, Span, Violation};
use crate::ir::{OpKind, Schedule};

/// A set of source ranks, one bit per rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RankSet {
    words: Vec<u64>,
}

impl RankSet {
    pub(crate) fn empty(n_ranks: usize) -> Self {
        RankSet { words: vec![0; n_ranks.div_ceil(64)] }
    }

    pub(crate) fn singleton(n_ranks: usize, rank: usize) -> Self {
        let mut s = Self::empty(n_ranks);
        s.words[rank / 64] |= 1 << (rank % 64);
        s
    }

    /// Union `other` in; returns the rank of some element present in
    /// both (an over-counted source) if the sets intersect.
    pub(crate) fn union_detect_overlap(&mut self, other: &RankSet) -> Option<usize> {
        let mut dup = None;
        for (i, (w, o)) in self.words.iter_mut().zip(&other.words).enumerate() {
            let inter = *w & *o;
            if inter != 0 && dup.is_none() {
                dup = Some(i * 64 + inter.trailing_zeros() as usize);
            }
            *w |= *o;
        }
        dup
    }

    /// The lowest rank in `0..n_ranks` *not* in the set, if any.
    pub(crate) fn first_missing(&self, n_ranks: usize) -> Option<usize> {
        (0..n_ranks).find(|&r| self.words[r / 64] & (1 << (r % 64)) == 0)
    }

    pub(crate) fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The maximal constant intervals induced by all segment boundaries.
fn intervals(s: &Schedule) -> Vec<Span> {
    let mut cuts = vec![0, s.n_elems];
    for (_, _, _, op) in s.iter_ops() {
        if op.len > 0 {
            cuts.push(op.offset);
            cuts.push(op.end().min(s.n_elems));
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2).filter(|w| w[1] > w[0]).map(|w| Span::new(w[0], w[1] - w[0])).collect()
}

/// Indices of the intervals covered by `offset..offset+len`. Intervals
/// are sorted and disjoint, and every segment boundary is a cut, so a
/// segment always covers a contiguous run of whole intervals.
fn covered(ivs: &[Span], offset: usize, len: usize) -> std::ops::Range<usize> {
    if len == 0 {
        return 0..0;
    }
    let end = offset + len;
    let lo = ivs.partition_point(|iv| iv.end() <= offset);
    let hi = ivs.partition_point(|iv| iv.offset < end);
    lo..hi
}

/// Run the dataflow. Assumes [`crate::structural::check`] passed — the
/// round-matching it establishes is what lets sends be paired with
/// receives here without re-deriving the pairing.
pub fn check(s: &Schedule) -> Vec<Violation> {
    let mut out = Vec::new();
    if s.n_elems == 0 {
        return out; // zero-length tensor: nothing to cover
    }
    let ivs = intervals(s);
    // state[rank][interval] = set of source ranks folded in
    let mut state: Vec<Vec<RankSet>> = (0..s.n_ranks)
        .map(|r| (0..ivs.len()).map(|_| RankSet::singleton(s.n_ranks, r)).collect())
        .collect();
    for (ri, round) in s.rounds.iter().enumerate() {
        // Payloads carry the sender's start-of-round state (phase-A
        // snapshot semantics in every executor).
        let snapshot = state.clone();
        for (rank, ops) in round.iter().enumerate() {
            for op in ops {
                if op.kind.is_send() || op.len == 0 {
                    continue;
                }
                for iv in covered(&ivs, op.offset, op.len) {
                    match op.kind {
                        OpKind::RecvReduce => {
                            if let Some(dup) =
                                state[rank][iv].union_detect_overlap(&snapshot[op.peer][iv])
                            {
                                out.push(Violation {
                                    rule: Rule::DoubleContribution,
                                    ranks: vec![rank, op.peer],
                                    round: Some(ri),
                                    span: Some(ivs[iv]),
                                    detail: format!(
                                        "rank {rank} reduces in rank {}'s payload but already \
                                         holds rank {dup}'s contribution on this span",
                                        op.peer
                                    ),
                                });
                            }
                        }
                        OpKind::RecvReplace => {
                            state[rank][iv] = snapshot[op.peer][iv].clone();
                        }
                        OpKind::Send => unreachable!("sends skipped above"),
                    }
                }
            }
        }
    }
    // End state: every rank must hold the full reduction everywhere.
    for (rank, per_iv) in state.iter().enumerate() {
        for (iv, set) in per_iv.iter().enumerate() {
            if let Some(missing) = set.first_missing(s.n_ranks) {
                out.push(Violation {
                    rule: Rule::MissingContribution,
                    ranks: vec![rank, missing],
                    round: None,
                    span: Some(ivs[iv]),
                    detail: format!(
                        "rank {rank} ends holding {}/{} contributions on this span \
                         (rank {missing}'s is missing)",
                        set.len(),
                        s.n_ranks
                    ),
                });
                break; // one finding per rank keeps the report readable
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Op;

    fn op(kind: OpKind, peer: usize, offset: usize, len: usize) -> Op {
        Op { kind, peer, offset, len }
    }

    fn exchange(n_elems: usize) -> Schedule {
        let mut s = Schedule::new(2, n_elems);
        let r = s.push_round();
        s.push_op(r, 0, op(OpKind::Send, 1, 0, n_elems));
        s.push_op(r, 0, op(OpKind::RecvReduce, 1, 0, n_elems));
        s.push_op(r, 1, op(OpKind::Send, 0, 0, n_elems));
        s.push_op(r, 1, op(OpKind::RecvReduce, 0, 0, n_elems));
        s
    }

    #[test]
    fn exchange_covers() {
        assert!(check(&exchange(8)).is_empty());
    }

    #[test]
    fn zero_elems_trivially_covers() {
        assert!(check(&exchange(0)).is_empty());
        assert!(check(&Schedule::new(4, 0)).is_empty());
    }

    #[test]
    fn repeated_exchange_double_contributes() {
        let mut s = exchange(8);
        let r1 = s.rounds[0].clone();
        s.rounds.push(r1);
        let v = check(&s);
        assert!(v.iter().any(|x| x.rule == Rule::DoubleContribution), "{v:?}");
    }

    #[test]
    fn half_exchange_leaves_hole() {
        // Only elements 0..4 of 8 are exchanged: 4..8 never complete.
        let mut s = Schedule::new(2, 8);
        let r = s.push_round();
        s.push_op(r, 0, op(OpKind::Send, 1, 0, 4));
        s.push_op(r, 0, op(OpKind::RecvReduce, 1, 0, 4));
        s.push_op(r, 1, op(OpKind::Send, 0, 0, 4));
        s.push_op(r, 1, op(OpKind::RecvReduce, 0, 0, 4));
        let v = check(&s);
        let holes: Vec<_> = v.iter().filter(|x| x.rule == Rule::MissingContribution).collect();
        assert_eq!(holes.len(), 2, "{v:?}"); // one per rank
        assert_eq!(holes[0].span, Some(Span::new(4, 4)));
    }

    #[test]
    fn replace_transfers_full_set() {
        // Tree-style: 1 reduces into 0, then 0 replaces 1's buffer.
        let mut s = Schedule::new(2, 4);
        let r0 = s.push_round();
        s.push_op(r0, 1, op(OpKind::Send, 0, 0, 4));
        s.push_op(r0, 0, op(OpKind::RecvReduce, 1, 0, 4));
        let r1 = s.push_round();
        s.push_op(r1, 0, op(OpKind::Send, 1, 0, 4));
        s.push_op(r1, 1, op(OpKind::RecvReplace, 0, 0, 4));
        assert!(check(&s).is_empty());
    }

    #[test]
    fn interval_compression_matches_boundaries() {
        let s = {
            let mut s = Schedule::new(2, 10);
            let r = s.push_round();
            s.push_op(r, 0, op(OpKind::Send, 1, 2, 5));
            s.push_op(r, 1, op(OpKind::RecvReduce, 0, 2, 5));
            s
        };
        let ivs = intervals(&s);
        assert_eq!(ivs, vec![Span::new(0, 2), Span::new(2, 5), Span::new(7, 3)]);
        assert_eq!(covered(&ivs, 2, 5), 1..2);
        assert_eq!(covered(&ivs, 0, 10), 0..3);
        assert_eq!(covered(&ivs, 2, 0), 0..0);
    }

    #[test]
    fn rankset_operations() {
        let mut a = RankSet::singleton(70, 3);
        let b = RankSet::singleton(70, 69);
        assert_eq!(a.union_detect_overlap(&b), None);
        assert_eq!(a.len(), 2);
        let c = RankSet::singleton(70, 69);
        assert_eq!(a.union_detect_overlap(&c), Some(69));
        assert_eq!(a.first_missing(70), Some(0));
    }
}
