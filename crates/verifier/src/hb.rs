//! Happens-before deadlock analysis.
//!
//! The threaded executor's prose argument was: sends are hoisted to the
//! start of each round (phase A) and channels are unbounded, so a
//! validated schedule cannot deadlock. This pass replaces the prose with
//! a proof obligation checked per schedule, under the *weaker* execution
//! model of in-order action issue: a rank issues its action list in
//! order, sends never block, and a receive blocks until its matching
//! send has been *issued*. A send is issued once every receive that
//! precedes it in its rank's program order has completed.
//!
//! That induces a dependency graph over receives:
//!
//! * `R_prev -> R` — a rank reaches receive `R` only after its previous
//!   receive completed (program order);
//! * `S_dep -> R` — receive `R` waits for its matching send `S`, which
//!   is issued only after the last receive preceding `S` at the sender.
//!
//! The graph being acyclic proves deadlock-freedom for in-order issue —
//! a strictly stronger property than what phase-A hoisting needs, so a
//! schedule that passes here is robust even if an executor stops
//! reordering sends first. A cycle is reported as
//! [`Rule::DeadlockCycle`] with the ranks in wait order.

use std::collections::HashMap;

use crate::diag::{Rule, Violation};
use crate::ir::{OpKind, Schedule};

/// One receive node in the waits-for graph.
struct RecvNode {
    rank: usize,
    round: usize,
    peer: usize,
    /// Indices of the `RecvNode`s this one waits for.
    deps: Vec<usize>,
}

/// Check for waits-for cycles. Assumes [`crate::structural::check`]
/// passed (receives are uniquely matched within their round).
pub fn check(s: &Schedule) -> Vec<Violation> {
    // Flatten program order per rank; remember each op's global slot.
    // flat[rank] = ordered (round, op_index_within_round_list, kind, peer)
    let mut flat: Vec<Vec<(usize, OpKind, usize)>> = vec![Vec::new(); s.n_ranks];
    for (ri, round) in s.rounds.iter().enumerate() {
        for (rank, ops) in round.iter().enumerate() {
            for op in ops {
                flat[rank].push((ri, op.kind, op.peer));
            }
        }
    }
    // recv_id[(rank, pos)] -> node index; send position lookup by
    // (round, sender, receiver).
    let mut nodes: Vec<RecvNode> = Vec::new();
    let mut recv_at: HashMap<(usize, usize), usize> = HashMap::new();
    let mut send_pos: HashMap<(usize, usize, usize), usize> = HashMap::new();
    for (rank, ops) in flat.iter().enumerate() {
        for (pos, &(round, kind, peer)) in ops.iter().enumerate() {
            if kind.is_send() {
                send_pos.insert((round, rank, peer), pos);
            } else {
                let id = nodes.len();
                nodes.push(RecvNode { rank, round, peer, deps: Vec::new() });
                recv_at.insert((rank, pos), id);
            }
        }
    }
    // last_recv[rank][pos] = node id of the nearest receive strictly
    // before `pos` in `rank`'s program order.
    let mut last_recv: Vec<Vec<Option<usize>>> = Vec::with_capacity(s.n_ranks);
    for (rank, ops) in flat.iter().enumerate() {
        let mut col = Vec::with_capacity(ops.len());
        let mut last = None;
        for pos in 0..ops.len() {
            col.push(last);
            if let Some(&id) = recv_at.get(&(rank, pos)) {
                last = Some(id);
            }
        }
        last_recv.push(col);
    }
    // Wire dependencies.
    for (rank, ops) in flat.iter().enumerate() {
        for (pos, &(round, kind, peer)) in ops.iter().enumerate() {
            if kind.is_send() {
                continue;
            }
            let id = recv_at[&(rank, pos)];
            if let Some(prev) = last_recv[rank][pos] {
                nodes[id].deps.push(prev);
            }
            // The matching send lives at the peer, same round (unique by
            // structural DuplicatePair). A missing entry means structural
            // already reported it; nothing to wait on here.
            if let Some(&spos) = send_pos.get(&(round, peer, rank)) {
                if let Some(dep) = last_recv[peer][spos] {
                    nodes[id].deps.push(dep);
                }
            }
        }
    }
    // Kahn's algorithm over the waits-for edges.
    let mut indeg = vec![0usize; nodes.len()];
    let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (id, n) in nodes.iter().enumerate() {
        indeg[id] = n.deps.len();
        for &d in &n.deps {
            rdeps[d].push(id);
        }
    }
    let mut ready: Vec<usize> = (0..nodes.len()).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0usize;
    while let Some(id) = ready.pop() {
        done += 1;
        for &succ in &rdeps[id] {
            indeg[succ] -= 1;
            if indeg[succ] == 0 {
                ready.push(succ);
            }
        }
    }
    if done == nodes.len() {
        return Vec::new();
    }
    // Extract one concrete cycle among the stuck nodes for the report.
    let stuck: Vec<bool> = indeg.iter().map(|&d| d > 0).collect();
    let start = stuck.iter().position(|&b| b).unwrap_or(0);
    let mut seen_order: Vec<usize> = Vec::new();
    let mut cur = start;
    let cycle = loop {
        if let Some(at) = seen_order.iter().position(|&n| n == cur) {
            break &seen_order[at..];
        }
        seen_order.push(cur);
        cur = nodes[cur].deps.iter().copied().find(|&d| stuck[d]).unwrap_or(cur);
        // stuck node always has a stuck dep
    };
    let ranks: Vec<usize> = cycle.iter().map(|&id| nodes[id].rank).collect();
    let min_round = cycle.iter().map(|&id| nodes[id].round).min();
    let chain = cycle
        .iter()
        .map(|&id| {
            format!("rank {} round {} recv<-{}", nodes[id].rank, nodes[id].round, nodes[id].peer)
        })
        .collect::<Vec<_>>()
        .join(" waits ");
    vec![Violation {
        rule: Rule::DeadlockCycle,
        ranks,
        round: min_round,
        span: None,
        detail: format!("waits-for cycle under in-order issue: {chain}"),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Op;

    fn op(kind: OpKind, peer: usize) -> Op {
        Op { kind, peer, offset: 0, len: 4 }
    }

    /// Both ranks send first: no cycle even though each waits on the
    /// other's send.
    #[test]
    fn send_first_exchange_is_clean() {
        let mut s = Schedule::new(2, 4);
        let r = s.push_round();
        s.push_op(r, 0, op(OpKind::Send, 1));
        s.push_op(r, 0, op(OpKind::RecvReduce, 1));
        s.push_op(r, 1, op(OpKind::Send, 0));
        s.push_op(r, 1, op(OpKind::RecvReduce, 0));
        assert!(check(&s).is_empty());
    }

    /// Both ranks receive before sending: the classic rendezvous cycle.
    /// Structurally matched (one message each way), but under in-order
    /// issue neither send is ever reached.
    #[test]
    fn recv_first_exchange_cycles() {
        let mut s = Schedule::new(2, 4);
        let r = s.push_round();
        s.push_op(r, 0, op(OpKind::RecvReduce, 1));
        s.push_op(r, 0, op(OpKind::Send, 1));
        s.push_op(r, 1, op(OpKind::RecvReduce, 0));
        s.push_op(r, 1, op(OpKind::Send, 0));
        let v = check(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::DeadlockCycle);
        assert_eq!(v[0].round, Some(0));
        let mut ranks = v[0].ranks.clone();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1]);
    }

    /// One side receives first, the other sends first: acyclic.
    #[test]
    fn half_ordered_exchange_is_clean() {
        let mut s = Schedule::new(2, 4);
        let r = s.push_round();
        s.push_op(r, 0, op(OpKind::RecvReduce, 1));
        s.push_op(r, 0, op(OpKind::Send, 1));
        s.push_op(r, 1, op(OpKind::Send, 0));
        s.push_op(r, 1, op(OpKind::RecvReduce, 0));
        assert!(check(&s).is_empty());
    }

    /// A three-rank wait ring spanning rounds.
    #[test]
    fn three_rank_cross_round_cycle() {
        // Rank i receives from i-1 before sending to i+1 — each send is
        // gated behind a receive, closing a ring of waits.
        let mut s = Schedule::new(3, 4);
        let r = s.push_round();
        for i in 0..3 {
            s.push_op(r, i, op(OpKind::RecvReduce, (i + 2) % 3));
            s.push_op(r, i, op(OpKind::Send, (i + 1) % 3));
        }
        let v = check(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::DeadlockCycle);
        assert_eq!(v[0].ranks.len(), 3);
    }

    /// Pipelined ring (send-first everywhere) stays clean across many
    /// rounds.
    #[test]
    fn multi_round_send_first_ring_is_clean() {
        let n = 4;
        let mut s = Schedule::new(n, 4);
        for _ in 0..6 {
            let r = s.push_round();
            for i in 0..n {
                s.push_op(r, i, op(OpKind::Send, (i + 1) % n));
                s.push_op(r, i, op(OpKind::RecvReduce, (i + n - 1) % n));
            }
        }
        assert!(check(&s).is_empty());
    }
}
