//! Schedule intermediate representation.
//!
//! The verifier analyzes schedules through this minimal IR rather than
//! depending on `collectives` directly — `collectives::Schedule::validate`
//! delegates *into* this crate, so the dependency must point this way.
//! The IR is lossless for everything the analyses need: rank count,
//! element count, and the per-round, per-rank ordered action lists.

/// What an action does with its segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Send the segment to `peer`; payload is the buffer content at the
    /// start of the round.
    Send,
    /// Receive the segment from `peer` and combine element-wise.
    RecvReduce,
    /// Receive the segment from `peer` and overwrite.
    RecvReplace,
}

impl OpKind {
    pub fn is_send(self) -> bool {
        matches!(self, OpKind::Send)
    }

    pub fn is_recv(self) -> bool {
        !self.is_send()
    }
}

/// One communication action by one rank within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Op {
    pub kind: OpKind,
    pub peer: usize,
    /// Segment start, in buffer elements.
    pub offset: usize,
    /// Segment length, in buffer elements.
    pub len: usize,
}

impl Op {
    pub fn end(&self) -> usize {
        self.offset + self.len
    }
}

/// A complete schedule: `rounds[round][rank]` is the ordered action list
/// rank `rank` issues in that round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    pub n_ranks: usize,
    pub n_elems: usize,
    pub rounds: Vec<Vec<Vec<Op>>>,
}

impl Schedule {
    pub fn new(n_ranks: usize, n_elems: usize) -> Self {
        Schedule { n_ranks, n_elems, rounds: Vec::new() }
    }

    /// Append an empty round and return its index.
    pub fn push_round(&mut self) -> usize {
        self.rounds.push(vec![Vec::new(); self.n_ranks]);
        self.rounds.len() - 1
    }

    /// Convenience for tests: append `op` to `rank`'s list in `round`.
    pub fn push_op(&mut self, round: usize, rank: usize, op: Op) {
        self.rounds[round][rank].push(op);
    }

    /// Iterate `(round, rank, index_in_rank_list, op)` in round order,
    /// rank order, list order.
    pub fn iter_ops(&self) -> impl Iterator<Item = (usize, usize, usize, &Op)> + '_ {
        self.rounds.iter().enumerate().flat_map(|(ri, round)| {
            round.iter().enumerate().flat_map(move |(rank, ops)| {
                ops.iter().enumerate().map(move |(ai, op)| (ri, rank, ai, op))
            })
        })
    }

    /// Total number of actions across all rounds and ranks.
    pub fn n_ops(&self) -> usize {
        self.rounds.iter().map(|r| r.iter().map(Vec::len).sum::<usize>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_iter() {
        let mut s = Schedule::new(2, 8);
        let r = s.push_round();
        s.push_op(r, 0, Op { kind: OpKind::Send, peer: 1, offset: 0, len: 8 });
        s.push_op(r, 1, Op { kind: OpKind::RecvReduce, peer: 0, offset: 0, len: 8 });
        assert_eq!(s.n_ops(), 2);
        let ops: Vec<_> = s.iter_ops().collect();
        assert_eq!(ops[0].1, 0);
        assert_eq!(ops[1].1, 1);
        assert!(ops[0].3.kind.is_send());
        assert!(ops[1].3.kind.is_recv());
        assert_eq!(ops[0].3.end(), 8);
    }
}
