//! Reduction-order determinism.
//!
//! Floating-point addition is not associative, so "the" allreduce result
//! is only well-defined if every executor applies each rank's combines
//! in one fixed order. The schedule format pins that order (action-list
//! order per rank per round), which leaves exactly one hazard: two
//! receives at the same rank in the same round whose segments overlap.
//! Their relative order then changes the bits of the overlap — any
//! executor that reorders receives (e.g. completing whichever channel
//! is ready first, as a future epoll-style executor would) silently
//! changes the result. [`check`] rejects that shape outright.
//!
//! [`fingerprint`] complements the rule: a stable hash of every rank's
//! combine sequence, so two schedules producing bit-identical reduction
//! orders — and only those — share a fingerprint. Tests use it to pin
//! determinism across schedule-construction refactors.

use crate::diag::{Rule, Span, Violation};
use crate::ir::Schedule;

/// Reject overlapping receive segments within one (rank, round).
pub fn check(s: &Schedule) -> Vec<Violation> {
    let mut out = Vec::new();
    for (ri, round) in s.rounds.iter().enumerate() {
        for (rank, ops) in round.iter().enumerate() {
            let recvs: Vec<_> = ops.iter().filter(|o| o.kind.is_recv() && o.len > 0).collect();
            for (i, a) in recvs.iter().enumerate() {
                for b in &recvs[i + 1..] {
                    let lo = a.offset.max(b.offset);
                    let hi = a.end().min(b.end());
                    if lo < hi {
                        out.push(Violation {
                            rule: Rule::OverlappingRecvSegments,
                            ranks: vec![rank, a.peer, b.peer],
                            round: Some(ri),
                            span: Some(Span::new(lo, hi - lo)),
                            detail: format!(
                                "receives from ranks {} and {} overlap on {lo}..{hi}; \
                                 the combined value depends on receive order",
                                a.peer, b.peer
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// FNV-1a over every rank's ordered combine sequence: for each rank, in
/// program order, each receive's `(round, kind, peer, offset, len)`.
/// Equal fingerprints ⇔ identical per-rank reduction orders.
pub fn fingerprint(s: &Schedule) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(s.n_ranks as u64);
    eat(s.n_elems as u64);
    for rank in 0..s.n_ranks {
        eat(u64::MAX); // rank delimiter
        for (ri, round) in s.rounds.iter().enumerate() {
            let Some(ops) = round.get(rank) else { continue };
            for op in ops.iter().filter(|o| o.kind.is_recv()) {
                eat(ri as u64);
                eat(op.kind as u64);
                eat(op.peer as u64);
                eat(op.offset as u64);
                eat(op.len as u64);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Op, OpKind};

    fn op(kind: OpKind, peer: usize, offset: usize, len: usize) -> Op {
        Op { kind, peer, offset, len }
    }

    #[test]
    fn disjoint_recvs_are_clean() {
        let mut s = Schedule::new(3, 8);
        let r = s.push_round();
        s.push_op(r, 0, op(OpKind::RecvReduce, 1, 0, 4));
        s.push_op(r, 0, op(OpKind::RecvReduce, 2, 4, 4));
        s.push_op(r, 1, op(OpKind::Send, 0, 0, 4));
        s.push_op(r, 2, op(OpKind::Send, 0, 4, 4));
        assert!(check(&s).is_empty());
    }

    #[test]
    fn overlapping_recvs_flagged_with_overlap_span() {
        let mut s = Schedule::new(3, 8);
        let r = s.push_round();
        s.push_op(r, 0, op(OpKind::RecvReduce, 1, 0, 6));
        s.push_op(r, 0, op(OpKind::RecvReduce, 2, 4, 4));
        let v = check(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::OverlappingRecvSegments);
        assert_eq!(v[0].span, Some(Span::new(4, 2)));
        assert_eq!(v[0].ranks, vec![0, 1, 2]);
    }

    #[test]
    fn zero_len_recvs_never_overlap() {
        let mut s = Schedule::new(3, 8);
        let r = s.push_round();
        s.push_op(r, 0, op(OpKind::RecvReduce, 1, 2, 0));
        s.push_op(r, 0, op(OpKind::RecvReduce, 2, 2, 0));
        assert!(check(&s).is_empty());
    }

    #[test]
    fn fingerprint_ignores_sends_but_not_recv_order() {
        let mut a = Schedule::new(2, 4);
        let r = a.push_round();
        a.push_op(r, 0, op(OpKind::Send, 1, 0, 4));
        a.push_op(r, 0, op(OpKind::RecvReduce, 1, 0, 4));
        a.push_op(r, 1, op(OpKind::Send, 0, 0, 4));
        a.push_op(r, 1, op(OpKind::RecvReduce, 0, 0, 4));
        // Same receives, sends listed after: identical combine order.
        let mut b = Schedule::new(2, 4);
        let r = b.push_round();
        b.push_op(r, 0, op(OpKind::RecvReduce, 1, 0, 4));
        b.push_op(r, 0, op(OpKind::Send, 1, 0, 4));
        b.push_op(r, 1, op(OpKind::RecvReduce, 0, 0, 4));
        b.push_op(r, 1, op(OpKind::Send, 0, 0, 4));
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // Changing a receive's round changes the order fingerprint.
        let mut c = b.clone();
        let moved = c.rounds[0][0].remove(0);
        let r1 = c.push_round();
        c.rounds[r1][0].push(moved);
        assert_ne!(fingerprint(&b), fingerprint(&c));
    }
}
