//! Structural rules: the per-round well-formedness a schedule needs
//! before any deeper analysis is meaningful.
//!
//! Unlike the old `Schedule::validate`, which stopped at the first
//! problem, this pass collects *every* violation — a mutated or
//! hand-built schedule usually breaks several rules at once and the
//! diagnostics should say so.

use std::collections::HashMap;

use crate::diag::{Rule, Span, Violation};
use crate::ir::Schedule;

/// Check rank counts, peer ranges, segment bounds, self-messages, and
/// per-round send/receive matching (exactly one message per ordered
/// rank pair, segments agreeing on both sides).
pub fn check(s: &Schedule) -> Vec<Violation> {
    let mut out = Vec::new();
    for (ri, round) in s.rounds.iter().enumerate() {
        if round.len() != s.n_ranks {
            out.push(Violation {
                rule: Rule::WrongRankCount,
                ranks: Vec::new(),
                round: Some(ri),
                span: None,
                detail: format!("round has {} rank slots, schedule has {}", round.len(), s.n_ranks),
            });
            continue; // per-rank indexing below would be meaningless
        }
        // (sender, receiver) -> (send span, recv span)
        let mut pairs: HashMap<(usize, usize), (Option<Span>, Option<Span>)> = HashMap::new();
        for (rank, ops) in round.iter().enumerate() {
            for op in ops {
                if op.peer >= s.n_ranks {
                    out.push(Violation {
                        rule: Rule::RankOutOfRange,
                        ranks: vec![rank],
                        round: Some(ri),
                        span: Some(Span::new(op.offset, op.len)),
                        detail: format!("peer {} out of range 0..{}", op.peer, s.n_ranks),
                    });
                    continue;
                }
                if op.peer == rank {
                    out.push(Violation {
                        rule: Rule::SelfMessage,
                        ranks: vec![rank],
                        round: Some(ri),
                        span: Some(Span::new(op.offset, op.len)),
                        detail: format!("rank {rank} addresses itself"),
                    });
                    continue;
                }
                if op.end() > s.n_elems {
                    out.push(Violation {
                        rule: Rule::SegOutOfRange,
                        ranks: vec![rank],
                        round: Some(ri),
                        span: Some(Span::new(op.offset, op.len)),
                        detail: format!(
                            "segment {}..{} exceeds buffer of {} elements",
                            op.offset,
                            op.end(),
                            s.n_elems
                        ),
                    });
                    continue;
                }
                let key = if op.kind.is_send() { (rank, op.peer) } else { (op.peer, rank) };
                let entry = pairs.entry(key).or_insert((None, None));
                let slot = if op.kind.is_send() { &mut entry.0 } else { &mut entry.1 };
                if slot.is_some() {
                    out.push(Violation {
                        rule: Rule::DuplicatePair,
                        ranks: vec![key.1, key.0],
                        round: Some(ri),
                        span: Some(Span::new(op.offset, op.len)),
                        detail: format!(
                            "more than one {} between ranks {} -> {} in one round",
                            if op.kind.is_send() { "send" } else { "receive" },
                            key.0,
                            key.1
                        ),
                    });
                    continue;
                }
                *slot = Some(Span::new(op.offset, op.len));
            }
        }
        let mut keys: Vec<_> = pairs.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let (sender, receiver) = key;
            match pairs[&key] {
                (Some(a), Some(b)) if a == b => {}
                (Some(a), Some(b)) => out.push(Violation {
                    rule: Rule::SegMismatch,
                    ranks: vec![receiver, sender],
                    round: Some(ri),
                    span: Some(a),
                    detail: format!(
                        "sender {sender} offers {}..{}, receiver {receiver} expects {}..{}",
                        a.offset,
                        a.end(),
                        b.offset,
                        b.end()
                    ),
                }),
                (Some(a), None) => out.push(Violation {
                    rule: Rule::UnmatchedSend,
                    ranks: vec![sender, receiver],
                    round: Some(ri),
                    span: Some(a),
                    detail: format!("rank {sender} sends to {receiver}, which never receives"),
                }),
                (None, Some(b)) => out.push(Violation {
                    rule: Rule::UnmatchedRecv,
                    ranks: vec![receiver, sender],
                    round: Some(ri),
                    span: Some(b),
                    detail: format!("rank {receiver} receives from {sender}, which never sends"),
                }),
                (None, None) => unreachable!("entry inserted with one side set"),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Op, OpKind};

    fn exchange(n_elems: usize) -> Schedule {
        let mut s = Schedule::new(2, n_elems);
        let r = s.push_round();
        s.push_op(r, 0, Op { kind: OpKind::Send, peer: 1, offset: 0, len: n_elems });
        s.push_op(r, 0, Op { kind: OpKind::RecvReduce, peer: 1, offset: 0, len: n_elems });
        s.push_op(r, 1, Op { kind: OpKind::Send, peer: 0, offset: 0, len: n_elems });
        s.push_op(r, 1, Op { kind: OpKind::RecvReduce, peer: 0, offset: 0, len: n_elems });
        s
    }

    #[test]
    fn clean_exchange_passes() {
        assert!(check(&exchange(8)).is_empty());
    }

    #[test]
    fn collects_multiple_violations() {
        let mut s = exchange(8);
        // Rank 1 stops participating: both of rank 0's actions dangle.
        s.rounds[0][1].clear();
        let v = check(&s);
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|x| x.rule == Rule::UnmatchedSend));
        assert!(v.iter().any(|x| x.rule == Rule::UnmatchedRecv));
    }

    #[test]
    fn wrong_rank_count_short_circuits_round() {
        let mut s = exchange(8);
        s.rounds[0].pop();
        let v = check(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::WrongRankCount);
    }

    #[test]
    fn out_of_range_peer_and_seg() {
        let mut s = exchange(8);
        s.rounds[0][0][0].peer = 7;
        s.rounds[0][1][1].peer = 7; // keep the matching recv consistent-ish
        s.rounds[0][0][1].len = 100;
        s.rounds[0][1][0].len = 100;
        let v = check(&s);
        assert!(v.iter().any(|x| x.rule == Rule::RankOutOfRange));
        assert!(v.iter().any(|x| x.rule == Rule::SegOutOfRange));
    }

    #[test]
    fn self_message_flagged() {
        let mut s = exchange(4);
        s.rounds[0][0][0].peer = 0;
        let v = check(&s);
        assert!(v.iter().any(|x| x.rule == Rule::SelfMessage));
    }

    #[test]
    fn duplicate_pair_flagged() {
        let mut s = exchange(4);
        s.push_op(0, 0, Op { kind: OpKind::Send, peer: 1, offset: 0, len: 1 });
        let v = check(&s);
        assert!(v.iter().any(|x| x.rule == Rule::DuplicatePair));
    }

    #[test]
    fn seg_mismatch_flagged() {
        let mut s = exchange(8);
        s.rounds[0][1][1].len = 4; // receiver expects half
        let v = check(&s);
        assert!(v.iter().any(|x| x.rule == Rule::SegMismatch));
    }
}
