//! Structured diagnostics.
//!
//! Every analysis reports [`Violation`] values instead of panicking or
//! returning a bare bool: the rule that fired, the ranks involved, the
//! round (when one is attributable), and the element span (when one is).

/// A contiguous element range a violation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    pub offset: usize,
    pub len: usize,
}

impl Span {
    pub fn new(offset: usize, len: usize) -> Self {
        Span { offset, len }
    }

    pub fn end(&self) -> usize {
        self.offset + self.len
    }
}

/// Which verification rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A round's `per_rank` list does not have one entry per rank.
    WrongRankCount,
    /// An action names a peer outside `0..n_ranks`.
    RankOutOfRange,
    /// An action names its own rank as the peer.
    SelfMessage,
    /// A segment extends past `n_elems`.
    SegOutOfRange,
    /// A send with no matching receive in the same round.
    UnmatchedSend,
    /// A receive with no matching send in the same round.
    UnmatchedRecv,
    /// Sender and receiver disagree about the segment.
    SegMismatch,
    /// More than one message between the same ordered rank pair in one
    /// round (executors use the round index as the message tag).
    DuplicatePair,
    /// Two receives at one rank in one round target overlapping element
    /// ranges — the combined value depends on list order, which makes
    /// the reduction order fragile under any executor reordering.
    OverlappingRecvSegments,
    /// Dataflow: a rank ends the schedule with some source rank's
    /// initial contribution absorbed more than once into an element
    /// range (gradient would be over-counted).
    DoubleContribution,
    /// Dataflow: a rank ends the schedule with some source rank's
    /// initial contribution missing from an element range (gradient
    /// would be under-counted).
    MissingContribution,
    /// The happens-before graph over receive completion has a cycle
    /// under in-order action issue: each receive in the cycle waits for
    /// a send that is issued only after another receive in the cycle.
    DeadlockCycle,
}

impl Rule {
    /// Stable lowercase name for reports and CI logs.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WrongRankCount => "wrong-rank-count",
            Rule::RankOutOfRange => "rank-out-of-range",
            Rule::SelfMessage => "self-message",
            Rule::SegOutOfRange => "seg-out-of-range",
            Rule::UnmatchedSend => "unmatched-send",
            Rule::UnmatchedRecv => "unmatched-recv",
            Rule::SegMismatch => "seg-mismatch",
            Rule::DuplicatePair => "duplicate-pair",
            Rule::OverlappingRecvSegments => "overlapping-recv-segments",
            Rule::DoubleContribution => "double-contribution",
            Rule::MissingContribution => "missing-contribution",
            Rule::DeadlockCycle => "deadlock-cycle",
        }
    }
}

/// One finding: which rule fired, where, and a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    /// The ranks involved, most-affected first (receiver before sender
    /// for pairwise rules; cycle order for deadlocks).
    pub ranks: Vec<usize>,
    /// The round the violation is attributable to, if any (coverage
    /// violations are end-state properties and carry `None`).
    pub round: Option<usize>,
    /// The element range involved, if one is attributable.
    pub span: Option<Span>,
    /// Free-form elaboration for the log line.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.rule.name())?;
        if let Some(r) = self.round {
            write!(f, " round {r}")?;
        }
        write!(f, " ranks {:?}", self.ranks)?;
        if let Some(s) = self.span {
            write!(f, " span {}..{}", s.offset, s.end())?;
        }
        write!(f, ": {}", self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_complete() {
        let v = Violation {
            rule: Rule::SegMismatch,
            ranks: vec![1, 0],
            round: Some(2),
            span: Some(Span::new(4, 4)),
            detail: "sender says 4..8, receiver says 0..4".into(),
        };
        let s = v.to_string();
        assert!(s.contains("[seg-mismatch]"));
        assert!(s.contains("round 2"));
        assert!(s.contains("span 4..8"));
        assert!(s.contains("receiver says"));
    }

    #[test]
    fn rule_names_are_stable() {
        assert_eq!(Rule::DeadlockCycle.name(), "deadlock-cycle");
        assert_eq!(Rule::DoubleContribution.name(), "double-contribution");
    }
}
