//! Static analysis for collective-communication schedules.
//!
//! The paper's scaling claims assume every swept configuration (fusion
//! threshold, chunking, algorithm, hierarchy shape) compiles to a
//! *correct* allreduce schedule — a silently wrong one corrupts
//! gradients while still producing plausible timing numbers. This crate
//! proves the correctness part statically, before any executor runs:
//!
//! * [`structural`] — per-round well-formedness: rank counts, peer and
//!   segment bounds, send/receive matching, one message per ordered
//!   pair per round;
//! * [`determinism`] — reduction-order determinism: no rank has
//!   order-sensitive overlapping receives, plus a combine-order
//!   [`determinism::fingerprint`];
//! * [`hb`] — deadlock-freedom as a happens-before proof: the waits-for
//!   graph over receives is acyclic under in-order action issue (a
//!   strictly stronger model than the executor's send-hoisting);
//! * [`coverage`] — contribution dataflow for *allreduce* schedules:
//!   every rank ends holding exactly one copy of every rank's initial
//!   contribution on every element (no double-counted, no orphaned
//!   offsets).
//!
//! The first three hold for any schedule (including sub-collectives
//! like a standalone reduce-scatter) and make up [`verify`]; coverage
//! asserts the full allreduce postcondition and is added by
//! [`verify_allreduce`]. Analyses consume the [`ir::Schedule`] IR;
//! `collectives::Schedule::validate` converts and delegates here, so
//! every call site in the workspace gets the layered checks. Findings
//! are structured [`Violation`] diagnostics, never panics.

pub mod coverage;
pub mod determinism;
pub mod diag;
pub mod hb;
pub mod ir;
pub mod structural;

pub use diag::{Rule, Span, Violation};

/// Run the universal layers: structural, determinism, happens-before.
///
/// Structural violations short-circuit the deeper layers — both deeper
/// analyses assume the send/receive matching that structural soundness
/// establishes, so running them on a malformed schedule would report
/// noise rather than causes.
pub fn verify(s: &ir::Schedule) -> Vec<Violation> {
    let mut out = structural::check(s);
    if !out.is_empty() {
        return out;
    }
    out.extend(determinism::check(s));
    out.extend(hb::check(s));
    out
}

/// [`verify`] plus the allreduce contribution-coverage postcondition:
/// use this for schedules that claim to be a complete allreduce.
pub fn verify_allreduce(s: &ir::Schedule) -> Vec<Violation> {
    let mut out = verify(s);
    if out.is_empty() {
        out.extend(coverage::check(s));
    }
    out
}

/// Just the structural layer — the cheap `O(actions)` subset suitable
/// for release-mode per-call guards on hot executor paths.
pub fn verify_structural(s: &ir::Schedule) -> Vec<Violation> {
    structural::check(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Op, OpKind, Schedule};

    fn op(kind: OpKind, peer: usize, offset: usize, len: usize) -> Op {
        Op { kind, peer, offset, len }
    }

    fn exchange(n_elems: usize) -> Schedule {
        let mut s = Schedule::new(2, n_elems);
        let r = s.push_round();
        s.push_op(r, 0, op(OpKind::Send, 1, 0, n_elems));
        s.push_op(r, 0, op(OpKind::RecvReduce, 1, 0, n_elems));
        s.push_op(r, 1, op(OpKind::Send, 0, 0, n_elems));
        s.push_op(r, 1, op(OpKind::RecvReduce, 0, 0, n_elems));
        s
    }

    #[test]
    fn clean_schedule_passes_all_layers() {
        assert_eq!(verify_allreduce(&exchange(8)), Vec::new());
    }

    #[test]
    fn structural_failure_short_circuits() {
        // Dropping rank 1 entirely breaks matching AND coverage AND
        // would confuse hb; only the structural causes are reported.
        let mut s = exchange(8);
        s.rounds[0][1].clear();
        let v = verify_allreduce(&s);
        assert!(!v.is_empty());
        assert!(v.iter().all(|x| matches!(x.rule, Rule::UnmatchedSend | Rule::UnmatchedRecv)));
    }

    #[test]
    fn coverage_runs_only_in_allreduce_mode() {
        // A structurally perfect second exchange round double-counts —
        // invisible to `verify`, caught by `verify_allreduce`.
        let mut s = exchange(8);
        let r1 = s.rounds[0].clone();
        s.rounds.push(r1);
        assert_eq!(verify(&s), Vec::new());
        let v = verify_allreduce(&s);
        assert!(v.iter().any(|x| x.rule == Rule::DoubleContribution));
    }

    #[test]
    fn partial_collective_passes_universal_layers() {
        // A lone reduce-into-root (no broadcast back) is a fine
        // *schedule*, just not a complete allreduce.
        let mut s = Schedule::new(2, 4);
        let r = s.push_round();
        s.push_op(r, 1, op(OpKind::Send, 0, 0, 4));
        s.push_op(r, 0, op(OpKind::RecvReduce, 1, 0, 4));
        assert_eq!(verify(&s), Vec::new());
        let v = verify_allreduce(&s);
        assert!(v.iter().any(|x| x.rule == Rule::MissingContribution));
    }

    #[test]
    fn empty_and_single_rank_schedules_are_clean() {
        assert_eq!(verify_allreduce(&Schedule::new(1, 100)), Vec::new());
        assert_eq!(verify_allreduce(&Schedule::new(5, 0)), Vec::new());
        let mut s = Schedule::new(1, 4);
        s.push_round();
        assert_eq!(verify_allreduce(&s), Vec::new());
    }
}
