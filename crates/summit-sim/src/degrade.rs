//! Analytic straggler/failure models: what faults do to scaling curves.
//!
//! The discrete-event layers simulate *healthy* hardware. This module
//! adds the standard closed-form models for unhealthy hardware, matched
//! to the fault kinds the executor-level chaos harness injects
//! (`crates/faults`):
//!
//! * **Stragglers.** A synchronous step is gated by its slowest rank.
//!   If each of `n` ranks independently straggles with probability `p`
//!   (running `slowdown`× longer), the chance *someone* straggles is
//!   `1 − (1−p)^n`, so
//!   `E[step] ≈ base · (1 + (slowdown−1) · (1 − (1−p)^n))` — the
//!   well-known reason straggler pain grows with scale even at fixed
//!   per-rank fault rates.
//! * **Failures + checkpointing.** With per-rank MTBF `m`, the system
//!   MTBF is `m/n`. Checkpointing every `τ` seconds at cost `C` loses
//!   `C` per interval to I/O and on average `τ/2 + C` to rework per
//!   failure; the first-order-optimal interval is Young/Daly's
//!   `τ* = √(2·C·M)`. [`FailureModel::goodput`] gives the resulting
//!   useful-work fraction.
//!
//! Both models compose with the healthy-machine step time from the
//! simulator: feed a measured or simulated `base` step time in, get
//! efficiency-under-faults curves out (see
//! [`StragglerModel::efficiency_curve`]).

/// Independent per-rank, per-step straggler behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerModel {
    /// Probability that a given rank straggles in a given step.
    pub prob: f64,
    /// Slowdown multiplier of a straggling rank (≥ 1; 3.0 = the rank
    /// takes 3× the healthy step time).
    pub slowdown: f64,
}

impl StragglerModel {
    pub fn new(prob: f64, slowdown: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability in [0, 1]");
        assert!(slowdown >= 1.0, "a straggler is slower, not faster");
        StragglerModel { prob, slowdown }
    }

    /// Probability that at least one of `n_ranks` straggles in a step.
    pub fn any_straggler(&self, n_ranks: usize) -> f64 {
        1.0 - (1.0 - self.prob).powi(n_ranks as i32)
    }

    /// Expected synchronous-step time for `n_ranks`, given the healthy
    /// step time `base` (seconds, or any unit — the model is linear).
    pub fn expected_step(&self, base: f64, n_ranks: usize) -> f64 {
        base * (1.0 + (self.slowdown - 1.0) * self.any_straggler(n_ranks))
    }

    /// Fraction of healthy throughput retained at `n_ranks` (1.0 = no
    /// straggler pain; tends to `1/slowdown` as `n → ∞` for `p > 0`).
    pub fn efficiency(&self, n_ranks: usize) -> f64 {
        1.0 / (1.0 + (self.slowdown - 1.0) * self.any_straggler(n_ranks))
    }

    /// `(n, efficiency)` at each rank count — the faulty counterpart of
    /// the paper's scaling-efficiency figures.
    pub fn efficiency_curve(&self, rank_counts: &[usize]) -> Vec<(usize, f64)> {
        rank_counts.iter().map(|&n| (n, self.efficiency(n))).collect()
    }
}

/// Fail-stop failures with periodic checkpointing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Mean time between failures of a single rank, seconds.
    pub rank_mtbf: f64,
    /// Wall-clock cost of writing one checkpoint, seconds.
    pub checkpoint_cost: f64,
}

impl FailureModel {
    pub fn new(rank_mtbf: f64, checkpoint_cost: f64) -> Self {
        assert!(rank_mtbf > 0.0 && checkpoint_cost >= 0.0);
        FailureModel { rank_mtbf, checkpoint_cost }
    }

    /// System MTBF across `n_ranks` independent ranks.
    pub fn system_mtbf(&self, n_ranks: usize) -> f64 {
        assert!(n_ranks >= 1);
        self.rank_mtbf / n_ranks as f64
    }

    /// Young/Daly first-order-optimal checkpoint interval (seconds of
    /// compute between checkpoints) at `n_ranks`: `√(2·C·M)`.
    pub fn young_daly_interval(&self, n_ranks: usize) -> f64 {
        (2.0 * self.checkpoint_cost * self.system_mtbf(n_ranks)).sqrt()
    }

    /// Useful-work fraction when checkpointing every `interval` seconds
    /// at `n_ranks`: `1 − C/τ − τ/(2M) − C/M` (checkpoint I/O, expected
    /// half-interval rework per failure, expected checkpoint redone per
    /// failure), clamped to `[0, 1]`. First-order model — accurate for
    /// `τ ≪ M`, which Young/Daly intervals satisfy.
    pub fn goodput(&self, interval: f64, n_ranks: usize) -> f64 {
        assert!(interval > 0.0);
        let m = self.system_mtbf(n_ranks);
        let lost =
            self.checkpoint_cost / interval + interval / (2.0 * m) + self.checkpoint_cost / m;
        (1.0 - lost).clamp(0.0, 1.0)
    }

    /// Goodput at the Young/Daly-optimal interval for `n_ranks`.
    pub fn optimal_goodput(&self, n_ranks: usize) -> f64 {
        self.goodput(self.young_daly_interval(n_ranks), n_ranks)
    }
}

/// One row of an efficiency-under-faults sweep: healthy step time vs
/// the straggler-inflated expectation, plus checkpoint goodput, at one
/// rank count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedPoint {
    pub n_ranks: usize,
    pub healthy_step: f64,
    pub expected_step: f64,
    pub straggler_efficiency: f64,
    pub checkpoint_goodput: f64,
    /// Product of both loss channels: throughput retained end to end.
    pub combined_efficiency: f64,
}

/// Sweep both models over `rank_counts`. `healthy_step` maps a rank
/// count to the fault-free step time (from measurement or from the
/// discrete-event simulator).
pub fn degraded_sweep(
    stragglers: &StragglerModel,
    failures: &FailureModel,
    rank_counts: &[usize],
    healthy_step: impl Fn(usize) -> f64,
) -> Vec<DegradedPoint> {
    rank_counts
        .iter()
        .map(|&n| {
            let base = healthy_step(n);
            let expected = stragglers.expected_step(base, n);
            let seff = stragglers.efficiency(n);
            let good = failures.optimal_goodput(n);
            DegradedPoint {
                n_ranks: n,
                healthy_step: base,
                expected_step: expected,
                straggler_efficiency: seff,
                checkpoint_goodput: good,
                combined_efficiency: seff * good,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stragglers_is_free() {
        let m = StragglerModel::new(0.0, 5.0);
        assert_eq!(m.expected_step(2.0, 4096), 2.0);
        assert_eq!(m.efficiency(4096), 1.0);
    }

    #[test]
    fn straggler_pain_grows_with_scale() {
        let m = StragglerModel::new(0.01, 3.0);
        let e = m.efficiency_curve(&[1, 6, 96, 1536]);
        for w in e.windows(2) {
            assert!(w[1].1 < w[0].1, "efficiency must fall with scale: {e:?}");
        }
        // At n=1 the expected step is the textbook mixture.
        let one = m.expected_step(1.0, 1);
        assert!((one - (0.99 + 0.01 * 3.0)).abs() < 1e-12);
    }

    #[test]
    fn efficiency_floors_at_inverse_slowdown() {
        let m = StragglerModel::new(0.05, 4.0);
        let huge = m.efficiency(100_000);
        assert!(huge > 1.0 / 4.0 - 1e-9 && huge < 1.0 / 4.0 + 1e-3, "{huge}");
    }

    #[test]
    fn young_daly_matches_closed_form() {
        let f = FailureModel::new(3.0e6, 60.0);
        // n = 1000 ⇒ M = 3000 s ⇒ τ* = √(2·60·3000) = 600 s.
        assert!((f.young_daly_interval(1000) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_interval_beats_neighbors() {
        let f = FailureModel::new(1.0e6, 30.0);
        let n = 512;
        let opt = f.young_daly_interval(n);
        let best = f.goodput(opt, n);
        assert!(best > f.goodput(opt * 3.0, n));
        assert!(best > f.goodput(opt / 3.0, n));
        assert!(best > 0.5 && best < 1.0, "{best}");
    }

    #[test]
    fn goodput_degrades_with_scale() {
        let f = FailureModel::new(1.0e6, 30.0);
        assert!(f.optimal_goodput(6) > f.optimal_goodput(1536));
    }

    #[test]
    fn sweep_combines_both_channels() {
        let s = StragglerModel::new(0.005, 2.0);
        let f = FailureModel::new(2.0e6, 45.0);
        let pts = degraded_sweep(&s, &f, &[6, 24, 96], |n| 0.1 + (n as f64).log2() * 0.01);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.expected_step >= p.healthy_step);
            let want = p.straggler_efficiency * p.checkpoint_goodput;
            assert!((p.combined_efficiency - want).abs() < 1e-12);
            assert!(p.combined_efficiency > 0.0 && p.combined_efficiency <= 1.0);
        }
        assert!(pts[2].combined_efficiency < pts[0].combined_efficiency);
    }
}
