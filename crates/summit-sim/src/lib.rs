//! Discrete-event simulator of the ORNL Summit interconnect.
//!
//! Three layers:
//!
//! * [`topology`] — the static machine: Summit's node architecture
//!   (2× POWER9 + 6× V100, NVLink2, X-bus, PCIe, dual-rail EDR HCA) and a
//!   non-blocking fat-tree fabric, with routing between GPU endpoints and
//!   a choice of GPUDirect vs host-staged inter-node data paths.
//! * [`flow`] — the dynamic network: concurrent transfers share link
//!   bandwidth under an equal-share fluid model, re-solved at every flow
//!   arrival/departure.
//! * [`executor`] — MPI-style rank programs (send/recv/compute steps with
//!   rendezvous or eager matching) executed against the flow network,
//!   producing per-rank completion times.
//!
//! The crates above (collectives, MPI personalities, the Horovod runtime)
//! generate rank programs; this crate turns them into time.
//!
//! # Example
//!
//! ```
//! use summit_sim::{Machine, MachineConfig, Executor, Program, Op, DataPath, SimTime};
//!
//! // 12 GPUs on two Summit nodes; rank 0 sends 1 MiB to rank 6 (GDR).
//! let machine = Machine::new(MachineConfig::summit(2));
//! let exec = Executor::dense(&machine, 12);
//! let mut programs = vec![Program::new(); 12];
//! programs[0].step(vec![Op::send(6, 1 << 20, 0, DataPath::Gdr, SimTime::ZERO)]);
//! programs[6].step(vec![Op::recv(0, 0)]);
//! let report = exec.run(programs);
//! assert!(report.makespan > SimTime::ZERO);
//! ```

pub mod degrade;
pub mod executor;
pub mod flow;
pub mod placement;
mod proptests;
pub mod time;
pub mod topology;

pub use degrade::{degraded_sweep, DegradedPoint, FailureModel, StragglerModel};
pub use executor::{ExecReport, Executor, Op, Program};
pub use flow::{FlowId, FlowNet};
pub use placement::Placement;
pub use time::SimTime;
pub use topology::{DataPath, GpuId, Link, LinkId, Machine, MachineConfig, Route};

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(nodes: usize) -> Machine {
        Machine::new(MachineConfig::summit(nodes))
    }

    /// Expected fluid-model time for a lone transfer.
    fn expect_transfer(m: &Machine, src: usize, dst: usize, bytes: u64, path: DataPath) -> f64 {
        let r = m.route(GpuId(src), GpuId(dst), path);
        let bw = r.links.iter().map(|&l| m.link(l).bandwidth).fold(f64::INFINITY, f64::min);
        r.latency.as_secs_f64() + bytes as f64 / bw
    }

    #[test]
    fn point_to_point_nvlink_timing() {
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let mut p = vec![Program::new(); 6];
        let bytes = 100 << 20; // 100 MiB
        p[0].step(vec![Op::send(1, bytes, 0, DataPath::Gdr, SimTime::ZERO)]);
        p[1].step(vec![Op::recv(0, 0)]);
        let rep = exec.run(p);
        let want = expect_transfer(&m, 0, 1, bytes, DataPath::Gdr);
        assert!(
            (rep.makespan.as_secs_f64() - want).abs() / want < 1e-6,
            "got {} want {}",
            rep.makespan.as_secs_f64(),
            want
        );
    }

    #[test]
    fn inter_node_staged_slower_than_gdr() {
        let m = machine(2);
        let bytes = 64 << 20;
        let run = |path: DataPath| {
            let exec = Executor::dense(&m, 12);
            let mut p = vec![Program::new(); 12];
            p[0].step(vec![Op::Send {
                peer: 6,
                bytes,
                tag: 0,
                path,
                overhead: SimTime::ZERO,
                rate_cap: f64::INFINITY,
                eager: false,
            }]);
            p[6].step(vec![Op::recv(0, 0)]);
            exec.run(p).makespan
        };
        // Same link floor (PCIe 16 GB/s) but staged adds latency; with a
        // rate cap it would also lose bandwidth (the MPI profiles set one).
        assert!(run(DataPath::HostStaged) > run(DataPath::Gdr));
    }

    #[test]
    fn rendezvous_blocks_sender_until_recv_posted() {
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let mut p = vec![Program::new(); 6];
        // Receiver computes 5 ms before posting its recv.
        let delay = SimTime::from_secs_f64(5e-3);
        p[0].step(vec![Op::send(1, 1024, 0, DataPath::Gdr, SimTime::ZERO)]);
        p[1].step(vec![Op::compute(delay)]);
        p[1].step(vec![Op::recv(0, 0)]);
        let rep = exec.run(p);
        assert!(rep.rank_finish[0] >= delay, "sender must wait for the late receiver");
    }

    #[test]
    fn eager_send_completes_locally() {
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let mut p = vec![Program::new(); 6];
        let delay = SimTime::from_secs_f64(5e-3);
        p[0].step(vec![Op::Send {
            peer: 1,
            bytes: 1024,
            tag: 0,
            path: DataPath::Gdr,
            overhead: SimTime::from_ns(500),
            rate_cap: f64::INFINITY,
            eager: true,
        }]);
        p[1].step(vec![Op::compute(delay)]);
        p[1].step(vec![Op::recv(0, 0)]);
        let rep = exec.run(p);
        assert_eq!(rep.rank_finish[0], SimTime::from_ns(500), "eager sender returns immediately");
        assert!(rep.rank_finish[1] > delay);
    }

    #[test]
    fn parallel_sendrecv_ring_exchange() {
        // 6 ranks, each sends 10 MiB right and receives from left, all in
        // one step. The transfers mostly use distinct wires, so the
        // makespan must be far below the serialized sum.
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let bytes = 10 << 20;
        let mut p = vec![Program::new(); 6];
        #[allow(clippy::needless_range_loop)]
        for r in 0..6 {
            p[r].step(vec![
                Op::send((r + 1) % 6, bytes, r as u64, DataPath::Gdr, SimTime::ZERO),
                Op::recv((r + 5) % 6, ((r + 5) % 6) as u64),
            ]);
        }
        let rep = exec.run(p);
        let single = expect_transfer(&m, 0, 1, bytes, DataPath::Gdr);
        assert!(
            rep.makespan.as_secs_f64() < 3.0 * single,
            "ring exchange should mostly parallelize: {} vs single {}",
            rep.makespan.as_secs_f64(),
            single
        );
    }

    #[test]
    fn nic_contention_serializes_inter_node_flows() {
        // Two simultaneous GDR flows from node 0 to node 1, one per
        // socket so their PCIe legs are distinct, share the NIC uplink
        // (23 GB/s): each runs at 11.5 GB/s, below the 16 GB/s PCIe
        // floor, so the NIC is the bottleneck.
        let m = machine(2);
        let exec = Executor::dense(&m, 12);
        let bytes: u64 = 1 << 30;
        let mut p = vec![Program::new(); 12];
        p[0].step(vec![Op::send(6, bytes, 0, DataPath::Gdr, SimTime::ZERO)]);
        p[3].step(vec![Op::send(9, bytes, 1, DataPath::Gdr, SimTime::ZERO)]);
        p[6].step(vec![Op::recv(0, 0)]);
        p[9].step(vec![Op::recv(3, 1)]);
        let rep = exec.run(p);
        let want = bytes as f64 / 11.5e9;
        let got = rep.makespan.as_secs_f64();
        assert!((got - want).abs() / want < 0.01, "got {got}, want ≈ {want}");
    }

    #[test]
    fn compute_only_program() {
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let mut p = vec![Program::new(); 6];
        for (i, prog) in p.iter_mut().enumerate() {
            prog.step(vec![Op::compute(SimTime::from_ns(100 * (i as u64 + 1)))]);
        }
        let rep = exec.run(p);
        assert_eq!(rep.makespan, SimTime::from_ns(600));
        assert_eq!(rep.rank_finish[0], SimTime::from_ns(100));
    }

    #[test]
    fn empty_programs_finish_at_zero() {
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let rep = exec.run(vec![Program::new(); 6]);
        assert_eq!(rep.makespan, SimTime::ZERO);
    }

    #[test]
    fn empty_steps_are_skipped() {
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let mut p = vec![Program::new(); 6];
        p[0].step(vec![]);
        p[0].step(vec![Op::compute(SimTime::from_ns(7))]);
        p[0].step(vec![]);
        let rep = exec.run(p);
        assert_eq!(rep.rank_finish[0], SimTime::from_ns(7));
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn unmatched_recv_deadlocks() {
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let mut p = vec![Program::new(); 6];
        p[0].step(vec![Op::recv(1, 0)]);
        exec.run(p);
    }

    #[test]
    fn tags_disambiguate_out_of_order_recvs() {
        // Eager sends with distinct tags, received in the opposite order:
        // both must complete, like real MPI tag matching.
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let eager_send = |peer, bytes, tag| Op::Send {
            peer,
            bytes,
            tag,
            path: DataPath::Gdr,
            overhead: SimTime::ZERO,
            rate_cap: f64::INFINITY,
            eager: true,
        };
        let mut p = vec![Program::new(); 6];
        p[0].step(vec![eager_send(1, 1024, 7)]);
        p[0].step(vec![eager_send(1, 2048, 9)]);
        p[1].step(vec![Op::recv(0, 9)]);
        p[1].step(vec![Op::recv(0, 7)]);
        let rep = exec.run(p);
        assert!(rep.makespan > SimTime::ZERO);
    }

    #[test]
    fn report_counts_link_bytes() {
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let mut p = vec![Program::new(); 6];
        p[0].step(vec![Op::send(1, 1 << 20, 0, DataPath::Gdr, SimTime::ZERO)]);
        p[1].step(vec![Op::recv(0, 0)]);
        let rep = exec.run(p);
        assert!((rep.link_bytes_total - (1u64 << 20) as f64).abs() < 1.0);
    }

    #[test]
    fn overhead_delays_transfer_start() {
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let overhead = SimTime::from_secs_f64(1e-3);
        let mut p = vec![Program::new(); 6];
        p[0].step(vec![Op::send(1, 1024, 0, DataPath::Gdr, overhead)]);
        p[1].step(vec![Op::recv(0, 0)]);
        let rep = exec.run(p);
        assert!(rep.makespan > overhead);
    }

    #[test]
    fn rate_cap_limits_a_transfer() {
        let m = machine(1);
        let exec = Executor::dense(&m, 6);
        let bytes: u64 = 1 << 30;
        let mut p = vec![Program::new(); 6];
        p[0].step(vec![Op::Send {
            peer: 1,
            bytes,
            tag: 0,
            path: DataPath::Gdr,
            overhead: SimTime::ZERO,
            rate_cap: 5e9,
            eager: false,
        }]);
        p[1].step(vec![Op::recv(0, 0)]);
        let rep = exec.run(p);
        let want = bytes as f64 / 5e9;
        assert!((rep.makespan.as_secs_f64() - want).abs() / want < 0.01);
    }

    #[test]
    fn dense_placement_rejects_oversubscription() {
        let m = machine(1);
        let result = std::panic::catch_unwind(|| Executor::dense(&m, 7));
        assert!(result.is_err());
    }

    #[test]
    fn deterministic_repeat() {
        let m = machine(4);
        let build = || {
            let mut p = vec![Program::new(); 24];
            #[allow(clippy::needless_range_loop)]
            for r in 0..24usize {
                p[r].step(vec![
                    Op::send((r + 1) % 24, 4 << 20, r as u64, DataPath::Gdr, SimTime::ZERO),
                    Op::recv((r + 23) % 24, ((r + 23) % 24) as u64),
                ]);
                p[r].step(vec![Op::compute(SimTime::from_ns(1000))]);
            }
            p
        };
        let exec = Executor::dense(&m, 24);
        let a = exec.run(build());
        let b = exec.run(build());
        assert_eq!(a.rank_finish, b.rank_finish);
        assert_eq!(a.makespan, b.makespan);
    }
}
