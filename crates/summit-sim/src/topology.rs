//! The Summit machine model.
//!
//! One Summit node is 2× POWER9 + 6× V100: three GPUs per socket, fully
//! connected to each other and to their host CPU by dual-brick NVLink2
//! (50 GB/s per direction per pair), sockets bridged by a 64 GB/s X-bus,
//! and a dual-rail EDR InfiniBand HCA (2 × 12.5 GB/s) reachable from each
//! socket over PCIe gen4. Nodes sit in racks of 18 under a non-blocking
//! fat tree.
//!
//! The fabric core is modelled as ideal (non-blocking, latency only), so
//! contention arises exactly where it does on the real machine for
//! allreduce traffic: at the per-node HCA injection links, the X-bus, the
//! PCIe legs, and the NVLink bricks.
//!
//! All links are *directed*; a physical full-duplex connection is two
//! `Link` entries. Routing returns the ordered directed-link list plus a
//! propagation latency for a message between two GPU endpoints.

use crate::time::SimTime;

/// Global GPU identifier: `node * gpus_per_node + local`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub usize);

/// Index of a directed link in the machine's link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Which wires a message takes between nodes (selected per message by the
/// MPI personality, not by the topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPath {
    /// GPUDirect RDMA: the HCA reads/writes GPU memory directly over the
    /// PCIe root; host memory is not touched.
    Gdr,
    /// Copy into a host bounce buffer first (NVLink to the CPU), then
    /// inject from host memory. What non-CUDA-aware paths and default
    /// Spectrum-MPI-style pipelining do.
    HostStaged,
}

/// A directed link with a fixed bandwidth. Latency is accounted per-route.
#[derive(Debug, Clone)]
pub struct Link {
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Human-readable name, e.g. `n3.gpu1->cpu0`.
    pub name: String,
}

/// Published-spec parameters of the machine. All bandwidths bytes/s,
/// latencies seconds.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    pub nodes: usize,
    pub gpus_per_node: usize,
    pub sockets_per_node: usize,
    pub nodes_per_rack: usize,
    /// NVLink2 dual-brick GPU<->GPU and GPU<->CPU: 50 GB/s per direction.
    pub nvlink_bw: f64,
    /// GPU-GPU NVLink latency.
    pub nvlink_lat: f64,
    /// POWER9 X-bus between sockets: 64 GB/s.
    pub xbus_bw: f64,
    pub xbus_lat: f64,
    /// PCIe gen4 leg from each socket to the shared HCA: ~16 GB/s.
    pub pcie_bw: f64,
    pub pcie_lat: f64,
    /// Dual-rail EDR injection: 2 x 12.5 GB/s, ~23 GB/s achievable.
    pub nic_bw: f64,
    /// NIC + first switch latency.
    pub nic_lat: f64,
    /// Per-switch-hop latency in the fat tree.
    pub switch_hop_lat: f64,
}

impl MachineConfig {
    /// Summit defaults for a machine of `nodes` nodes.
    pub fn summit(nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        MachineConfig {
            nodes,
            gpus_per_node: 6,
            sockets_per_node: 2,
            nodes_per_rack: 18,
            nvlink_bw: 50e9,
            nvlink_lat: 2.0e-6,
            xbus_bw: 64e9,
            xbus_lat: 0.6e-6,
            pcie_bw: 16e9,
            pcie_lat: 0.9e-6,
            nic_bw: 23e9,
            nic_lat: 1.0e-6,
            switch_hop_lat: 0.15e-6,
        }
    }

    /// Summit sized for at least `gpus` GPUs (rounded up to whole nodes).
    pub fn summit_for_gpus(gpus: usize) -> Self {
        assert!(gpus >= 1);
        Self::summit(gpus.div_ceil(6))
    }

    /// A counterfactual Summit whose GPUs hang off PCIe instead of
    /// NVLink (DGX-1-era PCIe boxes): GPU↔GPU and GPU↔CPU links drop to
    /// PCIe gen3 x16 speeds. Used by the interconnect-sensitivity
    /// ablation.
    pub fn summit_pcie_only(nodes: usize) -> Self {
        MachineConfig { nvlink_bw: 12e9, nvlink_lat: 4.0e-6, ..Self::summit(nodes) }
    }

    /// Scale the per-node injection (HCA) bandwidth, e.g. `0.5` models
    /// single-rail operation.
    pub fn with_nic_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "NIC scale must be positive");
        self.nic_bw *= scale;
        self
    }

    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// A fully-built machine: link table plus routing.
#[derive(Debug, Clone)]
pub struct Machine {
    pub config: MachineConfig,
    links: Vec<Link>,
    /// Dense lookup: directed link id for (from, to) endpoint pairs.
    /// Keyed by a per-node layout described in `link_index`.
    gpu_cpu: Vec<LinkId>, // [node][local][dir] dir 0 = gpu->cpu
    gpu_gpu: Vec<Vec<LinkId>>, // [node*gpn + a][b] directed a->b, same socket only
    xbus: Vec<LinkId>,         // [node][dir] dir 0 = socket0->socket1
    cpu_nic: Vec<LinkId>,      // [node][socket][dir] dir 0 = cpu->nic
    nic_fabric: Vec<LinkId>,   // [node][dir] dir 0 = nic->fabric (up)
}

/// A route: the directed links a message traverses, plus fixed
/// propagation latency (switch hops, wire and adapter latencies).
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    pub links: Vec<LinkId>,
    pub latency: SimTime,
}

impl Machine {
    pub fn new(config: MachineConfig) -> Self {
        let gpn = config.gpus_per_node;
        let spn = config.sockets_per_node;
        assert!(gpn.is_multiple_of(spn), "GPUs must divide evenly across sockets");
        let mut links = Vec::new();
        let push = |links: &mut Vec<Link>, bw: f64, name: String| -> LinkId {
            let id = LinkId(links.len());
            links.push(Link { bandwidth: bw, name });
            id
        };

        let mut gpu_cpu = Vec::with_capacity(config.nodes * gpn * 2);
        let mut gpu_gpu: Vec<Vec<LinkId>> = vec![Vec::new(); config.nodes * gpn];
        let mut xbus = Vec::with_capacity(config.nodes * 2);
        let mut cpu_nic = Vec::with_capacity(config.nodes * spn * 2);
        let mut nic_fabric = Vec::with_capacity(config.nodes * 2);
        let per_socket = gpn / spn;

        for n in 0..config.nodes {
            for g in 0..gpn {
                let s = g / per_socket;
                gpu_cpu.push(push(&mut links, config.nvlink_bw, format!("n{n}.gpu{g}->cpu{s}")));
                gpu_cpu.push(push(&mut links, config.nvlink_bw, format!("n{n}.cpu{s}->gpu{g}")));
            }
            // NVLink peer links within each socket triple (directed, a != b).
            for a in 0..gpn {
                let sa = a / per_socket;
                let mut row = Vec::with_capacity(gpn);
                for b in 0..gpn {
                    if a != b && sa == b / per_socket {
                        row.push(push(
                            &mut links,
                            config.nvlink_bw,
                            format!("n{n}.gpu{a}->gpu{b}"),
                        ));
                    } else {
                        // placeholder; never routed
                        row.push(LinkId(usize::MAX));
                    }
                }
                gpu_gpu[n * gpn + a] = row;
            }
            xbus.push(push(&mut links, config.xbus_bw, format!("n{n}.xbus0->1")));
            xbus.push(push(&mut links, config.xbus_bw, format!("n{n}.xbus1->0")));
            for s in 0..spn {
                cpu_nic.push(push(&mut links, config.pcie_bw, format!("n{n}.cpu{s}->nic")));
                cpu_nic.push(push(&mut links, config.pcie_bw, format!("n{n}.nic->cpu{s}")));
            }
            nic_fabric.push(push(&mut links, config.nic_bw, format!("n{n}.nic->fabric")));
            nic_fabric.push(push(&mut links, config.nic_bw, format!("n{n}.fabric->nic")));
        }

        Machine { config, links, gpu_cpu, gpu_gpu, xbus, cpu_nic, nic_fabric }
    }

    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    pub fn node_of(&self, gpu: GpuId) -> usize {
        gpu.0 / self.config.gpus_per_node
    }

    pub fn local_of(&self, gpu: GpuId) -> usize {
        gpu.0 % self.config.gpus_per_node
    }

    pub fn socket_of(&self, gpu: GpuId) -> usize {
        self.local_of(gpu) / (self.config.gpus_per_node / self.config.sockets_per_node)
    }

    pub fn rack_of_node(&self, node: usize) -> usize {
        node / self.config.nodes_per_rack
    }

    fn link_gpu_cpu(&self, node: usize, local: usize, up: bool) -> LinkId {
        self.gpu_cpu[(node * self.config.gpus_per_node + local) * 2 + usize::from(!up)]
    }

    fn link_xbus(&self, node: usize, from_socket: usize) -> LinkId {
        self.xbus[node * 2 + from_socket]
    }

    fn link_cpu_nic(&self, node: usize, socket: usize, to_nic: bool) -> LinkId {
        self.cpu_nic[(node * self.config.sockets_per_node + socket) * 2 + usize::from(!to_nic)]
    }

    fn link_nic_fabric(&self, node: usize, up: bool) -> LinkId {
        self.nic_fabric[node * 2 + usize::from(!up)]
    }

    /// Route a message `src -> dst`. `path` selects the inter-node data
    /// path; it is ignored for intra-node routes (always NVLink/X-bus).
    ///
    /// `src == dst` yields an empty route with a small local-copy latency.
    pub fn route(&self, src: GpuId, dst: GpuId, path: DataPath) -> Route {
        assert!(src.0 < self.config.total_gpus(), "src GPU out of range");
        assert!(dst.0 < self.config.total_gpus(), "dst GPU out of range");
        let c = &self.config;
        if src == dst {
            return Route { links: Vec::new(), latency: SimTime::from_secs_f64(0.3e-6) };
        }
        let (sn, dn) = (self.node_of(src), self.node_of(dst));
        let (sl, dl) = (self.local_of(src), self.local_of(dst));
        let (ss, ds) = (self.socket_of(src), self.socket_of(dst));
        if sn == dn {
            if ss == ds {
                // Direct NVLink peer link.
                let id = self.gpu_gpu[sn * c.gpus_per_node + sl][dl];
                debug_assert_ne!(id.0, usize::MAX);
                return Route { links: vec![id], latency: SimTime::from_secs_f64(c.nvlink_lat) };
            }
            // Cross-socket: GPU -> CPU -> X-bus -> CPU -> GPU.
            return Route {
                links: vec![
                    self.link_gpu_cpu(sn, sl, true),
                    self.link_xbus(sn, ss),
                    self.link_gpu_cpu(dn, dl, false),
                ],
                latency: SimTime::from_secs_f64(c.nvlink_lat + c.xbus_lat + c.nvlink_lat),
            };
        }
        // Inter-node. Switch hops: 2 within a rack (leaf up/down), 4 across
        // racks (leaf, spine, spine, leaf) — the fabric itself is ideal.
        let hops = if self.rack_of_node(sn) == self.rack_of_node(dn) { 2.0 } else { 4.0 };
        let wire_lat = 2.0 * c.nic_lat + hops * c.switch_hop_lat;
        let mut links = Vec::with_capacity(8);
        let latency = match path {
            DataPath::Gdr => {
                // HCA pulls straight from GPU memory over the PCIe root of
                // the GPU's socket, and pushes into the remote GPU the
                // same way.
                links.push(self.link_cpu_nic(sn, ss, true));
                links.push(self.link_nic_fabric(sn, true));
                links.push(self.link_nic_fabric(dn, false));
                links.push(self.link_cpu_nic(dn, ds, false));
                SimTime::from_secs_f64(2.0 * c.pcie_lat + wire_lat)
            }
            DataPath::HostStaged => {
                // Bounce through host memory on both sides: the NVLink
                // GPU->CPU leg and the PCIe CPU->NIC leg both carry the
                // payload.
                links.push(self.link_gpu_cpu(sn, sl, true));
                links.push(self.link_cpu_nic(sn, ss, true));
                links.push(self.link_nic_fabric(sn, true));
                links.push(self.link_nic_fabric(dn, false));
                links.push(self.link_cpu_nic(dn, ds, false));
                links.push(self.link_gpu_cpu(dn, dl, false));
                SimTime::from_secs_f64(2.0 * (c.nvlink_lat + c.pcie_lat) + wire_lat)
            }
        };
        Route { links, latency }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Machine {
        Machine::new(MachineConfig::summit(22)) // 132 GPUs
    }

    #[test]
    fn summit_config_has_132_gpus_at_22_nodes() {
        assert_eq!(MachineConfig::summit(22).total_gpus(), 132);
        assert_eq!(MachineConfig::summit_for_gpus(132).nodes, 22);
        assert_eq!(MachineConfig::summit_for_gpus(7).nodes, 2);
    }

    #[test]
    fn placement_math() {
        let m = m();
        let g = GpuId(6 * 3 + 4); // node 3, local 4 -> socket 1
        assert_eq!(m.node_of(g), 3);
        assert_eq!(m.local_of(g), 4);
        assert_eq!(m.socket_of(g), 1);
        assert_eq!(m.rack_of_node(17), 0);
        assert_eq!(m.rack_of_node(18), 1);
    }

    #[test]
    fn same_socket_route_is_single_nvlink() {
        let m = m();
        let r = m.route(GpuId(0), GpuId(2), DataPath::Gdr);
        assert_eq!(r.links.len(), 1);
        assert_eq!(m.link(r.links[0]).bandwidth, 50e9);
        assert_eq!(m.link(r.links[0]).name, "n0.gpu0->gpu2");
    }

    #[test]
    fn cross_socket_route_uses_xbus() {
        let m = m();
        let r = m.route(GpuId(1), GpuId(5), DataPath::Gdr);
        assert_eq!(r.links.len(), 3);
        assert!(m.link(r.links[1]).name.contains("xbus"));
        // The NVLink legs (50 GB/s) floor this route; the X-bus (64 GB/s)
        // only becomes the bottleneck under contention.
        let min_bw = r.links.iter().map(|&l| m.link(l).bandwidth).fold(f64::INFINITY, f64::min);
        assert_eq!(min_bw, 50e9);
    }

    #[test]
    fn gdr_route_skips_host_memory() {
        let m = m();
        let r = m.route(GpuId(0), GpuId(6), DataPath::Gdr);
        assert_eq!(r.links.len(), 4);
        assert!(r.links.iter().all(|&l| !m.link(l).name.contains("gpu0->cpu")));
    }

    #[test]
    fn staged_route_traverses_host_on_both_sides() {
        let m = m();
        let r = m.route(GpuId(0), GpuId(6), DataPath::HostStaged);
        assert_eq!(r.links.len(), 6);
        assert!(m.link(r.links[0]).name.ends_with("gpu0->cpu0"));
        assert!(m.link(r.links[5]).name.ends_with("cpu0->gpu0"));
        // Staged latency strictly exceeds GDR latency.
        let gdr = m.route(GpuId(0), GpuId(6), DataPath::Gdr);
        assert!(r.latency > gdr.latency);
    }

    #[test]
    fn cross_rack_has_more_latency_than_intra_rack() {
        let m = m();
        let near = m.route(GpuId(0), GpuId(6), DataPath::Gdr); // nodes 0,1: rack 0
        let far = m.route(GpuId(0), GpuId(6 * 20), DataPath::Gdr); // node 20 -> rack 1
        assert!(far.latency > near.latency);
        assert_eq!(far.links.len(), near.links.len());
    }

    #[test]
    fn self_route_is_local() {
        let m = m();
        let r = m.route(GpuId(3), GpuId(3), DataPath::Gdr);
        assert!(r.links.is_empty());
        assert!(r.latency > SimTime::ZERO);
    }

    #[test]
    fn inter_node_bottleneck_is_nic_for_gdr() {
        let m = m();
        let r = m.route(GpuId(0), GpuId(7), DataPath::Gdr);
        let min_bw = r.links.iter().map(|&l| m.link(l).bandwidth).fold(f64::INFINITY, f64::min);
        assert_eq!(min_bw, 16e9); // PCIe leg is the per-flow floor
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn route_checks_bounds() {
        let m = m();
        m.route(GpuId(0), GpuId(10_000), DataPath::Gdr);
    }

    #[test]
    fn every_routed_link_is_real() {
        let m = m();
        let paths = [DataPath::Gdr, DataPath::HostStaged];
        for &s in &[0usize, 1, 5, 6, 17, 131] {
            for &d in &[0usize, 2, 3, 11, 60, 131] {
                for &p in &paths {
                    let r = m.route(GpuId(s), GpuId(d), p);
                    for l in r.links {
                        assert!(l.0 < m.n_links(), "placeholder link escaped routing");
                    }
                }
            }
        }
    }
}
