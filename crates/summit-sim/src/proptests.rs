//! Property-based tests of the simulator core: conservation laws and
//! deadlock freedom under randomized workloads.

#![cfg(test)]

use proptest::prelude::*;

use crate::{
    DataPath, Executor, FlowNet, GpuId, LinkId, Machine, MachineConfig, Op, Program, SimTime,
};

fn machine() -> Machine {
    Machine::new(MachineConfig::summit(3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Byte conservation: when every flow drains, each flow's size shows
    /// up exactly once on each link of its route.
    #[test]
    fn flow_network_conserves_bytes(
        specs in prop::collection::vec((0usize..18, 0usize..18, 1u64..20_000_000), 1..20)
    ) {
        let m = machine();
        let mut net: FlowNet<usize> = FlowNet::new(&m);
        let mut expected = vec![0.0f64; m.n_links()];
        let mut started = 0usize;
        for &(s, d, bytes) in &specs {
            if s == d {
                continue;
            }
            let r = m.route(GpuId(s), GpuId(d), DataPath::Gdr);
            for &l in &r.links {
                expected[l.0] += bytes as f64;
            }
            net.start(r.links, bytes as f64, f64::INFINITY, started);
            started += 1;
        }
        while let Some((t, f)) = net.next_completion() {
            net.advance_to(t);
            net.finish(f);
        }
        // Completion times are quantized to integer nanoseconds, so each
        // flow may leave up to ~bw × 0.5 ns ≈ 25 bytes unaccounted.
        let tol = 32.0 * specs.len() as f64 + 1.0;
        #[allow(clippy::needless_range_loop)]
        for i in 0..m.n_links() {
            let got = net.bytes_on(LinkId(i));
            prop_assert!(
                (got - expected[i]).abs() <= tol,
                "link {i}: carried {got}, expected {}", expected[i]
            );
        }
    }

    /// Randomized ring exchanges with random sizes and per-rank delays
    /// never deadlock, and the makespan is bounded below by the slowest
    /// single transfer and above by the serialized sum.
    #[test]
    fn random_ring_programs_complete(
        sizes in prop::collection::vec(1u64..5_000_000, 4..16),
        delays in prop::collection::vec(0u64..1_000_000, 4..16),
        rounds in 1usize..4,
    ) {
        let n = sizes.len().min(delays.len()).min(18);
        prop_assume!(n >= 2);
        let m = machine();
        let exec = Executor::dense(&m, n);
        let mut programs = vec![Program::new(); n];
        for (r, prog) in programs.iter_mut().enumerate() {
            prog.step(vec![Op::compute(SimTime::from_ns(delays[r]))]);
            for round in 0..rounds {
                let tag = (round * n) as u64;
                prog.step(vec![
                    Op::send((r + 1) % n, sizes[r], tag + r as u64, DataPath::Gdr, SimTime::ZERO),
                    Op::recv((r + n - 1) % n, tag + ((r + n - 1) % n) as u64),
                ]);
            }
        }
        let rep = exec.run(programs);
        // Lower bound: the largest single transfer at best-case rate.
        let max_bytes = *sizes[..n].iter().max().expect("non-empty") as f64;
        let lower = max_bytes / 50e9;
        prop_assert!(rep.makespan.as_secs_f64() >= lower * 0.99);
        // Upper bound: everything serialized at the slowest plausible
        // rate plus all latencies and delays.
        let total_bytes: f64 = sizes[..n].iter().map(|&b| b as f64).sum();
        let upper = (rounds as f64) * (total_bytes / 5e9 + n as f64 * 1e-4)
            + delays[..n].iter().sum::<u64>() as f64 * 1e-9
            + 1.0;
        prop_assert!(rep.makespan.as_secs_f64() <= upper);
    }

    /// Adding a contending flow never speeds up an existing transfer.
    #[test]
    fn contention_is_monotone(bytes in 1u64..50_000_000) {
        let m = machine();
        let run = |with_contender: bool| -> f64 {
            let exec = Executor::dense(&m, 12);
            let mut p = vec![Program::new(); 12];
            p[0].step(vec![Op::send(6, bytes, 0, DataPath::Gdr, SimTime::ZERO)]);
            p[6].step(vec![Op::recv(0, 0)]);
            if with_contender {
                p[1].step(vec![Op::send(7, bytes, 1, DataPath::Gdr, SimTime::ZERO)]);
                p[7].step(vec![Op::recv(1, 1)]);
            }
            exec.run(p).rank_finish[6].as_secs_f64()
        };
        let alone = run(false);
        let contended = run(true);
        prop_assert!(contended >= alone * 0.999, "contention sped things up: {alone} -> {contended}");
    }
}
