//! Simulation time: a newtype over integer nanoseconds.
//!
//! Integer keys keep the event queue totally ordered without
//! floating-point tie-break hazards; conversions to/from `f64` seconds
//! happen only at the API boundary.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any reachable simulation time.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Construct from seconds; panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow")) // lint: allow(unwrap): deliberate overflow trap in all builds
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow")) // lint: allow(unwrap): deliberate underflow trap in all builds
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", summit_metrics::fmt_time_s(self.as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_roundtrip() {
        let t = SimTime::from_secs_f64(1.25e-3);
        assert_eq!(t.as_ns(), 1_250_000);
        assert!((t.as_secs_f64() - 1.25e-3).abs() < 1e-15);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(30);
        assert_eq!((a + b).as_ns(), 130);
        assert_eq!((a - b).as_ns(), 70);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_seconds_panics() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_ns(5) < SimTime::from_ns(6));
        assert!(SimTime::FAR_FUTURE > SimTime::from_secs_f64(1e6));
    }

    #[test]
    fn display_uses_units() {
        assert_eq!(SimTime::from_ns(1_500_000).to_string(), "1.50 ms");
    }
}
