//! Fluid-flow network state: concurrent transfers share link bandwidth.
//!
//! Each active flow gets `min(rate_cap, min over its links of bw/load)`
//! where `load` is the number of flows currently crossing the link — the
//! equal-share approximation of max–min fairness used by SimGrid-class
//! simulators. Rates are re-solved whenever the flow set changes, which
//! is exact for the collective schedules we run (flows start and stop at
//! event boundaries).

use crate::time::SimTime;
use crate::topology::{LinkId, Machine};

/// Handle to an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

#[derive(Debug, Clone)]
struct Flow<T> {
    links: Vec<LinkId>,
    remaining: f64,
    rate_cap: f64,
    rate: f64,
    token: T,
}

/// Tolerance (bytes) under which a flow counts as drained, absorbing the
/// floating-point error accumulated across rate changes.
const DRAIN_EPS: f64 = 1e-3;

/// The dynamic state of the machine's links: active flows and their
/// currently assigned rates.
#[derive(Debug)]
pub struct FlowNet<T> {
    link_bw: Vec<f64>,
    link_load: Vec<u32>,
    /// Cumulative bytes moved per link, for utilization reports.
    link_bytes: Vec<f64>,
    flows: Vec<Option<Flow<T>>>,
    free: Vec<usize>,
    active: usize,
    now: SimTime,
}

impl<T> FlowNet<T> {
    pub fn new(machine: &Machine) -> Self {
        let n = machine.n_links();
        FlowNet {
            link_bw: (0..n).map(|i| machine.link(LinkId(i)).bandwidth).collect(),
            link_load: vec![0; n],
            link_bytes: vec![0.0; n],
            flows: Vec::new(),
            free: Vec::new(),
            active: 0,
            now: SimTime::ZERO,
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn n_active(&self) -> usize {
        self.active
    }

    /// Cumulative bytes carried by `link` so far.
    pub fn bytes_on(&self, link: LinkId) -> f64 {
        self.link_bytes[link.0]
    }

    /// Begin a flow at the current time. `rate_cap` may be
    /// `f64::INFINITY`. An empty `links` route is only rate-limited by the
    /// cap. Zero-byte flows are legal and complete at the next
    /// `next_completion` query.
    pub fn start(&mut self, links: Vec<LinkId>, bytes: f64, rate_cap: f64, token: T) -> FlowId {
        assert!(bytes >= 0.0 && bytes.is_finite(), "invalid flow size {bytes}");
        assert!(rate_cap > 0.0, "rate cap must be positive");
        for &l in &links {
            self.link_load[l.0] += 1;
        }
        let flow = Flow { links, remaining: bytes, rate_cap, rate: 0.0, token };
        let idx = match self.free.pop() {
            Some(i) => {
                self.flows[i] = Some(flow);
                i
            }
            None => {
                self.flows.push(Some(flow));
                self.flows.len() - 1
            }
        };
        self.active += 1;
        self.recompute_rates();
        FlowId(idx)
    }

    /// Advance simulated time, draining bytes at current rates.
    /// `t` must not precede the current time.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "time went backwards: {t} < {}", self.now);
        let dt = (t - self.now).as_secs_f64();
        if dt > 0.0 {
            for f in self.flows.iter_mut().flatten() {
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                for &l in &f.links {
                    self.link_bytes[l.0] += moved;
                }
            }
        }
        self.now = t;
    }

    /// Earliest completion among active flows: `(time, flow)`. `None` when
    /// no flows are active. Flows with unbounded rate (empty route,
    /// infinite cap) or already-drained bytes complete "now".
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for (i, f) in self.flows.iter().enumerate() {
            let Some(f) = f else { continue };
            let t = if f.remaining <= DRAIN_EPS || f.rate == f64::INFINITY {
                self.now
            } else {
                debug_assert!(f.rate > 0.0, "active flow with zero rate");
                self.now + SimTime::from_secs_f64(f.remaining / f.rate)
            };
            // Tie-break on flow index for determinism.
            if best.is_none_or(|(bt, bf)| t < bt || (t == bt && i < bf.0)) {
                best = Some((t, FlowId(i)));
            }
        }
        best
    }

    /// Remove a completed (or cancelled) flow and return its token.
    /// Panics if the id is stale.
    pub fn finish(&mut self, id: FlowId) -> T {
        let f = self.flows[id.0].take().expect("finish on stale flow id"); // lint: allow(unwrap): documented panic contract of finish()
        for &l in &f.links {
            debug_assert!(self.link_load[l.0] > 0);
            self.link_load[l.0] -= 1;
        }
        self.free.push(id.0);
        self.active -= 1;
        self.recompute_rates();
        f.token
    }

    fn recompute_rates(&mut self) {
        for f in self.flows.iter_mut().flatten() {
            let mut rate = f.rate_cap;
            for &l in &f.links {
                rate = rate.min(self.link_bw[l.0] / f64::from(self.link_load[l.0]));
            }
            f.rate = rate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{DataPath, GpuId, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig::summit(2))
    }

    #[test]
    fn single_flow_runs_at_bottleneck() {
        let m = machine();
        let mut net: FlowNet<()> = FlowNet::new(&m);
        let r = m.route(GpuId(0), GpuId(2), DataPath::Gdr); // 50 GB/s NVLink
        net.start(r.links, 50e9, f64::INFINITY, ());
        let (t, f) = net.next_completion().unwrap();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9, "50 GB over 50 GB/s = 1 s, got {t}");
        net.advance_to(t);
        net.finish(f);
        assert_eq!(net.n_active(), 0);
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let m = machine();
        let mut net: FlowNet<u32> = FlowNet::new(&m);
        let r = m.route(GpuId(0), GpuId(2), DataPath::Gdr);
        net.start(r.links.clone(), 50e9, f64::INFINITY, 1);
        net.start(r.links, 50e9, f64::INFINITY, 2);
        let (t, _) = net.next_completion().unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9, "shared link halves the rate");
    }

    #[test]
    fn departure_speeds_up_remaining_flow() {
        let m = machine();
        let mut net: FlowNet<u32> = FlowNet::new(&m);
        let r = m.route(GpuId(0), GpuId(2), DataPath::Gdr);
        net.start(r.links.clone(), 25e9, f64::INFINITY, 1); // finishes first
        net.start(r.links, 50e9, f64::INFINITY, 2);
        // Both run at 25 GB/s; flow 1 finishes at t=1.
        let (t1, f1) = net.next_completion().unwrap();
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-9);
        net.advance_to(t1);
        assert_eq!(net.finish(f1), 1);
        // Flow 2 has 25 GB left, now at full 50 GB/s: finishes at t=1.5.
        let (t2, f2) = net.next_completion().unwrap();
        assert!((t2.as_secs_f64() - 1.5).abs() < 1e-6, "got {t2}");
        net.advance_to(t2);
        assert_eq!(net.finish(f2), 2);
    }

    #[test]
    fn rate_cap_binds_below_link_bandwidth() {
        let m = machine();
        let mut net: FlowNet<()> = FlowNet::new(&m);
        let r = m.route(GpuId(0), GpuId(2), DataPath::Gdr);
        net.start(r.links, 10e9, 5e9, ());
        let (t, _) = net.next_completion().unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let m = machine();
        let mut net: FlowNet<()> = FlowNet::new(&m);
        let r = m.route(GpuId(0), GpuId(2), DataPath::Gdr);
        net.start(r.links, 0.0, f64::INFINITY, ());
        let (t, _) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn empty_route_is_unconstrained() {
        let m = machine();
        let mut net: FlowNet<()> = FlowNet::new(&m);
        net.start(Vec::new(), 1e12, f64::INFINITY, ());
        let (t, _) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn link_byte_accounting() {
        let m = machine();
        let mut net: FlowNet<()> = FlowNet::new(&m);
        let r = m.route(GpuId(0), GpuId(2), DataPath::Gdr);
        let link = r.links[0];
        net.start(r.links, 50e9, f64::INFINITY, ());
        let (t, f) = net.next_completion().unwrap();
        net.advance_to(t);
        net.finish(f);
        assert!((net.bytes_on(link) - 50e9).abs() < 1.0);
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let m = machine();
        let mut net: FlowNet<u32> = FlowNet::new(&m);
        let r1 = m.route(GpuId(0), GpuId(1), DataPath::Gdr);
        let r2 = m.route(GpuId(3), GpuId(4), DataPath::Gdr);
        net.start(r1.links, 50e9, f64::INFINITY, 1);
        net.start(r2.links, 50e9, f64::INFINITY, 2);
        let (t, _) = net.next_completion().unwrap();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn cannot_rewind_time() {
        let m = machine();
        let mut net: FlowNet<()> = FlowNet::new(&m);
        net.advance_to(SimTime::from_ns(10));
        net.advance_to(SimTime::from_ns(5));
    }

    #[test]
    #[should_panic(expected = "stale flow id")]
    fn double_finish_panics() {
        let m = machine();
        let mut net: FlowNet<()> = FlowNet::new(&m);
        let r = m.route(GpuId(0), GpuId(2), DataPath::Gdr);
        let f = net.start(r.links, 0.0, f64::INFINITY, ());
        net.finish(f);
        net.finish(f);
    }

    #[test]
    fn flow_slot_reuse() {
        let m = machine();
        let mut net: FlowNet<u32> = FlowNet::new(&m);
        let r = m.route(GpuId(0), GpuId(2), DataPath::Gdr);
        let f1 = net.start(r.links.clone(), 0.0, f64::INFINITY, 1);
        net.finish(f1);
        let f2 = net.start(r.links, 0.0, f64::INFINITY, 2);
        assert_eq!(f1, f2, "freed slot should be reused");
        assert_eq!(net.finish(f2), 2);
    }
}
