//! Rank-to-GPU placement strategies.
//!
//! MPI launchers control how ranks map onto GPUs; for topology-sensitive
//! collectives the difference between packing ranks node-by-node and
//! scattering them round-robin across nodes is the difference between
//! NVLink hops and NIC hops on every ring edge. `jsrun` on Summit packs
//! by default ([`Placement::Dense`]); the alternatives exist to quantify
//! what mis-placement costs (ablation A11).

use crate::topology::{GpuId, Machine};

/// How ranks are assigned to GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Pack ranks onto consecutive GPUs, filling each node before the
    /// next (`jsrun` default; ring neighbours are mostly NVLink peers).
    Dense,
    /// Round-robin across nodes: rank `i` on node `i mod nodes`. Every
    /// ring edge crosses the fabric — the pathological layout.
    RoundRobinNodes,
    /// Fill both sockets alternately within each node (socket-interleaved
    /// order; intra-node neighbours alternate NVLink and X-bus hops).
    SocketInterleaved,
}

impl Placement {
    /// Compute the GPU for each of `n_ranks` ranks on `machine`.
    ///
    /// Panics if the machine has fewer GPUs than ranks.
    pub fn assign(&self, machine: &Machine, n_ranks: usize) -> Vec<GpuId> {
        let total = machine.config.total_gpus();
        assert!(n_ranks <= total, "machine has {total} GPUs, need {n_ranks}");
        let gpn = machine.config.gpus_per_node;
        let nodes = machine.config.nodes;
        match self {
            Placement::Dense => (0..n_ranks).map(GpuId).collect(),
            Placement::RoundRobinNodes => {
                // rank i -> node i % nodes, local slot i / nodes.
                (0..n_ranks)
                    .map(|i| {
                        let node = i % nodes;
                        let local = i / nodes;
                        assert!(local < gpn, "round-robin overflow");
                        GpuId(node * gpn + local)
                    })
                    .collect()
            }
            Placement::SocketInterleaved => {
                let per_socket = gpn / machine.config.sockets_per_node;
                (0..n_ranks)
                    .map(|i| {
                        let node = i / gpn;
                        let slot = i % gpn;
                        // Alternate sockets: 0 -> s0g0, 1 -> s1g0, 2 -> s0g1, ...
                        let socket = slot % machine.config.sockets_per_node;
                        let within = slot / machine.config.sockets_per_node;
                        GpuId(node * gpn + socket * per_socket + within)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::summit(4))
    }

    #[test]
    fn dense_is_identity() {
        let m = machine();
        let p = Placement::Dense.assign(&m, 10);
        assert_eq!(p, (0..10).map(GpuId).collect::<Vec<_>>());
    }

    #[test]
    fn round_robin_spreads_consecutive_ranks_across_nodes() {
        let m = machine();
        let p = Placement::RoundRobinNodes.assign(&m, 8);
        assert_eq!(m.node_of(p[0]), 0);
        assert_eq!(m.node_of(p[1]), 1);
        assert_eq!(m.node_of(p[2]), 2);
        assert_eq!(m.node_of(p[3]), 3);
        assert_eq!(m.node_of(p[4]), 0);
        // second pass lands on the next local GPU
        assert_eq!(m.local_of(p[4]), 1);
    }

    #[test]
    fn socket_interleaved_alternates_sockets() {
        let m = machine();
        let p = Placement::SocketInterleaved.assign(&m, 6);
        let sockets: Vec<usize> = p.iter().map(|&g| m.socket_of(g)).collect();
        assert_eq!(sockets, vec![0, 1, 0, 1, 0, 1]);
        assert!(p.iter().all(|&g| m.node_of(g) == 0));
    }

    #[test]
    fn all_strategies_yield_distinct_gpus() {
        let m = machine();
        for s in [Placement::Dense, Placement::RoundRobinNodes, Placement::SocketInterleaved] {
            let p = s.assign(&m, 24);
            let mut ids: Vec<usize> = p.iter().map(|g| g.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 24, "{s:?} produced duplicate GPUs");
        }
    }

    #[test]
    #[should_panic(expected = "machine has")]
    fn oversubscription_rejected() {
        Placement::Dense.assign(&machine(), 25);
    }
}
