//! Rank-program executor: runs one communication/compute program per GPU
//! rank against the fluid-flow network, with MPI-style message matching.
//!
//! A program is a sequence of *steps*; each step is a set of operations
//! that a rank issues concurrently (e.g. the send-right/receive-left pair
//! of a ring stage). A rank advances to its next step when every
//! operation of the current step has completed — exactly the dependency
//! structure of round-based collective schedules.
//!
//! Matching semantics: a `Send` and a `Recv` match on
//! `(sender, receiver, tag)` in FIFO order. Transfers are *rendezvous*
//! unless the send is flagged eager: a rendezvous sender blocks until the
//! payload is drained; an eager sender completes `overhead` after posting,
//! regardless of the receiver.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::flow::FlowNet;
use crate::time::SimTime;
use crate::topology::{DataPath, GpuId, Machine};

/// One operation issued by a rank.
#[derive(Debug, Clone)]
pub enum Op {
    Send {
        /// Destination rank (index into the executor's placement).
        peer: usize,
        bytes: u64,
        tag: u64,
        path: DataPath,
        /// Per-message software overhead (MPI stack, protocol handshake).
        overhead: SimTime,
        /// Flow rate cap in bytes/s; models pipelined-staging efficiency.
        rate_cap: f64,
        /// Eager sends complete locally without waiting for the receiver.
        eager: bool,
    },
    Recv {
        peer: usize,
        tag: u64,
    },
    Compute {
        dur: SimTime,
    },
}

impl Op {
    /// A rendezvous send with no rate cap — the common case in tests.
    pub fn send(peer: usize, bytes: u64, tag: u64, path: DataPath, overhead: SimTime) -> Op {
        Op::Send { peer, bytes, tag, path, overhead, rate_cap: f64::INFINITY, eager: false }
    }

    pub fn recv(peer: usize, tag: u64) -> Op {
        Op::Recv { peer, tag }
    }

    pub fn compute(dur: SimTime) -> Op {
        Op::Compute { dur }
    }
}

/// A rank's program: steps of concurrently-issued ops.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub steps: Vec<Vec<Op>>,
}

impl Program {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn step(&mut self, ops: Vec<Op>) -> &mut Self {
        self.steps.push(ops);
        self
    }

    pub fn n_ops(&self) -> usize {
        self.steps.iter().map(Vec::len).sum()
    }
}

/// Result of running a set of programs.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// When each rank finished its last step.
    pub rank_finish: Vec<SimTime>,
    /// Latest rank finish time.
    pub makespan: SimTime,
    /// Total payload bytes that crossed any link (counts each traversed
    /// link once per byte).
    pub link_bytes_total: f64,
    /// Bytes carried by each directed link, indexed by `LinkId`.
    pub link_bytes: Vec<f64>,
}

impl ExecReport {
    /// The `k` busiest links, `(name, bytes)`, busiest first — hot-spot
    /// analysis for placement/topology studies.
    pub fn hot_links(&self, machine: &Machine, k: usize) -> Vec<(String, f64)> {
        let mut idx: Vec<usize> = (0..self.link_bytes.len()).collect();
        idx.sort_by(|&a, &b| self.link_bytes[b].total_cmp(&self.link_bytes[a]));
        idx.into_iter()
            .take(k)
            .filter(|&i| self.link_bytes[i] > 0.0)
            .map(|i| (machine.link(crate::topology::LinkId(i)).name.clone(), self.link_bytes[i]))
            .collect()
    }

    /// Mean utilization of `link` over the makespan, as a fraction of
    /// its bandwidth.
    pub fn utilization(&self, machine: &Machine, link: crate::topology::LinkId) -> f64 {
        let t = self.makespan.as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        self.link_bytes[link.0] / (machine.link(link).bandwidth * t)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    ComputeDone {
        rank: usize,
    },
    /// An eager sender's local completion.
    SendLocalDone {
        rank: usize,
    },
    /// A matched transfer begins flowing after overhead + route latency.
    FlowStart {
        pending: usize,
    },
}

#[derive(Debug)]
struct PendingTransfer {
    sender: usize,
    receiver: usize,
    bytes: u64,
    path: DataPath,
    rate_cap: f64,
    eager: bool,
    /// Filled in when the transfer's start event first fires; presence
    /// marks that the route-latency delay has already been applied.
    route: Option<crate::topology::Route>,
}

#[derive(Debug, Clone)]
struct PostedSend {
    rank: usize,
    bytes: u64,
    path: DataPath,
    overhead: SimTime,
    rate_cap: f64,
    eager: bool,
}

#[derive(Debug, Default)]
struct MatchQueue {
    sends: VecDeque<PostedSend>,
    recvs: VecDeque<usize>,
}

struct RankState {
    program: Program,
    next_step: usize,
    outstanding: usize,
    finish: SimTime,
    done: bool,
}

/// Executes rank programs over a machine.
pub struct Executor<'m> {
    machine: &'m Machine,
    /// rank -> GPU placement.
    placement: Vec<GpuId>,
}

impl<'m> Executor<'m> {
    /// `placement[r]` is the GPU rank `r` runs on. Ranks must map to
    /// distinct GPUs.
    pub fn new(machine: &'m Machine, placement: Vec<GpuId>) -> Self {
        let mut seen = vec![false; machine.config.total_gpus()];
        for &g in &placement {
            assert!(g.0 < seen.len(), "placement GPU {g:?} out of range");
            assert!(!seen[g.0], "two ranks share GPU {g:?}");
            seen[g.0] = true;
        }
        Executor { machine, placement }
    }

    /// The canonical placement: rank r on GPU r.
    pub fn dense(machine: &'m Machine, ranks: usize) -> Self {
        assert!(ranks <= machine.config.total_gpus());
        Self::new(machine, (0..ranks).map(GpuId).collect())
    }

    pub fn n_ranks(&self) -> usize {
        self.placement.len()
    }

    /// Run one program per rank to completion and report timings.
    ///
    /// Panics on a deadlocked schedule (unmatched send/recv) with a
    /// diagnostic of which ranks were stuck.
    pub fn run(&self, programs: Vec<Program>) -> ExecReport {
        assert_eq!(programs.len(), self.n_ranks(), "one program per rank");
        let mut ranks: Vec<RankState> = programs
            .into_iter()
            .map(|p| RankState {
                program: p,
                next_step: 0,
                outstanding: 0,
                finish: SimTime::ZERO,
                done: false,
            })
            .collect();

        let mut net: FlowNet<usize> = FlowNet::new(self.machine);
        let mut events: BinaryHeap<Reverse<(SimTime, u64, usize)>> = BinaryHeap::new();
        let mut event_payload: Vec<Event> = Vec::new();
        let mut seq: u64 = 0;
        let mut push_event = |events: &mut BinaryHeap<Reverse<(SimTime, u64, usize)>>,
                              payload: &mut Vec<Event>,
                              t: SimTime,
                              e: Event| {
            payload.push(e);
            events.push(Reverse((t, seq, payload.len() - 1)));
            seq += 1;
        };

        let mut queues: HashMap<(usize, usize, u64), MatchQueue> = HashMap::new();
        let mut transfers: Vec<PendingTransfer> = Vec::new();

        // Issue all ops of rank `r`'s next step at time `t`. Newly matched
        // transfers are appended to `matched` for the caller to schedule.
        fn issue_step(
            r: usize,
            t: SimTime,
            ranks: &mut [RankState],
            queues: &mut HashMap<(usize, usize, u64), MatchQueue>,
            matched: &mut Vec<(SimTime, Event)>,
            transfers: &mut Vec<PendingTransfer>,
        ) {
            loop {
                let st = ranks[r].next_step;
                if st >= ranks[r].program.steps.len() {
                    ranks[r].done = true;
                    ranks[r].finish = t;
                    return;
                }
                let ops = std::mem::take(&mut ranks[r].program.steps[st]);
                ranks[r].next_step += 1;
                if ops.is_empty() {
                    continue; // empty step: advance immediately
                }
                ranks[r].outstanding = ops.len();
                for op in ops {
                    match op {
                        Op::Compute { dur } => {
                            matched.push((t + dur, Event::ComputeDone { rank: r }));
                        }
                        Op::Send { peer, bytes, tag, path, overhead, rate_cap, eager } => {
                            let q = queues.entry((r, peer, tag)).or_default();
                            q.sends.push_back(PostedSend {
                                rank: r,
                                bytes,
                                path,
                                overhead,
                                rate_cap,
                                eager,
                            });
                            if eager {
                                matched.push((t + overhead, Event::SendLocalDone { rank: r }));
                            }
                            try_match(r, peer, tag, t, queues, matched, transfers);
                        }
                        Op::Recv { peer, tag } => {
                            let q = queues.entry((peer, r, tag)).or_default();
                            q.recvs.push_back(r);
                            try_match(peer, r, tag, t, queues, matched, transfers);
                        }
                    }
                }
                return;
            }
        }

        fn try_match(
            sender: usize,
            receiver: usize,
            tag: u64,
            t: SimTime,
            queues: &mut HashMap<(usize, usize, u64), MatchQueue>,
            matched: &mut Vec<(SimTime, Event)>,
            transfers: &mut Vec<PendingTransfer>,
        ) {
            let q = queues.get_mut(&(sender, receiver, tag)).expect("queue exists"); // lint: allow(unwrap): caller inserts the queue before matching
            while !q.sends.is_empty() && !q.recvs.is_empty() {
                let s = q.sends.pop_front().expect("checked"); // lint: allow(unwrap): loop guard proves non-empty
                let _r = q.recvs.pop_front().expect("checked"); // lint: allow(unwrap): loop guard proves non-empty
                transfers.push(PendingTransfer {
                    sender: s.rank,
                    receiver,
                    bytes: s.bytes,
                    path: s.path,
                    rate_cap: s.rate_cap,
                    eager: s.eager,
                    route: None,
                });
                // The payload starts flowing after software overhead; route
                // latency is added when the flow is created.
                matched.push((t + s.overhead, Event::FlowStart { pending: transfers.len() - 1 }));
            }
        }

        let mut completions: Vec<(usize, SimTime)> = Vec::new();
        let mut newly: Vec<(SimTime, Event)> = Vec::new();
        for r in 0..ranks.len() {
            issue_step(r, SimTime::ZERO, &mut ranks, &mut queues, &mut newly, &mut transfers);
        }
        for (t, e) in newly.drain(..) {
            push_event(&mut events, &mut event_payload, t, e);
        }

        loop {
            let flow_next = net.next_completion();
            let ev_next = events.peek().map(|Reverse((t, s, i))| (*t, *s, *i));
            let (t, use_flow) = match (flow_next, ev_next) {
                (None, None) => break,
                (Some((tf, _)), None) => (tf, true),
                (None, Some((te, _, _))) => (te, false),
                (Some((tf, _)), Some((te, _, _))) => {
                    if tf <= te {
                        (tf, true)
                    } else {
                        (te, false)
                    }
                }
            };
            net.advance_to(t);

            if use_flow {
                let (_, fid) = net.next_completion().expect("flow disappeared"); // lint: allow(unwrap): a completion scheduled this wakeup
                let ti: usize = net.finish(fid);
                let p = &transfers[ti];
                completions.push((p.receiver, t));
                if !p.eager {
                    completions.push((p.sender, t));
                }
            } else {
                let Reverse((_, _, idx)) = events.pop().expect("event disappeared"); // lint: allow(unwrap): an event scheduled this wakeup
                match event_payload[idx] {
                    Event::ComputeDone { rank } | Event::SendLocalDone { rank } => {
                        completions.push((rank, t));
                    }
                    Event::FlowStart { pending } => {
                        let p = &mut transfers[pending];
                        if p.route.is_none() {
                            let src = self.placement[p.sender];
                            let dst = self.placement[p.receiver];
                            let route = self.machine.route(src, dst, p.path);
                            let start = t + route.latency;
                            p.route = Some(route);
                            if start > t {
                                // Delay the byte drain by the route's
                                // propagation latency.
                                push_event(
                                    &mut events,
                                    &mut event_payload,
                                    start,
                                    Event::FlowStart { pending },
                                );
                                continue;
                            }
                        }
                        let route = p.route.take().expect("route set above"); // lint: allow(unwrap): route assigned in the rendezvous branch above
                        net.start(route.links, p.bytes as f64, p.rate_cap, pending);
                    }
                }
            }

            // Apply op completions, advancing ranks whose step drained.
            for (r, tc) in completions.drain(..) {
                debug_assert!(ranks[r].outstanding > 0, "completion for idle rank {r}");
                ranks[r].outstanding -= 1;
                if ranks[r].outstanding == 0 {
                    issue_step(r, tc, &mut ranks, &mut queues, &mut newly, &mut transfers);
                }
            }
            for (te, e) in newly.drain(..) {
                push_event(&mut events, &mut event_payload, te, e);
            }
        }

        let stuck: Vec<usize> = (0..ranks.len()).filter(|&r| !ranks[r].done).collect();
        assert!(
            stuck.is_empty(),
            "schedule deadlocked; ranks {stuck:?} never finished (unmatched send/recv?)"
        );

        let rank_finish: Vec<SimTime> = ranks.iter().map(|r| r.finish).collect();
        let makespan = rank_finish.iter().copied().fold(SimTime::ZERO, SimTime::max);
        let link_bytes: Vec<f64> =
            (0..self.machine.n_links()).map(|i| net.bytes_on(crate::topology::LinkId(i))).collect();
        let link_bytes_total = link_bytes.iter().sum();
        ExecReport { rank_finish, makespan, link_bytes_total, link_bytes }
    }
}
